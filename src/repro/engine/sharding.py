"""Deterministic sharding of the combination cross-product.

The enumeration heuristic walks the cross product of per-partition
prediction lists in :func:`itertools.product` order.  That order is a
mixed-radix counter — the *last* partition's index varies fastest — so
any combination can be addressed by a single flat integer and decoded
with :func:`decode_combination`.  A shard is therefore nothing but a
half-open ``[start, stop)`` index range: workers need only the range and
the (immutable) prediction lists, never an enumerated combination list,
and concatenating shard results in ``start`` order reproduces the exact
serial visit order regardless of which worker ran which shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class Shard:
    """One contiguous slice of the flat combination index space."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"invalid shard range [{self.start}, {self.stop})"
            )

    @property
    def size(self) -> int:
        return self.stop - self.start


def combination_count(radices: Sequence[int]) -> int:
    """The size of the cross product with the given list lengths."""
    total = 1
    for radix in radices:
        if radix < 1:
            raise ValueError(f"radices must be >= 1, got {list(radices)}")
        total *= radix
    return total


def digit_weights(radices: Sequence[int]) -> Tuple[int, ...]:
    """Place value of each mixed-radix digit position.

    ``weights[p]`` is the product of the radices *after* position ``p``,
    so ``digit[p] = (flat // weights[p]) % radices[p]`` — the closed
    form of :func:`decode_combination` that the vectorized kernels apply
    to whole index arrays at once.
    """
    weights = [1] * len(radices)
    for position in range(len(radices) - 2, -1, -1):
        radix = radices[position + 1]
        if radix < 1:
            raise ValueError(f"radices must be >= 1, got {list(radices)}")
        weights[position] = weights[position + 1] * radix
    return tuple(weights)


def decode_combination(
    flat: int, radices: Sequence[int]
) -> Tuple[int, ...]:
    """Mixed-radix decode of a flat index into per-list positions.

    The digit order matches ``itertools.product``: the last radix is the
    least-significant digit.  ``decode_combination(0, r)`` is all zeros
    and successive flat indices enumerate combinations in exactly the
    order the serial search visits them.
    """
    if flat < 0:
        raise ValueError(f"flat index must be >= 0, got {flat}")
    digits = [0] * len(radices)
    remainder = flat
    for position in range(len(radices) - 1, -1, -1):
        radix = radices[position]
        if radix < 1:
            raise ValueError(f"radices must be >= 1, got {list(radices)}")
        digits[position] = remainder % radix
        remainder //= radix
    if remainder:
        raise ValueError(
            f"flat index {flat} out of range for radices {list(radices)}"
        )
    return tuple(digits)


def plan_shards(total: int, shard_count: int) -> List[Shard]:
    """Split ``[0, total)`` into at most ``shard_count`` balanced ranges.

    Shard sizes differ by at most one and the ranges tile the space
    exactly, in order — the deterministic contract the merge step checks.
    An empty space yields no shards.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if total == 0:
        return []
    shard_count = min(shard_count, total)
    base, extra = divmod(total, shard_count)
    shards: List[Shard] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(Shard(index=index, start=start, stop=start + size))
        start += size
    return shards
