"""Admission-control tests: queue caps, session quotas, body caps.

The failure-mode contract (docs/resilience.md): a full queue or a
session over quota answers 429 with a concrete ``Retry-After`` header,
an oversized body answers 413 without being buffered, and rejected work
leaves no residue in the job registry.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import QueueFullError
from repro.experiments import experiment1_session
from repro.io.project import session_to_dict
from repro.service import ChopService, make_server
from repro.service.jobs import JobQueue


@pytest.fixture(scope="module")
def project_doc():
    return session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )


def handle(service, method, path, payload=None, body=None):
    if body is None and payload is not None:
        body = json.dumps(payload).encode()
    return service.handle(method, path, body)


def upload(service, doc):
    status, payload, _route, _hdrs = handle(
        service, "POST", "/projects", doc
    )
    assert status in (200, 201)
    return payload["project_id"]


class _Gate:
    """Jobs that block until released, to hold queue slots open."""

    def __init__(self):
        self.release = threading.Event()
        self.running = threading.Event()

    def job(self, should_stop):
        self.running.set()
        self.release.wait(timeout=30)
        return "done"


# ----------------------------------------------------------------------
# queue depth cap
# ----------------------------------------------------------------------
class TestQueueCap:
    def test_submit_over_cap_raises_with_retry_after(self):
        gate = _Gate()
        queue = JobQueue(workers=1, max_queued=2)
        try:
            queue.submit(gate.job)  # occupies the worker
            gate.running.wait(timeout=10)
            queue.submit(gate.job)  # queued 1
            queue.submit(gate.job)  # queued 2 == cap
            with pytest.raises(QueueFullError) as excinfo:
                queue.submit(gate.job)
            assert excinfo.value.retry_after_s >= 1.0
            # Rejected work left nothing behind.
            assert queue.depth()["queued"] == 2
        finally:
            gate.release.set()
            queue.shutdown()

    def test_http_mapping_is_429_with_retry_after(self, project_doc):
        service = ChopService(workers=1, max_queued=1)
        gate = _Gate()
        try:
            pid = upload(service, project_doc)
            service.jobs.submit(gate.job)  # occupy the one worker
            gate.running.wait(timeout=10)
            service.jobs.submit(gate.job)  # fill the queue to its cap
            status, payload, _route, headers = handle(
                service, "POST", f"/projects/{pid}/enumerate", {}
            )
            assert status == 429
            assert payload["type"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
        finally:
            gate.release.set()
            service.close()


# ----------------------------------------------------------------------
# per-session quota
# ----------------------------------------------------------------------
class TestSessionQuota:
    def test_one_tenant_cannot_hog_the_queue(self):
        gate = _Gate()
        queue = JobQueue(workers=1, max_per_session=2)
        try:
            queue.submit(gate.job, session_key="alice")
            gate.running.wait(timeout=10)
            queue.submit(gate.job, session_key="alice")
            with pytest.raises(QueueFullError):
                queue.submit(gate.job, session_key="alice")
            # A different tenant is still admitted.
            queue.submit(gate.job, session_key="bob")
        finally:
            gate.release.set()
            queue.shutdown()

    def test_enumerate_is_scoped_by_project(self, project_doc):
        service = ChopService(
            workers=1, max_jobs_per_session=1, job_timeout_s=60.0
        )
        gate = _Gate()
        try:
            pid = upload(service, project_doc)
            # Hold the worker so the project's first job stays active.
            service.jobs.submit(gate.job)
            gate.running.wait(timeout=10)
            status, _payload, _route, _hdrs = handle(
                service, "POST", f"/projects/{pid}/enumerate", {}
            )
            assert status == 202
            status, payload, _route, headers = handle(
                service, "POST", f"/projects/{pid}/enumerate", {}
            )
            assert status == 429
            assert "Retry-After" in headers
        finally:
            gate.release.set()
            service.close()


# ----------------------------------------------------------------------
# body size cap
# ----------------------------------------------------------------------
class TestBodyCap:
    def test_oversized_body_is_413(self):
        service = ChopService(workers=1, max_body_bytes=100)
        try:
            status, payload, _route, _hdrs = handle(
                service, "POST", "/projects", body=b"x" * 101
            )
            assert status == 413
            assert payload["type"] == "body_too_large"
        finally:
            service.close()

    def test_body_at_cap_is_processed(self):
        service = ChopService(workers=1, max_body_bytes=6)
        try:
            # 6 bytes of invalid JSON: passes the cap, fails parsing.
            status, _payload, _route, _hdrs = handle(
                service, "POST", "/projects", body=b"{nope}"
            )
            assert status == 400
        finally:
            service.close()

    def test_socket_rejects_from_content_length_alone(self):
        service = ChopService(workers=1, max_body_bytes=64)
        httpd = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        port = httpd.server_address[1]
        try:
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/projects",
                data=b"y" * 1000,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=10)
            assert excinfo.value.code == 413
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    def test_constructor_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ChopService(workers=1, max_body_bytes=0)
