"""The multi-writer shared backend of the prediction cache.

A fleet of server processes (``chop serve --procs N``, or several
single-node servers on one NFS export) share one cache directory.  The
base atomic-rename write already guarantees readers never observe a
torn entry; this backend adds what concurrent *writers* need on top:

* **advisory per-entry locking** — each store takes an ``fcntl.flock``
  on a sidecar ``<key>.lock`` file for the compare-and-replace window,
  so two writers racing on one key serialize instead of doing redundant
  replaces (on platforms without ``fcntl`` the lock degrades to a
  no-op and atomic rename alone carries correctness);
* **compare-digest-discard on collision** — before replacing an
  existing entry the writer compares content digests; an identical
  entry (the common case: two workers predicted the same project) is
  left in place and the write is discarded, counted as
  ``collisions_discarded``.  Differing digests are last-writer-wins,
  counted as ``collisions_replaced`` — entries are pure functions of
  the key, so a difference means a version/model skew worth surfacing;
* **writer attribution** — every entry records the ``writer`` id
  (``host:pid``) that produced it, and loads are split into
  ``hits_local`` / ``hits_remote`` in :meth:`stats`, which is how the
  distributed benchmark proves cross-worker cache reuse.

Quarantine semantics are inherited unchanged: a corrupt entry is
renamed to ``*.corrupt`` by whichever reader trips on it first; the
rename is atomic, so concurrent readers cannot double-quarantine or
resurrect the entry.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import socket
import tempfile
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.cache.backend import CACHE_VERSION, PredictionCacheBase
from repro.resilience.retry import RetryPolicy


def default_writer_id() -> str:
    """``host:pid`` — unique per concurrently live writer process."""
    return f"{socket.gethostname()}:{os.getpid()}"


class SharedPredictionCache(PredictionCacheBase):
    """A prediction-cache directory safe under many writer processes."""

    kind = "shared"

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        version: int = CACHE_VERSION,
        retry_policy: Optional[RetryPolicy] = None,
        writer_id: Optional[str] = None,
    ) -> None:
        super().__init__(directory, version=version, retry_policy=retry_policy)
        self.writer_id = writer_id or default_writer_id()
        self._hits_local = 0
        self._hits_remote = 0
        self._collisions_discarded = 0
        self._collisions_replaced = 0

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------
    def _payload(self, key, predictions) -> Dict[str, Any]:
        payload = super()._payload(key, predictions)
        payload["writer"] = self.writer_id
        payload["digest"] = self._digest(payload["predictions"])
        return payload

    def _write(self, key: str, payload: Dict[str, Any]) -> None:
        """Compare-and-replace under an advisory per-entry lock.

        The lock only narrows the window in which two writers both
        decide to replace; correctness never depends on it (atomic
        ``os.replace`` keeps readers safe even on no-``fcntl``
        platforms, where :meth:`_entry_lock` is a no-op).
        """
        path = self.path_for(key)
        with self._entry_lock(key):
            existing = self._existing_digest(path)
            if existing is not None and existing == payload["digest"]:
                # An identical entry is already on disk — discard the
                # write instead of churning the directory.
                with self._lock:
                    self._collisions_discarded += 1
                return
            if existing is not None:
                with self._lock:
                    self._collisions_replaced += 1
            descriptor, temp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".pkl", dir=self.directory
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise

    def _on_hit(self, payload: Dict[str, Any]) -> None:
        # Entries written by the plain disk backend carry no writer id;
        # they did not come from this process, so they count as remote.
        with self._lock:
            if payload.get("writer") == self.writer_id:
                self._hits_local += 1
            else:
                self._hits_remote += 1

    # ------------------------------------------------------------------
    # collision machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _digest(predictions: Dict[str, Any]) -> str:
        """Content digest of the (already sorted) prediction lists.

        Pickle bytes are not canonical across object provenance: a
        freshly built graph shares interned strings that a round-tripped
        copy does not, so ``dumps(fresh) != dumps(loads(dumps(fresh)))``
        even though the documents are equal.  One normalizing round trip
        reaches a fixed point, making the digest comparable between a
        fresh store and an entry re-read from disk (the digestless
        disk-backend migration path).  A digest mismatch is never a
        correctness problem — it just turns a discard into a replace.
        """
        raw = pickle.dumps(predictions, pickle.HIGHEST_PROTOCOL)
        canonical = pickle.dumps(
            pickle.loads(raw), pickle.HIGHEST_PROTOCOL
        )
        return hashlib.sha256(canonical).hexdigest()

    def _existing_digest(self, path: pathlib.Path) -> Optional[str]:
        """Digest of the entry already at ``path``, if readable.

        A missing file means no collision; an unreadable or digestless
        one (torn by a pre-shared writer, or corrupt) reports a digest
        that can never match, so the store replaces it.
        """
        try:
            with path.open("rb") as handle:
                existing = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            return "<unreadable>"
        if not isinstance(existing, dict):
            return "<unreadable>"
        digest = existing.get("digest")
        if isinstance(digest, str):
            return digest
        # Entries from the disk backend have no digest field; compute
        # one so an identical migration write is still discarded.
        predictions = existing.get("predictions")
        if isinstance(predictions, dict):
            try:
                return self._digest(predictions)
            except Exception:
                return "<unreadable>"
        return "<unreadable>"

    @contextmanager
    def _entry_lock(self, key: str) -> Iterator[None]:
        """Advisory inter-process lock for one entry's write window."""
        if fcntl is None:
            yield
            return
        lock_path = self.directory / f"{key}.lock"
        try:
            handle = open(lock_path, "a+b")
        except OSError:
            # The lock is an optimization; a directory that refuses the
            # sidecar file still gets correct atomic-rename stores.
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        doc = super().stats()
        with self._lock:
            doc["writer_id"] = self.writer_id
            doc["hits_local"] = self._hits_local
            doc["hits_remote"] = self._hits_remote
            doc["collisions_discarded"] = self._collisions_discarded
            doc["collisions_replaced"] = self._collisions_replaced
        return doc
