"""Tests for the parallel batch-evaluation engine (repro.engine).

The load-bearing property is *equivalence*: an engine-sharded
enumeration must return byte-identical results to the serial walk, on
every project shape, under every degradation path (serial fallback,
worker death, cancellation).  CI runs this module under both ``fork``
and ``spawn`` via ``$CHOP_START_METHOD``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import time

import pytest

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.dfg.parser import parse_spec
from repro.engine import (
    DiskPredictionCache,
    EvaluationEngine,
    EvaluationProblem,
    Shard,
    ShardResult,
    combination_count,
    decode_combination,
    merge_shard_results,
    plan_shards,
)
from repro.engine.workers import DEFAULT_MIN_COMBINATIONS
from repro.errors import (
    CombinationExplosionError,
    EngineError,
    SearchCancelled,
)
from repro.experiments import experiment1_session, experiment2_session
from repro.library.presets import extended_library
from repro.memory.module import MemoryModule

SPEC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "specs",
)


def spec_session(spec_name: str, partitions: int) -> ChopSession:
    """A ready-to-check session built from an example .chop spec."""
    with open(os.path.join(SPEC_DIR, spec_name)) as handle:
        graph = parse_spec(handle.read())
    blocks = sorted(
        {
            op.memory_block
            for op in graph
            if getattr(op, "memory_block", None)
        }
    )
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=60_000.0, delay_ns=60_000.0
        ),
        memories=[
            MemoryModule(name, 256, 16, off_the_shelf=True)
            for name in blocks
        ],
    )
    parts = horizontal_cut(graph, partitions)
    assignment = {}
    for index, part in enumerate(parts):
        chip = f"chip{index + 1}"
        session.add_chip(chip, mosis_package(2))
        assignment[part.name] = chip
    session.set_partitions(parts, assignment)
    return session


def result_doc(result):
    """A comparable result document with the timing jitter removed."""
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


def no_live_workers(timeout_s: float = 5.0) -> bool:
    """True once every child process has been reaped."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# sharding math
# ----------------------------------------------------------------------
class TestSharding:
    def test_decode_matches_product_order(self):
        radices = (2, 3, 4)
        expected = list(
            itertools.product(*(range(r) for r in radices))
        )
        decoded = [
            decode_combination(flat, radices)
            for flat in range(combination_count(radices))
        ]
        assert decoded == expected

    def test_combination_count(self):
        assert combination_count((2, 3, 4)) == 24
        assert combination_count(()) == 1
        # Empty prediction lists are rejected before sharding ever sees
        # them, so a zero radix is a caller bug, not a valid space.
        with pytest.raises(ValueError):
            combination_count((5, 0, 3))

    def test_plan_shards_tiles_exactly(self):
        for total, shard_count in [(100, 8), (7, 3), (64, 64), (5, 9)]:
            shards = plan_shards(total, shard_count)
            assert shards[0].start == 0
            assert shards[-1].stop == total
            for left, right in zip(shards, shards[1:]):
                assert left.stop == right.start
            sizes = [shard.size for shard in shards]
            assert sum(sizes) == total
            assert max(sizes) - min(sizes) <= 1

    def test_plan_shards_clamps_and_empties(self):
        assert plan_shards(0, 4) == []
        assert len(plan_shards(3, 10)) == 3

    def test_decode_round_trip_random_radices(self):
        radices = (3, 1, 5, 2)
        seen = set()
        for flat in range(combination_count(radices)):
            digits = decode_combination(flat, radices)
            assert all(d < r for d, r in zip(digits, radices))
            seen.add(digits)
        assert len(seen) == combination_count(radices)


class TestMerge:
    def test_merge_requires_exact_tiling(self):
        def sr(start, stop, trials=None):
            return ShardResult(
                shard=Shard(index=0, start=start, stop=stop),
                feasible=[],
                trials=trials if trials is not None else stop - start,
            )

        feasible, trials = merge_shard_results(
            [sr(4, 8), sr(0, 4)], expected_total=8
        )
        assert feasible == []
        assert trials == 8
        with pytest.raises(EngineError):
            merge_shard_results([sr(0, 4), sr(5, 8)], expected_total=8)
        with pytest.raises(EngineError):
            merge_shard_results([sr(0, 4), sr(3, 8)], expected_total=8)
        with pytest.raises(EngineError):
            merge_shard_results([sr(0, 4)], expected_total=8)


# ----------------------------------------------------------------------
# the evaluation problem
# ----------------------------------------------------------------------
class TestEvaluationProblem:
    @pytest.fixture(scope="class")
    def problem(self):
        session = experiment2_session(partition_count=3)
        return EvaluationProblem.build(
            session.partitioning(),
            session.pruned_predictions(),
            session.clocks,
            session.library,
            session.criteria,
        )

    def test_selection_matches_product_order(self, problem):
        lists = problem.lists
        expected = list(itertools.product(*lists))
        for flat in (0, 1, len(expected) // 2, len(expected) - 1):
            selection = problem.selection(flat)
            assert tuple(
                selection[name] for name in problem.names
            ) == expected[flat]

    def test_problem_is_picklable(self, problem):
        clone = pickle.loads(pickle.dumps(problem))
        assert clone.names == problem.names
        assert clone.combination_count() == problem.combination_count()

    def test_list_sizes(self, problem):
        sizes = problem.list_sizes()
        assert set(sizes) == set(problem.names)
        assert all(size > 0 for size in sizes.values())


# ----------------------------------------------------------------------
# parallel == serial
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_experiment_session_byte_identical(self):
        session = experiment2_session(partition_count=3)
        serial = session.check(heuristic="enumeration")
        engine = EvaluationEngine(workers=2)
        parallel = session.check(heuristic="enumeration", engine=engine)
        assert result_doc(parallel) == result_doc(serial)
        assert parallel.trials == serial.trials
        stats = engine.stats()
        assert stats["searches_parallel"] + stats["searches_serial"] == 1
        assert stats["combinations_evaluated"] == serial.trials

    @pytest.mark.parametrize("spec", ["biquad.chop", "moving_average.chop"])
    def test_spec_projects_byte_identical(self, spec):
        session = spec_session(spec, partitions=2)
        serial = session.check(heuristic="enumeration")
        engine = EvaluationEngine(workers=2, min_combinations=1)
        parallel = session.check(heuristic="enumeration", engine=engine)
        assert result_doc(parallel) == result_doc(serial)

    def test_progress_reports_monotonically(self):
        session = experiment2_session(partition_count=3)
        engine = EvaluationEngine(workers=2, min_combinations=1)
        reports = []
        session.check(
            heuristic="enumeration",
            engine=engine,
            progress=lambda done, total: reports.append((done, total)),
        )
        assert reports
        done_values = [done for done, _ in reports]
        assert done_values == sorted(done_values)
        final_done, final_total = reports[-1]
        assert final_done == final_total

    def test_workers_one_runs_serial(self):
        session = experiment1_session(partition_count=2)
        engine = EvaluationEngine(workers=1)
        problem = EvaluationProblem.build(
            session.partitioning(),
            session.pruned_predictions(),
            session.clocks,
            session.library,
            session.criteria,
        )
        run = engine.run(problem)
        assert run.mode == "serial"
        assert engine.stats()["searches_serial"] == 1

    def test_small_space_stays_in_process(self):
        session = experiment1_session(partition_count=2)
        problem = EvaluationProblem.build(
            session.partitioning(),
            session.pruned_predictions(),
            session.clocks,
            session.library,
            session.criteria,
        )
        assert problem.combination_count() < DEFAULT_MIN_COMBINATIONS
        engine = EvaluationEngine(workers=4)
        run = engine.run(problem)
        assert run.mode == "serial"


# ----------------------------------------------------------------------
# degradation paths
# ----------------------------------------------------------------------
class _UnpoolableEngine(EvaluationEngine):
    """An engine whose pool can never be created."""

    def _make_executor(self, problem):
        raise OSError("no processes on this platform")


class TestDegradation:
    def test_pool_failure_falls_back_to_serial(self):
        session = experiment2_session(partition_count=3)
        serial = session.check(heuristic="enumeration")
        engine = _UnpoolableEngine(workers=2, min_combinations=1)
        fallback = session.check(heuristic="enumeration", engine=engine)
        assert result_doc(fallback) == result_doc(serial)
        stats = engine.stats()
        assert stats["fallbacks"] == 1
        assert stats["searches_serial"] == 1

    def test_cancellation_leaves_no_workers(self):
        session = experiment2_session(partition_count=3)
        problem = EvaluationProblem.build(
            session.partitioning(),
            session.pruned_predictions(),
            session.clocks,
            session.library,
            session.criteria,
        )
        engine = EvaluationEngine(
            workers=2, min_combinations=1, poll_interval_s=0.01
        )
        with pytest.raises(SearchCancelled):
            engine.run(problem, cancel=lambda: True)
        assert no_live_workers()

    def test_worker_crash_retries_shard_serially(self, monkeypatch):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("crash injection needs the fork start method")
        import repro.engine.workers as workers_module

        monkeypatch.setattr(
            workers_module, "_evaluate_shard", _crash_first_shard
        )
        session = experiment2_session(partition_count=3)
        serial = session.check(heuristic="enumeration")
        engine = EvaluationEngine(
            workers=2, min_combinations=1, start_method="fork"
        )
        survived = session.check(heuristic="enumeration", engine=engine)
        assert result_doc(survived) == result_doc(serial)
        assert engine.stats()["shards_retried"] >= 1
        assert no_live_workers()


def _crash_first_shard(shard, trace_id=None):
    """Kill the worker handling the first shard; run the rest normally."""
    if shard.start == 0:
        os._exit(13)
    from repro.engine.workers import (
        _WORKER_PROBLEM, _WORKER_CANCEL, evaluate_range,
    )

    started = time.perf_counter()
    feasible, trials = evaluate_range(
        _WORKER_PROBLEM, shard.start, shard.stop,
        cancel=_WORKER_CANCEL.is_set if _WORKER_CANCEL else None,
    )
    return ShardResult(
        shard=shard, feasible=feasible, trials=trials,
        elapsed_s=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# combination explosion reporting
# ----------------------------------------------------------------------
class TestCombinationExplosion:
    def test_structured_error(self, monkeypatch):
        import repro.search.enumeration as enumeration_module

        monkeypatch.setattr(enumeration_module, "MAX_COMBINATIONS", 10)
        session = experiment2_session(partition_count=3)
        with pytest.raises(CombinationExplosionError) as excinfo:
            session.check(heuristic="enumeration")
        error = excinfo.value
        assert error.combinations > error.limit == 10
        assert set(error.list_sizes) == {"P1", "P2", "P3"}
        detail = error.detail()
        assert detail["combinations"] == error.combinations
        assert detail["limit"] == 10
        assert list(detail["list_sizes"]) == sorted(detail["list_sizes"])


# ----------------------------------------------------------------------
# the disk prediction cache
# ----------------------------------------------------------------------
class TestDiskCache:
    @pytest.fixture()
    def session(self):
        return experiment1_session(partition_count=2)

    def test_round_trip(self, tmp_path, session):
        cache = DiskPredictionCache(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        assert cache.load(key) is None
        cache.store(key, session.export_predictions())
        loaded = cache.load(key)
        assert loaded is not None
        assert set(loaded) == {"P1", "P2"}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["hit_rate"] == 0.5

    def test_key_depends_on_inputs(self, tmp_path, session):
        cache = DiskPredictionCache(tmp_path)
        base = cache.key_for("fp", session.library, session.clocks)
        other_clocks = ClockScheme(
            session.clocks.main_cycle_ns * 2,
            dp_multiplier=session.clocks.dp_multiplier,
            transfer_multiplier=session.clocks.transfer_multiplier,
        )
        assert cache.key_for(
            "fp", session.library, other_clocks
        ) != base
        assert cache.key_for(
            "other", session.library, session.clocks
        ) != base
        newer = DiskPredictionCache(tmp_path, version=2)
        assert newer.key_for("fp", session.library, session.clocks) != base

    def test_version_mismatch_invalidates(self, tmp_path, session):
        cache = DiskPredictionCache(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        payload = {
            "version": cache.version + 1,
            "key": key,
            "predictions": session.export_predictions(),
        }
        with cache.path_for(key).open("wb") as handle:
            pickle.dump(payload, handle)
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()
        assert cache.stats()["invalidated"] == 1

    def test_corrupt_file_is_a_miss_and_quarantined(
        self, tmp_path, session
    ):
        cache = DiskPredictionCache(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        path = cache.path_for(key)
        path.write_bytes(b"\x00not a pickle")
        assert cache.load(key) is None
        # The defective bytes move aside for post-mortem instead of
        # being destroyed; the lookup path is clear for the next store.
        assert not path.exists()
        quarantine = path.with_name(path.name + ".corrupt")
        assert quarantine.read_bytes() == b"\x00not a pickle"
        assert cache.stats()["quarantined"] == 1

    def test_store_leaves_no_temp_files(self, tmp_path, session):
        cache = DiskPredictionCache(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        cache.store(key, session.export_predictions())
        leftovers = [
            name for name in os.listdir(tmp_path)
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_seeded_session_skips_prediction(self, tmp_path):
        warmer = experiment1_session(partition_count=2)
        exported = warmer.export_predictions()

        cold = experiment1_session(partition_count=2)
        assert cold.seed_predictions(exported) == 2

        def explode(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("BAD prediction ran on a warm cache")

        cold._predictor.predict_partition = explode  # type: ignore
        result = cold.check(heuristic="enumeration")
        assert result_doc(result) == result_doc(
            warmer.check(heuristic="enumeration")
        )


# ----------------------------------------------------------------------
# baseline batch searches share the engine
# ----------------------------------------------------------------------
class TestBatchSearches:
    def test_exhaustive_bipartition_search_restores_session(self):
        from repro.baselines import exhaustive_bipartition_search

        session = spec_session("biquad.chop", partitions=2)
        before = sorted(session.partitioning().partitions)
        outcome = exhaustive_bipartition_search(
            session, "chip1", "chip2", heuristic="iterative"
        )
        assert outcome.candidates > 0
        assert outcome.best_result is not None
        assert len(outcome.best_partitions) == 2
        assert sorted(session.partitioning().partitions) == before

    def test_random_partition_search_reproducible(self):
        import random

        from repro.baselines import random_partition_search

        session = experiment2_session(partition_count=2)
        outcome_a = random_partition_search(
            session, count=5, rng=random.Random(7),
            heuristic="iterative",
        )
        outcome_b = random_partition_search(
            session, count=5, rng=random.Random(7),
            heuristic="iterative",
        )
        assert outcome_a.candidates == outcome_b.candidates == 5
        if outcome_a.best_result is not None:
            assert result_doc(outcome_a.best_result) == result_doc(
                outcome_b.best_result
            )
