"""Data-flow graph <-> JSON-friendly dictionaries.

Schema::

    {
      "name": "my-filter",
      "inputs":     [{"id": "x", "width": 16}, ...],
      "operations": [{"id": "mul1", "type": "mul",
                      "inputs": ["x", "k1"], "output": "v1",
                      "width": 16, "memory_block": null}, ...],
      "outputs":    ["y"]
    }

Operation outputs are declared inline; ``mem_write`` operations omit
``output``.  ``width`` on an operation sizes its output value.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.units import DEFAULT_BIT_WIDTH


def graph_to_dict(graph: DataFlowGraph) -> Dict[str, Any]:
    """Serialise a graph into the JSON schema above."""
    operations: List[Dict[str, Any]] = []
    for op_id in graph.topological_order():
        op = graph.operation(op_id)
        entry: Dict[str, Any] = {
            "id": op.id,
            "type": op.op_type.value,
            "inputs": list(op.inputs),
        }
        if op.output is not None:
            entry["output"] = op.output
            entry["width"] = graph.value(op.output).width
        if op.memory_block is not None:
            entry["memory_block"] = op.memory_block
        operations.append(entry)
    return {
        "name": graph.name,
        "inputs": [
            {"id": v.id, "width": v.width}
            for v in graph.primary_inputs()
        ],
        "operations": operations,
        "outputs": [v.id for v in graph.primary_outputs()],
    }


def graph_from_dict(data: Dict[str, Any]) -> DataFlowGraph:
    """Rebuild a graph from its dictionary form (inverse of
    :func:`graph_to_dict`)."""
    try:
        name = data["name"]
        input_entries = data["inputs"]
        op_entries = data["operations"]
        output_ids = set(data.get("outputs", ()))
    except (KeyError, TypeError) as exc:
        raise SpecificationError(
            f"malformed graph document: missing {exc}"
        ) from None

    values: Dict[str, Value] = {}
    operations: Dict[str, Operation] = {}
    for entry in input_entries:
        vid = entry["id"]
        values[vid] = Value(
            id=vid,
            width=int(entry.get("width", DEFAULT_BIT_WIDTH)),
            is_output=vid in output_ids,
        )
    for entry in op_entries:
        try:
            op_type = OpType(entry["type"])
        except ValueError:
            raise SpecificationError(
                f"unknown operation type {entry.get('type')!r}"
            ) from None
        op_id = entry["id"]
        output = entry.get("output")
        operation = Operation(
            id=op_id,
            op_type=op_type,
            inputs=tuple(entry.get("inputs", ())),
            output=output,
            memory_block=entry.get("memory_block"),
        )
        if op_id in operations:
            raise SpecificationError(f"duplicate operation id {op_id!r}")
        operations[op_id] = operation
        if output is not None:
            if output in values:
                raise SpecificationError(
                    f"duplicate value id {output!r}"
                )
            values[output] = Value(
                id=output,
                width=int(entry.get("width", DEFAULT_BIT_WIDTH)),
                producer=op_id,
                is_output=output in output_ids,
            )
    graph = DataFlowGraph(name, operations, values)
    graph.topological_order()  # raises on cycles
    return graph
