"""Tests for the triangular-distribution feasibility math."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.stats import (
    ConstraintCheck,
    Triplet,
    prob_ge,
    prob_le,
    triangular_cdf,
    triangular_mean,
    triangular_variance,
)
from tests.strategies import triplet_parts


class TestTriangularCdf:
    def test_below_support(self):
        assert triangular_cdf(0.0, 1.0, 2.0, 3.0) == 0.0

    def test_above_support(self):
        assert triangular_cdf(4.0, 1.0, 2.0, 3.0) == 1.0

    def test_at_mode_symmetric(self):
        assert triangular_cdf(2.0, 1.0, 2.0, 3.0) == pytest.approx(0.5)

    def test_quarter_point(self):
        # Symmetric triangle on [0, 2] with mode 1: F(0.5) = 0.5^2/2 = 0.125
        assert triangular_cdf(0.5, 0.0, 1.0, 2.0) == pytest.approx(0.125)

    def test_degenerate_point_mass(self):
        assert triangular_cdf(5.0, 5.0, 5.0, 5.0) == 1.0
        assert triangular_cdf(4.999, 5.0, 5.0, 5.0) == 0.0

    def test_mode_at_lower_edge(self):
        # Decreasing density on [0, 2], mode 0: F(1) = 1 - (1)^2/2 = 0.75
        assert triangular_cdf(1.0, 0.0, 0.0, 2.0) == pytest.approx(0.75)

    def test_mode_at_upper_edge(self):
        # Increasing density on [0, 2], mode 2: F(1) = 1/4
        assert triangular_cdf(1.0, 0.0, 2.0, 2.0) == pytest.approx(0.25)

    def test_rejects_invalid_params(self):
        with pytest.raises(ValueError):
            triangular_cdf(0.0, 2.0, 1.0, 3.0)

    @given(
        triplet_parts(),
        st.floats(min_value=-2e6, max_value=2e6, allow_nan=False),
    )
    def test_cdf_in_unit_interval(self, parts, x):
        lb, ml, ub = parts
        value = triangular_cdf(x, lb, ml, ub)
        assert 0.0 <= value <= 1.0

    @given(triplet_parts())
    def test_cdf_monotone(self, parts):
        lb, ml, ub = parts
        span = max(ub - lb, 1.0)
        xs = [lb + span * f for f in (-0.5, 0.0, 0.25, 0.5, 0.75, 1.0, 1.5)]
        values = [triangular_cdf(x, lb, ml, ub) for x in xs]
        assert values == sorted(values)


class TestMoments:
    def test_mean_symmetric(self):
        assert triangular_mean(0.0, 1.0, 2.0) == pytest.approx(1.0)

    def test_variance_known_value(self):
        # Var of triangular(0, 1, 2) = (0+1+4-0-0-2)/18 = 1/6
        assert triangular_variance(0.0, 1.0, 2.0) == pytest.approx(1 / 6)

    def test_variance_of_point_mass_is_zero(self):
        assert triangular_variance(3.0, 3.0, 3.0) == 0.0


class TestProbHelpers:
    def test_prob_le_upper_bound(self):
        t = Triplet(10, 20, 30)
        assert prob_le(t, 30) == 1.0
        assert prob_le(t, 10) == 0.0

    def test_prob_ge_complements(self):
        t = Triplet(10, 20, 30)
        assert prob_ge(t, 10) == pytest.approx(1.0)
        assert prob_ge(t, 31) == 0.0

    def test_exact_triplet_is_step(self):
        t = Triplet.exact(100)
        assert prob_le(t, 100) == 1.0
        assert prob_le(t, 99.999) == 0.0


class TestConstraintCheck:
    def test_pass_at_full_confidence_needs_ub(self):
        check = ConstraintCheck.upper_bound(
            "area", Triplet(80, 90, 100), 100, confidence=1.0
        )
        assert check.passed

    def test_fail_at_full_confidence_when_ub_exceeds(self):
        check = ConstraintCheck.upper_bound(
            "area", Triplet(80, 90, 101), 100, confidence=1.0
        )
        assert not check.passed

    def test_partial_confidence(self):
        # Delay at 80% confidence, as in the paper's criteria.
        value = Triplet(90, 100, 110)
        check = ConstraintCheck.upper_bound("delay", value, 105, 0.8)
        assert check.probability == pytest.approx(
            prob_le(value, 105)
        )

    def test_margin(self):
        check = ConstraintCheck.upper_bound(
            "x", Triplet(1, 2, 3), 10, 0.5
        )
        assert check.margin == 8

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            ConstraintCheck.upper_bound("x", Triplet.exact(1), 2, 1.5)

    def test_str_mentions_state(self):
        ok = ConstraintCheck.upper_bound("x", Triplet.exact(1), 2, 1.0)
        bad = ConstraintCheck.upper_bound("x", Triplet.exact(3), 2, 1.0)
        assert "ok" in str(ok)
        assert "VIOLATED" in str(bad)
