"""Table 5: statistics on BAD's predictions for experiment 2.

Paper values:

    partitions  total predictions  feasible predictions
    1           656                3
    2           1437               24
    3           1818               43

The multi-cycle style with the fast datapath clock multiplies the number
of distinct (II, latency) design points per partition — the key contrast
with Table 3.
"""

from __future__ import annotations

from repro.experiments import experiment1_session, experiment2_session
from repro.reporting.tables import prediction_stats_table


def _bad_stats(partition_count: int):
    session = experiment2_session(partition_count=partition_count)
    raw = session.predict_all()
    surviving = session.pruned_predictions(drop_inferior=False)
    total = sum(len(preds) for preds in raw.values())
    feasible = sum(len(preds) for preds in surviving.values())
    return total, feasible


def test_table5_bad_statistics(benchmark, save_artifact):
    stats = {}

    def run_all():
        for count in (1, 2, 3):
            stats[count] = _bad_stats(count)
        return stats

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = prediction_stats_table(stats)
    save_artifact("table5_bad_stats_exp2.txt", text)

    assert all(total > 0 for total, _f in stats.values())
    assert all(f >= 1 for _t, f in stats.values())


def test_exp2_space_larger_than_exp1(benchmark, save_artifact):
    """The Table 3 vs Table 5 contrast: the faster datapath clock makes
    the prediction space several times larger."""

    def compare():
        rows = []
        for count in (1, 2, 3):
            exp1 = experiment1_session(2, count)
            exp2 = experiment2_session(count)
            total1 = sum(len(v) for v in exp1.predict_all().values())
            total2 = sum(len(v) for v in exp2.predict_all().values())
            rows.append((count, total1, total2))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = ["partitions  exp1 predictions  exp2 predictions"]
    for count, total1, total2 in rows:
        lines.append(f"{count:>10}  {total1:>16}  {total2:>16}")
        # Strictly larger; the paper saw 3-6x, we see 1.4-2x because the
        # predictor collapses equivalent allocations that BAD kept.
        assert total2 > total1
    save_artifact("table5_vs_table3.txt", "\n".join(lines))
