"""Operation scheduling for the predictor.

Implements the classic scheduling toolbox BAD's predictions rest on:
ASAP/ALAP levels, resource-constrained list scheduling with critical-path
urgency, and modulo-resource accounting for pipelined designs with a
chosen initiation interval (the Sehwa-style pipeline model the paper
builds on — Park & Parker 1988, reference [8]).

All times here are in **datapath cycles**; conversion to main-clock cycles
happens in the predictor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.dfg.graph import DataFlowGraph
from repro.errors import PredictionError


def asap_schedule(
    graph: DataFlowGraph,
    duration: Mapping[str, int],
    ready: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Earliest start time of each operation, resources unconstrained.

    ``ready`` gives per-operation earliest start times (in cycles), used
    to model inputs with unique arrival times — the classic model assumes
    all inputs available at cycle 0 (paper section 2.3); the extension of
    section 5 relaxes that.
    """
    _check_durations(graph, duration)
    start: Dict[str, int] = {}
    for op_id in graph.topological_order():
        earliest = ready.get(op_id, 0) if ready else 0
        if earliest < 0:
            raise PredictionError(
                f"operation {op_id!r} has negative ready time"
            )
        for pred in graph.predecessors(op_id):
            earliest = max(earliest, start[pred] + duration[pred])
        start[op_id] = earliest
    return start


def critical_path_cycles(
    graph: DataFlowGraph,
    duration: Mapping[str, int],
    ready: Optional[Mapping[str, int]] = None,
) -> int:
    """Unconstrained latency: the longest duration-weighted path."""
    start = asap_schedule(graph, duration, ready)
    return max(
        (start[op_id] + duration[op_id] for op_id in start), default=0
    )


def alap_schedule(
    graph: DataFlowGraph, duration: Mapping[str, int], deadline: int
) -> Dict[str, int]:
    """Latest start times meeting ``deadline``.

    Raises :class:`PredictionError` when the deadline is shorter than the
    critical path.
    """
    _check_durations(graph, duration)
    cp = critical_path_cycles(graph, duration)
    if deadline < cp:
        raise PredictionError(
            f"deadline {deadline} is below the critical path {cp}"
        )
    start: Dict[str, int] = {}
    for op_id in reversed(graph.topological_order()):
        latest = deadline - duration[op_id]
        for succ in graph.successors(op_id):
            latest = min(latest, start[succ] - duration[op_id])
        start[op_id] = latest
    return start


@dataclass(slots=True)
class Schedule:
    """A resource-feasible schedule of one partition's operations.

    When built with operation chaining (single-cycle style with a long
    datapath cycle), ``offset_ns`` holds each operation's start offset
    within its first cycle; dependent operations may then share a cycle
    as long as their combinational delays fit, which is how a 3-micron
    adder avoids wasting a 3000 ns cycle.
    """

    start: Dict[str, int]
    duration: Dict[str, int]
    resource_class: Dict[str, str]
    capacities: Dict[str, int]
    latency: int
    offset_ns: Dict[str, float] = field(default_factory=dict)
    delay_ns: Dict[str, float] = field(default_factory=dict)

    def finish(self, op_id: str) -> int:
        return self.start[op_id] + self.duration[op_id]

    def chained(self, pred: str, succ: str) -> bool:
        """Whether ``succ`` consumes ``pred`` within the same cycle."""
        return (
            bool(self.offset_ns)
            and self.start.get(pred) == self.start.get(succ)
        )

    def usage_profile(self) -> Dict[str, List[int]]:
        """Per-class unit usage in each cycle of the schedule."""
        profile = {
            cls: [0] * max(self.latency, 1) for cls in self.capacities
        }
        for op_id, begin in self.start.items():
            cls = self.resource_class[op_id]
            for cycle in range(begin, begin + self.duration[op_id]):
                profile[cls][cycle] += 1
        return profile

    def verify(self, graph: DataFlowGraph) -> None:
        """Raise :class:`PredictionError` on any violated constraint."""
        for op_id, begin in self.start.items():
            for pred in graph.predecessors(op_id):
                if self.finish(pred) <= begin:
                    continue
                if self.chained(pred, op_id):
                    # Same-cycle chaining: the successor must start after
                    # the predecessor's combinational delay settles.
                    pred_end = self.offset_ns[pred] + self.delay_ns[pred]
                    if self.offset_ns[op_id] + 1e-9 >= pred_end:
                        continue
                raise PredictionError(
                    f"precedence violated: {pred} finishes at "
                    f"{self.finish(pred)} but {op_id} starts at {begin}"
                )
        for cls, usage in self.usage_profile().items():
            peak = max(usage, default=0)
            if peak > self.capacities[cls]:
                raise PredictionError(
                    f"resource class {cls!r} oversubscribed: peak {peak} > "
                    f"capacity {self.capacities[cls]}"
                )

    def modulo_usage(self, initiation_interval: int) -> Dict[str, List[int]]:
        """Steady-state usage when a new iteration starts every ``ii`` cycles.

        Slot ``s`` of the result accumulates every cycle congruent to ``s``
        modulo the initiation interval across overlapped iterations — the
        standard pipeline resource model.
        """
        if initiation_interval <= 0:
            raise PredictionError(
                f"initiation interval must be positive, got "
                f"{initiation_interval}"
            )
        usage = {
            cls: [0] * initiation_interval for cls in self.capacities
        }
        for op_id, begin in self.start.items():
            cls = self.resource_class[op_id]
            for cycle in range(begin, begin + self.duration[op_id]):
                usage[cls][cycle % initiation_interval] += 1
        return usage

    def pipeline_capacities(
        self, initiation_interval: int
    ) -> Dict[str, int]:
        """Units of each class needed to sustain the initiation interval."""
        return {
            cls: max(slots, default=0)
            for cls, slots in self.modulo_usage(initiation_interval).items()
        }

    def pipeline_feasible(self, initiation_interval: int) -> bool:
        """Whether the allocated capacities sustain the interval."""
        needed = self.pipeline_capacities(initiation_interval)
        return all(
            needed[cls] <= self.capacities[cls] for cls in self.capacities
        )


def list_schedule(
    graph: DataFlowGraph,
    duration: Mapping[str, int],
    resource_class: Mapping[str, str],
    capacities: Mapping[str, int],
    delay_ns: Optional[Mapping[str, float]] = None,
    cycle_ns: Optional[float] = None,
    ready: Optional[Mapping[str, int]] = None,
) -> Schedule:
    """Resource-constrained list scheduling with critical-path urgency.

    Priority is the ALAP start time against the critical-path deadline
    (smaller = more urgent), the urgency measure the paper attributes to
    Sehwa.  Deterministic: ties break on operation id.

    When ``delay_ns`` and ``cycle_ns`` are given and every duration is one
    cycle (the single-cycle style), dependent operations **chain** within
    a cycle while their combinational delays fit — each chained operation
    still occupies its own unit for the cycle.

    ``ready`` optionally holds per-operation earliest start cycles (input
    arrival times).
    """
    _check_durations(graph, duration)
    for op_id in graph.operations:
        cls = resource_class.get(op_id)
        if cls is None:
            raise PredictionError(f"operation {op_id!r} has no resource class")
        if capacities.get(cls, 0) <= 0:
            raise PredictionError(
                f"resource class {cls!r} has no units allocated"
            )
    chaining = delay_ns is not None and cycle_ns is not None
    if chaining:
        assert delay_ns is not None and cycle_ns is not None
        if any(duration[o] != 1 for o in graph.operations):
            raise PredictionError(
                "chaining requires single-cycle operations"
            )
        for op_id in graph.operations:
            d = delay_ns.get(op_id)
            if d is None or d < 0:
                raise PredictionError(
                    f"operation {op_id!r} needs a non-negative delay for "
                    "chaining"
                )
            if d > cycle_ns:
                raise PredictionError(
                    f"operation {op_id!r} delay {d:g} ns exceeds the "
                    f"{cycle_ns:g} ns cycle; use the multi-cycle style"
                )

    cp = critical_path_cycles(graph, duration, ready)
    alap = alap_schedule(graph, duration, cp)
    order = graph.topological_order()
    remaining_preds = {
        op_id: len(graph.predecessors(op_id)) for op_id in order
    }
    ready_list: List[str] = sorted(
        (op_id for op_id, n in remaining_preds.items() if n == 0),
        key=lambda o: (alap[o], o),
    )
    start: Dict[str, int] = {}
    offset: Dict[str, float] = {}
    usage: Dict[str, Dict[int, int]] = {cls: {} for cls in capacities}

    def chain_offset_at(op_id: str, time: int) -> Optional[float]:
        """Start offset of ``op_id`` within cycle ``time``, or None if a
        predecessor blocks placement in this cycle."""
        if ready and ready.get(op_id, 0) > time:
            return None
        begin = 0.0
        for pred in graph.predecessors(op_id):
            if pred not in start:
                return None
            pred_finish = start[pred] + duration[pred]
            if pred_finish <= time:
                continue
            if chaining and start[pred] == time:
                begin = max(begin, offset[pred] + delay_ns[pred])
                continue
            return None
        if chaining:
            if begin + delay_ns[op_id] > cycle_ns + 1e-9:
                return None
        elif begin > 0.0:
            return None
        return begin

    time = 0
    scheduled = 0
    total = len(order)
    # Upper bound on schedule length: every op serialized, after the
    # latest arrival.
    horizon = sum(duration[o] for o in order) + 1
    if ready:
        horizon += max(ready.values(), default=0)
    # Event-driven time advance: placements can only become possible at
    # operation-finish boundaries (resources free, dependencies settle)
    # or at input arrival times, so the clock jumps between those.
    events: List[int] = sorted(
        {t for t in (ready or {}).values() if t > 0}
    )
    heapq.heapify(events)
    while scheduled < total:
        if time > horizon:
            raise PredictionError(
                "list scheduler failed to converge; inconsistent resources"
            )
        placed_any = True
        while placed_any:
            placed_any = False
            for op_id in list(ready_list):
                begin_offset = chain_offset_at(op_id, time)
                if begin_offset is None:
                    continue
                cls = resource_class[op_id]
                cap = capacities[cls]
                span = range(time, time + duration[op_id])
                if all(usage[cls].get(c, 0) < cap for c in span):
                    start[op_id] = time
                    offset[op_id] = begin_offset
                    for c in span:
                        usage[cls][c] = usage[cls].get(c, 0) + 1
                    ready_list.remove(op_id)
                    scheduled += 1
                    placed_any = True
                    heapq.heappush(events, time + duration[op_id])
                    for succ in graph.successors(op_id):
                        remaining_preds[succ] -= 1
                        if remaining_preds[succ] == 0:
                            ready_list.append(succ)
            ready_list.sort(key=lambda o: (alap[o], o))
        while events and events[0] <= time:
            heapq.heappop(events)
        time = events[0] if events else time + 1

    latency = max(
        (start[o] + duration[o] for o in start), default=0
    )
    schedule = Schedule(
        start=start,
        duration=dict(duration),
        resource_class=dict(resource_class),
        capacities=dict(capacities),
        latency=latency,
        offset_ns=offset if chaining else {},
        delay_ns=dict(delay_ns) if chaining else {},
    )
    schedule.verify(graph)
    return schedule


def _check_durations(
    graph: DataFlowGraph, duration: Mapping[str, int]
) -> None:
    for op_id in graph.operations:
        d = duration.get(op_id)
        if d is None:
            raise PredictionError(f"operation {op_id!r} has no duration")
        if d <= 0:
            raise PredictionError(
                f"operation {op_id!r} has non-positive duration {d}"
            )
