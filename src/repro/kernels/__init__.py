"""repro.kernels — array-based batch evaluation of combination shards.

The scalar search loop (:func:`repro.engine.workers.evaluate_range`)
pays a full python object walk — decode, dict selection, level-2 prune,
integration — per combination.  This package packs the per-partition
prediction lists into numpy column arrays once
(:mod:`~repro.kernels.packing`) and then screens whole index blocks per
array op (:mod:`~repro.kernels.batch`): combinations that are *provably*
infeasible are killed by vectorized kernels, and only the survivors run
the unchanged scalar integration pipeline, in flat-index order.  The
feasible list — and therefore ``SearchResult.to_dict()`` — is
byte-identical to the scalar path by construction; the scalar loop stays
in the tree as the reference oracle (``kernel="scalar"``).

See ``docs/performance.md`` for the memory layout, the kernel contracts
and the soundness argument behind each screen.
"""

from repro.kernels.batch import (
    evaluate_range_batch,
    level1_keep_mask,
    lexicographic_argmin,
)
from repro.kernels.packing import PackedPredictions, pack_problem

__all__ = [
    "PackedPredictions",
    "evaluate_range_batch",
    "level1_keep_mask",
    "lexicographic_argmin",
    "pack_problem",
]
