"""Two-level pruning of predictions (section 2.1 of the paper).

"The partitioning software can be instructed to discard any infeasible or
inferior predicted designs immediately upon detection.  This keeps the
number of eligible predicted designs down, resulting in significantly
faster execution speed and smaller run-time memory requirement."

Level 1 runs before the combination search: per-partition predictions
that can never satisfy the criteria (:func:`level1_prune`) or that are
Pareto-dominated by a sibling (:func:`dominance_filter`) are dropped.
Level 2 happens inside the search loops: combinations are abandoned on
the first violated constraint.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import (
    FeasibilityCriteria,
    prediction_possibly_feasible,
)


def dominance_filter(
    predictions: Sequence[DesignPrediction],
) -> List[DesignPrediction]:
    """Keep only Pareto-optimal predictions on (II, latency, area).

    A prediction dominated in all three dimensions can never appear in a
    best feasible combination: replacing it with its dominator preserves
    every constraint and improves the goal — the paper's "inferior"
    designs.

    Candidates are swept in :meth:`DesignPrediction.sort_key` order, so
    any dominator of a candidate has already been seen: a candidate only
    needs comparing against the survivors so far, which keeps the common
    case (a short Pareto front over a long list) near-linear instead of
    O(n^2) over the full list.  Dominance is transitive, so checking
    survivors alone loses nothing — a dropped dominator is itself
    dominated by a survivor that also dominates the candidate.  The
    identity guard makes the sweep safe even against a ``dominates``
    implementation that considers a prediction to dominate itself (which
    would otherwise empty the list).  Input order is preserved.
    """
    survivors: List[DesignPrediction] = []
    for candidate in sorted(predictions, key=DesignPrediction.sort_key):
        if any(
            other is not candidate and other.dominates(candidate)
            for other in survivors
        ):
            continue
        survivors.append(candidate)
    survivor_ids = {id(pred) for pred in survivors}
    return [pred for pred in predictions if id(pred) in survivor_ids]


def level1_prune(
    predictions: Sequence[DesignPrediction],
    criteria: FeasibilityCriteria,
    clocks: ClockScheme,
    max_usable_area_mil2: float,
    drop_inferior: bool = True,
) -> List[DesignPrediction]:
    """First-level pruning of one partition's prediction list.

    Drops predictions that cannot satisfy the criteria even with zero
    integration overhead, then (optionally) the Pareto-dominated ones.
    The result keeps the paper's ordering (II, then delay).
    """
    feasible = [
        p
        for p in predictions
        if prediction_possibly_feasible(
            p, criteria, clocks, max_usable_area_mil2
        )
    ]
    if drop_inferior:
        feasible = dominance_filter(feasible)
    return sorted(feasible, key=DesignPrediction.sort_key)
