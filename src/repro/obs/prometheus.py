"""Prometheus text exposition (format 0.0.4) of the metrics registry.

Rendering is driven entirely by :class:`repro.obs.metrics.MetricsRegistry`
samples — typed counter/gauge/histogram families plus the pull-gauges
derived from legacy ``stats()`` suppliers.  The old path that flattened
the service's nested JSON snapshot is gone; anything that wants to show
up at ``GET /metrics?format=prometheus`` registers a real metric (or a
stats supplier) with the shared registry.

Names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` and prefixed with the
registry prefix (``chop_`` by default); label values are escaped per the
exposition format (:func:`escape_label_value` / the round-tripping
:func:`unescape_label_value`).  Histograms render the standard
``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet with cumulative
bucket counts ending in ``+Inf``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping

from repro.obs.metrics import MetricsRegistry

PREFIX = "chop"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """Sanitise ``name`` into the exposition charset, prefixed."""
    cleaned = _NAME_OK.sub("_", str(name))
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"{prefix}_{cleaned}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (used by the format linter)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:  # unknown escape: keep verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def format_value(value: Any) -> str:
    """A sample value in exposition syntax (ints stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def sample_line(
    name: str, labels: Mapping[str, str], value: Any
) -> str:
    """One ``name{labels} value`` exposition line."""
    if labels:
        rendered = ",".join(
            f'{key}="{escape_label_value(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {format_value(value)}"
    return f"{name} {format_value(value)}"


def _render_family(lines: List[str], doc: Dict[str, Any],
                   prefix: str) -> None:
    name = metric_name(doc["name"], prefix)
    if doc.get("help"):
        help_text = str(doc["help"]).replace("\\", "\\\\")
        help_text = help_text.replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {doc['type']}")
    for sample in doc["samples"]:
        labels = sample.get("labels") or {}
        if doc["type"] == "histogram":
            for bound, count in sample["buckets"].items():
                lines.append(
                    sample_line(
                        f"{name}_bucket",
                        {**labels, "le": bound},
                        count,
                    )
                )
            lines.append(
                sample_line(f"{name}_sum", labels, sample["sum"])
            )
            lines.append(
                sample_line(f"{name}_count", labels, sample["count"])
            )
        else:
            lines.append(sample_line(name, labels, sample["value"]))


def render_registry(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text format 0.0.4."""
    lines: List[str] = []
    for doc in registry.collect():
        _render_family(lines, doc, registry.prefix)
    return "\n".join(lines) + "\n"


#: Back-compatible alias: the service maps
#: ``GET /metrics?format=prometheus`` onto this.
render_prometheus = render_registry


#: Ceiling on distinct sources in one merged exposition — keeps the
#: injected label's cardinality bounded no matter what a caller does.
MAX_MERGE_SOURCES = 64

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+.*)$"
)


def _inject_label(line: str, key: str, value: str) -> str:
    """Prepend ``key="value"`` to a sample line's label set."""
    match = _SAMPLE_RE.match(line)
    if match is None:  # not a sample — keep verbatim
        return line
    name, labels, rest = match.groups()
    injected = f'{key}="{escape_label_value(value)}"'
    if labels:
        return f"{name}{{{injected},{labels}}} {rest}"
    return f"{name}{{{injected}}} {rest}"


def merge_expositions(
    expositions: List[Any],
    label: str = "worker",
    max_sources: int = MAX_MERGE_SOURCES,
) -> str:
    """Merge per-worker expositions into one lintable scrape.

    ``expositions`` is a list of ``(source, text)`` pairs — one
    Prometheus text exposition per fleet worker.  Naive concatenation
    would repeat ``# TYPE`` for every family once per worker, which the
    format (and ``check_prometheus.py``) forbids; instead the merge
    keeps one ``# HELP``/``# TYPE`` header per family (first occurrence
    wins — workers run the same code, so headers agree) and re-emits
    every sample with a ``label="source"`` pair injected so identical
    series from different workers stay distinct.  Families are sorted
    by name and samples keep source order, so the merge is
    deterministic for a deterministic input.
    """
    if len(expositions) > max_sources:
        raise ValueError(
            f"refusing to merge {len(expositions)} expositions; the "
            f"{label!r} label is capped at {max_sources} values"
        )
    helps: Dict[str, str] = {}
    types: Dict[str, str] = {}
    samples: Dict[str, List[str]] = {}
    for source, text in expositions:
        family = None
        for line in text.splitlines():
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) >= 3:
                    helps.setdefault(parts[2], line)
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) >= 3:
                    family = parts[2]
                    types.setdefault(family, line)
                continue
            if not line.strip() or line.startswith("#"):
                continue
            if family is None:  # untyped stray sample: family by name
                match = _SAMPLE_RE.match(line)
                if match is None:
                    continue
                family = match.group(1)
                for suffix in ("_bucket", "_sum", "_count"):
                    if family.endswith(suffix):
                        family = family[: -len(suffix)]
                        break
                types.setdefault(family, f"# TYPE {family} untyped")
            samples.setdefault(family, []).append(
                _inject_label(line, label, str(source))
            )
    lines: List[str] = []
    for family in sorted(types):
        if family in helps:
            lines.append(helps[family])
        lines.append(types[family])
        lines.extend(samples.get(family, []))
    return "\n".join(lines) + "\n"
