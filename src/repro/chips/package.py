"""Chip package descriptions (the paper's Table 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ChipError


@dataclass(frozen=True, slots=True)
class ChipPackage:
    """One standard chip package.

    ``width_mil`` x ``height_mil`` is the project (die) area available to
    the design; ``pad_area_mil2`` is consumed per bonded I/O pad;
    ``pad_delay_ns`` is added to every off-chip signal transition.
    """

    name: str
    width_mil: float
    height_mil: float
    pin_count: int
    pad_delay_ns: float
    pad_area_mil2: float

    def __post_init__(self) -> None:
        if self.width_mil <= 0 or self.height_mil <= 0:
            raise ChipError(
                f"package {self.name!r}: dimensions must be positive"
            )
        if self.pin_count <= 0:
            raise ChipError(
                f"package {self.name!r}: pin count must be positive"
            )
        if self.pad_delay_ns < 0 or self.pad_area_mil2 < 0:
            raise ChipError(
                f"package {self.name!r}: pad delay/area must be non-negative"
            )

    @property
    def project_area_mil2(self) -> float:
        """Total die area before pads are subtracted."""
        return self.width_mil * self.height_mil

    def usable_area_mil2(self, bonded_pins: int) -> float:
        """Die area left for logic after ``bonded_pins`` pads.

        Raises :class:`ChipError` when more pins are bonded than the
        package offers or when pads alone exceed the die.
        """
        if bonded_pins < 0:
            raise ChipError(f"bonded pin count must be non-negative")
        if bonded_pins > self.pin_count:
            raise ChipError(
                f"package {self.name!r} has {self.pin_count} pins; "
                f"cannot bond {bonded_pins}"
            )
        remaining = self.project_area_mil2 - bonded_pins * self.pad_area_mil2
        if remaining <= 0:
            raise ChipError(
                f"package {self.name!r}: pads consume the entire die"
            )
        return remaining

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.width_mil:g}x{self.height_mil:g} mil, "
            f"{self.pin_count} pins, pad {self.pad_delay_ns:g} ns"
        )
