"""Canonical setups of the paper's experiments.

Benchmarks, examples and tests all build the paper's two experiments from
these helpers so the settings live in exactly one place:

* **Experiment 1** (section 3.1): single-cycle-operation style, datapath
  clock 10x the 300 ns main clock, transfer clock = main clock,
  performance = delay = 30 000 ns, packages 1 (64-pin) and 2 (84-pin),
  1/2/3 partitions each on its own chip.
* **Experiment 2** (section 3.2): multi-cycle operations, datapath and
  transfer clocks = main clock, performance tightened to 20 000 ns.
"""

from repro.experiments.setups import (
    EXPERIMENT1_CRITERIA,
    EXPERIMENT2_CRITERIA,
    experiment1_clocks,
    experiment1_session,
    experiment2_clocks,
    experiment2_session,
    experiment_session,
)

__all__ = [
    "EXPERIMENT1_CRITERIA",
    "EXPERIMENT2_CRITERIA",
    "experiment1_clocks",
    "experiment1_session",
    "experiment2_clocks",
    "experiment2_session",
    "experiment_session",
]
