"""Tests for JSON import/export of graphs and projects."""

from __future__ import annotations

import json

import pytest

from repro.dfg.benchmarks import ar_lattice_filter
from repro.errors import SpecificationError
from repro.experiments import experiment1_session
from repro.io.graphs import graph_from_dict, graph_to_dict
from repro.io.project import (
    load_project,
    load_project_file,
    save_project_file,
    session_to_dict,
)


class TestGraphRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        ["ar", "ewf", "fir", "diffeq", "dct", "fft"],
    )
    def test_round_trip_preserves_structure(self, factory, ar_graph,
                                            ewf_graph, fir_graph,
                                            diffeq_graph):
        from repro.dfg import dct8, fft_graph

        graph = {
            "ar": ar_graph,
            "ewf": ewf_graph,
            "fir": fir_graph,
            "diffeq": diffeq_graph,
            "dct": dct8(),
            "fft": fft_graph(4),
        }[factory]
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.name == graph.name
        assert sorted(rebuilt.operations) == sorted(graph.operations)
        assert sorted(rebuilt.values) == sorted(graph.values)
        assert rebuilt.op_counts_by_type() == graph.op_counts_by_type()
        assert [v.id for v in rebuilt.primary_outputs()] == [
            v.id for v in graph.primary_outputs()
        ]
        assert rebuilt.depth() == graph.depth()

    def test_memory_ops_round_trip(self):
        from repro.dfg.builders import GraphBuilder

        b = GraphBuilder("mem")
        a = b.input("a")
        r = b.mem_read(a, "M")
        s = b.add(r, r, name="s")
        b.mem_write(s, "M")
        b.output(s)
        graph = b.build()
        rebuilt = graph_from_dict(graph_to_dict(graph))
        writes = [
            op for op in rebuilt if op.op_type.value == "mem_write"
        ]
        assert len(writes) == 1
        assert writes[0].memory_block == "M"
        assert writes[0].output is None

    def test_document_is_json_serialisable(self, ar_graph):
        text = json.dumps(graph_to_dict(ar_graph))
        assert "ar-lattice-filter" in text

    def test_malformed_document_rejected(self):
        with pytest.raises(SpecificationError):
            graph_from_dict({"name": "x"})

    def test_unknown_op_type_rejected(self, ar_graph):
        doc = graph_to_dict(ar_graph)
        doc["operations"][0]["type"] = "teleport"
        with pytest.raises(SpecificationError, match="unknown operation"):
            graph_from_dict(doc)

    def test_duplicate_ids_rejected(self, ar_graph):
        doc = graph_to_dict(ar_graph)
        doc["operations"].append(dict(doc["operations"][0]))
        with pytest.raises(SpecificationError, match="duplicate"):
            graph_from_dict(doc)


class TestProjectRoundTrip:
    @pytest.fixture(scope="class")
    def session(self):
        return experiment1_session(package_number=2, partition_count=2)

    def test_session_round_trip(self, session, tmp_path):
        path = tmp_path / "project.json"
        save_project_file(session, path)
        loaded = load_project_file(path)
        assert sorted(loaded.partitioning().partitions) == ["P1", "P2"]
        assert loaded.clocks == session.clocks
        assert loaded.criteria.performance_ns == 30_000.0
        assert len(loaded.library) == len(session.library)

    def test_loaded_session_reproduces_results(self, session, tmp_path):
        path = tmp_path / "project.json"
        save_project_file(session, path)
        loaded = load_project_file(path)
        original = session.check("iterative").best()
        rerun = loaded.check("iterative").best()
        assert original.ii_main == rerun.ii_main
        assert original.delay_main == rerun.delay_main

    def test_named_library_shortcuts(self, session):
        doc = session_to_dict(session)
        doc["library"] = "extended"
        loaded = load_project(doc)
        assert len(loaded.library) > len(session.library)

    def test_package_by_number(self, session):
        doc = session_to_dict(session)
        for chip_doc in doc["chips"]:
            chip_doc["package"] = 1
        loaded = load_project(doc)
        assert all(
            chip.package.pin_count == 64
            for chip in loaded.chips.values()
        )

    def test_missing_sections_rejected(self):
        with pytest.raises(SpecificationError, match="malformed"):
            load_project({"graph": graph_to_dict(ar_lattice_filter())})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecificationError, match="invalid"):
            load_project_file(path)

    def test_memories_round_trip(self, tmp_path):
        import sys

        sys.path.insert(0, "examples")
        try:
            from memory_partitioning import build_session
        finally:
            sys.path.pop(0)
        session = build_session("chip1")
        path = tmp_path / "mem.json"
        save_project_file(session, path)
        loaded = load_project_file(path)
        assert set(loaded.memories) == {"M_IN", "M_OUT"}
        assert loaded.memory_chip["M_IN"] == "chip1"
        assert loaded.check("iterative").feasible
