#!/usr/bin/env python
"""Documentation checker: links resolve, examples execute.

Two independent passes, both required by CI (the ``docs`` job):

1. **Link check** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file, and every anchor
   (``file.md#section`` or ``#section``) must match a heading slug in
   the target file (GitHub's slug rules: lowercase, punctuation
   stripped, spaces to hyphens, duplicates suffixed ``-1``, ``-2``…).
   External ``http(s)``/``mailto`` links are skipped — CI must not
   depend on the network.

2. **Example execution** — every fenced ```` ```python ```` block in
   ``docs/USAGE.md`` is executed *cumulatively* in one namespace (later
   blocks see earlier blocks' variables, exactly as a reader following
   the guide would have them), in a temporary working directory so
   examples that write files leave no residue.  A guide whose examples
   cannot run is wrong by construction.

3. **Benchmark coverage** — every machine-readable benchmark artifact
   (``benchmarks/results/BENCH_*.json``) must be mentioned by name in
   ``docs/performance.md``, the document that explains how to read
   them.  A baseline nobody can interpret is a number, not a benchmark.

Usage::

    python benchmarks/check_docs.py [--no-exec] [--no-links]
        [--no-bench-coverage]

Exits non-zero on the first category of failure, after reporting all
failures in that category.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys
import tempfile
import traceback
from typing import Dict, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Files whose links are validated.
LINKED_FILES = ("README.md", "docs")

#: The guide whose python blocks must execute.
EXECUTED_GUIDE = "docs/USAGE.md"

#: The document that must mention every committed benchmark artifact.
PERFORMANCE_GUIDE = "docs/performance.md"

#: Where the machine-readable benchmark baselines live.
RESULTS_DIR = "benchmarks/results"

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^```")
_PYTHON_FENCE_RE = re.compile(r"^```python\s*$")


# ----------------------------------------------------------------------
# link checking
# ----------------------------------------------------------------------
def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's anchor slug for a heading text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # inline links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: pathlib.Path) -> List[str]:
    """All anchor slugs a markdown file exposes, fences excluded."""
    slugs: List[str] = []
    seen: Dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.append(github_slug(match.group(2), seen))
    return slugs


def markdown_files() -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for entry in LINKED_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def extract_links(path: pathlib.Path) -> List[str]:
    """Every link target in the file, fenced code excluded."""
    targets: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        targets.extend(_LINK_RE.findall(line))
    return targets


def check_links() -> List[str]:
    """All broken links across the documentation set."""
    failures: List[str] = []
    slug_cache: Dict[pathlib.Path, List[str]] = {}
    for source in markdown_files():
        rel_source = source.relative_to(REPO_ROOT)
        for target in extract_links(source):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw_path, _sep, anchor = target.partition("#")
            if raw_path:
                dest = (source.parent / raw_path).resolve()
                if not dest.exists():
                    failures.append(
                        f"{rel_source}: broken link {target!r} "
                        f"(no such file {raw_path!r})"
                    )
                    continue
            else:
                dest = source  # '#anchor' points into the same file
            if anchor:
                if dest not in slug_cache:
                    slug_cache[dest] = (
                        heading_slugs(dest) if dest.suffix == ".md" else []
                    )
                if anchor not in slug_cache[dest]:
                    failures.append(
                        f"{rel_source}: broken anchor {target!r} "
                        f"(no heading slugs {anchor!r} in "
                        f"{dest.relative_to(REPO_ROOT)})"
                    )
    return failures


# ----------------------------------------------------------------------
# example execution
# ----------------------------------------------------------------------
def python_blocks(path: pathlib.Path) -> List[Tuple[int, str]]:
    """``(first_line_number, source)`` for each ```python fence."""
    blocks: List[Tuple[int, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        if _PYTHON_FENCE_RE.match(lines[index]):
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and not _FENCE_RE.match(lines[index]):
                body.append(lines[index])
                index += 1
            blocks.append((start + 1, "\n".join(body)))
        index += 1
    return blocks


def run_guide_blocks(guide: pathlib.Path) -> List[str]:
    """Execute the guide's python blocks cumulatively; return failures."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    blocks = python_blocks(guide)
    if not blocks:
        return [f"{guide.relative_to(REPO_ROOT)}: no python blocks found"]
    namespace: Dict[str, object] = {"__name__": "__docs__"}
    original_cwd = os.getcwd()
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="chop-docs-") as scratch:
        os.chdir(scratch)
        try:
            for number, (line, source) in enumerate(blocks, start=1):
                label = (
                    f"{guide.relative_to(REPO_ROOT)} block {number} "
                    f"(line {line})"
                )
                try:
                    code = compile(source, label, "exec")
                    exec(code, namespace)  # noqa: S102 - the point
                except Exception:
                    failures.append(
                        f"{label} failed:\n{traceback.format_exc()}"
                    )
                    break  # later blocks depend on this one's bindings
                print(f"ok: {label}")
        finally:
            os.chdir(original_cwd)
    return failures


# ----------------------------------------------------------------------
# benchmark coverage
# ----------------------------------------------------------------------
def check_bench_coverage() -> List[str]:
    """Every ``BENCH_*.json`` baseline must appear in the performance
    guide by filename."""
    guide = REPO_ROOT / PERFORMANCE_GUIDE
    if not guide.exists():
        return [f"{PERFORMANCE_GUIDE}: missing (benchmark coverage)"]
    text = guide.read_text(encoding="utf-8")
    failures: List[str] = []
    artifacts = sorted(
        (REPO_ROOT / RESULTS_DIR).glob("BENCH_*.json")
    )
    if not artifacts:
        return [f"{RESULTS_DIR}: no BENCH_*.json baselines found"]
    for artifact in artifacts:
        if artifact.name not in text:
            failures.append(
                f"{PERFORMANCE_GUIDE}: does not mention "
                f"{artifact.name} — document every committed "
                f"benchmark artifact"
            )
    return failures


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-links", action="store_true", help="skip the link check"
    )
    parser.add_argument(
        "--no-exec", action="store_true", help="skip example execution"
    )
    parser.add_argument(
        "--no-bench-coverage", action="store_true",
        help="skip the benchmark-artifact coverage check",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    if not args.no_links:
        link_failures = check_links()
        print(
            f"link check: {len(markdown_files())} files, "
            f"{len(link_failures)} broken"
        )
        failures.extend(link_failures)
    if not args.no_bench_coverage:
        coverage_failures = check_bench_coverage()
        print(
            f"bench coverage: "
            f"{len(coverage_failures)} undocumented artifact(s)"
        )
        failures.extend(coverage_failures)
    if not args.no_exec:
        failures.extend(run_guide_blocks(REPO_ROOT / EXECUTED_GUIDE))

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
