"""Data-flow graph representation of behavioral specifications.

A :class:`DataFlowGraph` is a bipartite structure of :class:`Operation`
nodes connected through :class:`Value` edges.  Values carry bit widths —
the unit in which pin usage and transfer sizes are later computed.  Primary
inputs are values with no producing operation; primary outputs are values
explicitly marked as leaving the design (a value can be an output *and*
feed further operations).

The graph must be acyclic (the paper's restriction, section 2.3); the
structure enforces this lazily through :meth:`DataFlowGraph.topological_order`,
and eagerly through :func:`repro.dfg.transforms.validate_graph`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dfg.ops import MEMORY_OP_TYPES, OpType
from repro.errors import SpecificationError


@dataclass(frozen=True, slots=True)
class Value:
    """A datum flowing between operations.

    ``producer`` is the id of the operation computing the value, or ``None``
    for a primary input.  ``width`` is the bit width.
    """

    id: str
    width: int
    producer: Optional[str] = None
    is_output: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise SpecificationError(
                f"value {self.id!r} must have positive width, got {self.width}"
            )


@dataclass(frozen=True, slots=True)
class Operation:
    """One node of the data-flow graph.

    ``inputs`` is the ordered tuple of consumed value ids; ``output`` the
    produced value id (``None`` only for memory writes, which produce no
    datapath value).  Memory operations name the ``memory_block`` they
    touch so that bandwidth accounting can attribute the access.
    """

    id: str
    op_type: OpType
    inputs: Tuple[str, ...]
    output: Optional[str]
    memory_block: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op_type in MEMORY_OP_TYPES:
            if self.memory_block is None:
                raise SpecificationError(
                    f"memory operation {self.id!r} must name a memory block"
                )
        elif self.memory_block is not None:
            raise SpecificationError(
                f"compute operation {self.id!r} must not name a memory block"
            )
        if self.op_type is OpType.MEM_WRITE:
            if self.output is not None:
                raise SpecificationError(
                    f"memory write {self.id!r} must not produce a value"
                )
            if len(self.inputs) != 1:
                raise SpecificationError(
                    f"memory write {self.id!r} must consume exactly one value"
                )
        elif self.output is None:
            raise SpecificationError(
                f"operation {self.id!r} must produce a value"
            )


class DataFlowGraph:
    """An acyclic data-flow graph of operations and values.

    Construct through :class:`repro.dfg.builders.GraphBuilder` rather than
    by hand; the builder enforces referential integrity incrementally.
    """

    def __init__(
        self,
        name: str,
        operations: Dict[str, Operation],
        values: Dict[str, Value],
    ) -> None:
        self.name = name
        self._operations = dict(operations)
        self._values = dict(values)
        self._consumers: Dict[str, Tuple[str, ...]] = {}
        self._check_integrity()
        self._index_consumers()

    # ------------------------------------------------------------------
    # construction-time checks
    # ------------------------------------------------------------------
    def _check_integrity(self) -> None:
        for op in self._operations.values():
            for vid in op.inputs:
                if vid not in self._values:
                    raise SpecificationError(
                        f"operation {op.id!r} consumes unknown value {vid!r}"
                    )
            if op.output is not None:
                if op.output not in self._values:
                    raise SpecificationError(
                        f"operation {op.id!r} produces unknown value {op.output!r}"
                    )
                value = self._values[op.output]
                if value.producer != op.id:
                    raise SpecificationError(
                        f"value {op.output!r} does not record {op.id!r} as producer"
                    )
        for value in self._values.values():
            if value.producer is not None:
                producer = self._operations.get(value.producer)
                if producer is None:
                    raise SpecificationError(
                        f"value {value.id!r} names unknown producer "
                        f"{value.producer!r}"
                    )
                if producer.output != value.id:
                    raise SpecificationError(
                        f"producer {value.producer!r} does not output "
                        f"{value.id!r}"
                    )

    def _index_consumers(self) -> None:
        consumers: Dict[str, List[str]] = {vid: [] for vid in self._values}
        for op in self._operations.values():
            for vid in op.inputs:
                consumers[vid].append(op.id)
        self._consumers = {vid: tuple(ops) for vid, ops in consumers.items()}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def operations(self) -> Dict[str, Operation]:
        """Mapping of operation id to operation (do not mutate)."""
        return self._operations

    @property
    def values(self) -> Dict[str, Value]:
        """Mapping of value id to value (do not mutate)."""
        return self._values

    def operation(self, op_id: str) -> Operation:
        try:
            return self._operations[op_id]
        except KeyError:
            raise SpecificationError(f"unknown operation {op_id!r}") from None

    def value(self, value_id: str) -> Value:
        try:
            return self._values[value_id]
        except KeyError:
            raise SpecificationError(f"unknown value {value_id!r}") from None

    def consumers(self, value_id: str) -> Tuple[str, ...]:
        """Operation ids consuming the given value."""
        self.value(value_id)
        return self._consumers.get(value_id, ())

    def primary_inputs(self) -> List[Value]:
        """Values with no producing operation, in id order."""
        return sorted(
            (v for v in self._values.values() if v.producer is None),
            key=lambda v: v.id,
        )

    def primary_outputs(self) -> List[Value]:
        """Values marked as leaving the design, in id order."""
        return sorted(
            (v for v in self._values.values() if v.is_output),
            key=lambda v: v.id,
        )

    def op_count(self) -> int:
        return len(self._operations)

    def op_counts_by_type(self) -> Dict[OpType, int]:
        """Number of operations of each type present in the graph."""
        counts: Dict[OpType, int] = {}
        for op in self._operations.values():
            counts[op.op_type] = counts.get(op.op_type, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def predecessors(self, op_id: str) -> List[str]:
        """Operations producing the inputs of ``op_id`` (deduplicated)."""
        op = self.operation(op_id)
        seen: Set[str] = set()
        result: List[str] = []
        for vid in op.inputs:
            producer = self._values[vid].producer
            if producer is not None and producer not in seen:
                seen.add(producer)
                result.append(producer)
        return result

    def successors(self, op_id: str) -> List[str]:
        """Operations consuming the output of ``op_id``."""
        op = self.operation(op_id)
        if op.output is None:
            return []
        return list(self._consumers.get(op.output, ()))

    def topological_order(self) -> List[str]:
        """Operation ids in a dependency-respecting order.

        Raises :class:`SpecificationError` when the graph is cyclic — the
        paper requires inner loops to be unrolled before partitioning.
        Ties are broken by operation id so the order is deterministic.
        """
        indegree = {op_id: 0 for op_id in self._operations}
        for op_id in self._operations:
            for succ in self.successors(op_id):
                indegree[succ] += 1
        ready = deque(sorted(op_id for op_id, d in indegree.items() if d == 0))
        order: List[str] = []
        while ready:
            op_id = ready.popleft()
            order.append(op_id)
            newly_ready = []
            for succ in self.successors(op_id):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    newly_ready.append(succ)
            for succ in sorted(newly_ready):
                ready.append(succ)
        if len(order) != len(self._operations):
            raise SpecificationError(
                f"graph {self.name!r} contains a cycle; unroll inner loops "
                "before partitioning (paper section 2.3)"
            )
        return order

    def depth(self) -> int:
        """Length of the longest operation chain (critical path in ops)."""
        levels: Dict[str, int] = {}
        for op_id in self.topological_order():
            preds = self.predecessors(op_id)
            levels[op_id] = 1 + max((levels[p] for p in preds), default=0)
        return max(levels.values(), default=0)

    def subgraph_ops(self, op_ids: Iterable[str]) -> "DataFlowGraph":
        """The induced subgraph over a subset of operations.

        Values produced outside the subset become primary inputs of the
        subgraph; values consumed outside it (or marked as outputs) become
        primary outputs.  This is exactly the view BAD takes of one
        partition: "all inputs to partitions are assumed to be
        simultaneously available before the execution starts".
        """
        chosen = set(op_ids)
        unknown = chosen - set(self._operations)
        if unknown:
            raise SpecificationError(
                f"subgraph references unknown operations: {sorted(unknown)}"
            )
        ops: Dict[str, Operation] = {}
        values: Dict[str, Value] = {}
        for op_id in chosen:
            op = self._operations[op_id]
            ops[op_id] = op
            for vid in op.inputs:
                original = self._values[vid]
                if original.producer in chosen:
                    continue  # will be added as an internal value below
                values.setdefault(
                    vid,
                    Value(id=vid, width=original.width, producer=None),
                )
        for op_id in chosen:
            op = self._operations[op_id]
            if op.output is None:
                continue
            original = self._values[op.output]
            external_consumer = any(
                c not in chosen for c in self._consumers.get(op.output, ())
            )
            values[op.output] = Value(
                id=op.output,
                width=original.width,
                producer=op_id,
                is_output=original.is_output or external_consumer,
            )
        return DataFlowGraph(
            name=f"{self.name}:sub", operations=ops, values=values
        )

    def cut_values(
        self, partition_of: Dict[str, str]
    ) -> List[Tuple[str, str, Set[str]]]:
        """Values crossing partition boundaries.

        ``partition_of`` maps operation id to a partition name.  Returns a
        list of (value id, producing partition, consuming partitions)
        tuples, sorted by value id, for values whose consumers include an
        operation in a different partition than the producer.
        """
        cuts: List[Tuple[str, str, Set[str]]] = []
        for vid in sorted(self._values):
            value = self._values[vid]
            if value.producer is None:
                continue
            src = partition_of.get(value.producer)
            if src is None:
                continue
            destinations = {
                partition_of[c]
                for c in self._consumers.get(vid, ())
                if c in partition_of and partition_of[c] != src
            }
            if destinations:
                cuts.append((vid, src, destinations))
        return cuts

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, op_id: str) -> bool:
        return op_id in self._operations

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def __len__(self) -> int:
        return len(self._operations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataFlowGraph({self.name!r}, ops={len(self._operations)}, "
            f"values={len(self._values)})"
        )
