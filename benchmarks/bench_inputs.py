"""Tables 1 and 2: the experiment inputs, reproduced verbatim.

These are inputs rather than results; the bench renders them (so the
artifact set is complete) and measures the session-construction path
that consumes them.
"""

from __future__ import annotations

from repro.chips.presets import mosis_packages
from repro.experiments import experiment1_session
from repro.library.presets import table1_library
from repro.reporting.tables import library_table, package_table


def test_table1_library(benchmark, save_artifact):
    library = benchmark(table1_library)
    text = library_table(library)
    save_artifact("table1_library.txt", text)
    assert "add1" in text and "mul3" in text


def test_table2_packages(benchmark, save_artifact):
    packages = benchmark(mosis_packages)
    text = package_table(packages)
    save_artifact("table2_packages.txt", text)
    assert "64" in text and "84" in text


def test_session_construction(benchmark):
    session = benchmark.pedantic(
        lambda: experiment1_session(2, 2), rounds=5, iterations=1
    )
    assert set(session.partitioning().partitions) == {"P1", "P2"}
