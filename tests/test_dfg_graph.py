"""Tests for the data-flow graph structure."""

from __future__ import annotations

import pytest

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.ops import OpType
from repro.errors import SpecificationError


class TestValueAndOperation:
    def test_value_rejects_non_positive_width(self):
        with pytest.raises(SpecificationError):
            Value(id="v", width=0)

    def test_memory_op_needs_block(self):
        with pytest.raises(SpecificationError):
            Operation(id="r1", op_type=OpType.MEM_READ, inputs=("a",),
                      output="v")

    def test_compute_op_rejects_block(self):
        with pytest.raises(SpecificationError):
            Operation(id="a1", op_type=OpType.ADD, inputs=("a", "b"),
                      output="v", memory_block="M")

    def test_mem_write_produces_no_value(self):
        with pytest.raises(SpecificationError):
            Operation(id="w1", op_type=OpType.MEM_WRITE, inputs=("a",),
                      output="v", memory_block="M")

    def test_compute_op_needs_output(self):
        with pytest.raises(SpecificationError):
            Operation(id="a1", op_type=OpType.ADD, inputs=("a", "b"),
                      output=None)


class TestIntegrity:
    def test_unknown_input_value(self):
        op = Operation("a1", OpType.ADD, ("missing", "b"), "v")
        values = {
            "b": Value("b", 16),
            "v": Value("v", 16, producer="a1"),
        }
        with pytest.raises(SpecificationError):
            DataFlowGraph("bad", {"a1": op}, values)

    def test_producer_mismatch(self):
        op = Operation("a1", OpType.ADD, ("b", "b"), "v")
        values = {
            "b": Value("b", 16),
            "v": Value("v", 16, producer="other"),
        }
        with pytest.raises(SpecificationError):
            DataFlowGraph("bad", {"a1": op}, values)


class TestQueries:
    def test_primary_inputs_outputs(self, tiny_graph):
        assert [v.id for v in tiny_graph.primary_inputs()] == ["a", "b", "c"]
        assert [v.id for v in tiny_graph.primary_outputs()] == ["y"]

    def test_op_counts(self, tiny_graph):
        counts = tiny_graph.op_counts_by_type()
        assert counts[OpType.MUL] == 1
        assert counts[OpType.ADD] == 1

    def test_predecessors_successors(self, tiny_graph):
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.MUL
        ]
        (add_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.ADD
        ]
        assert tiny_graph.predecessors(add_id) == [mul_id]
        assert tiny_graph.successors(mul_id) == [add_id]
        assert tiny_graph.predecessors(mul_id) == []
        assert tiny_graph.successors(add_id) == []

    def test_unknown_operation_raises(self, tiny_graph):
        with pytest.raises(SpecificationError):
            tiny_graph.operation("nope")
        with pytest.raises(SpecificationError):
            tiny_graph.value("nope")
        with pytest.raises(SpecificationError):
            tiny_graph.predecessors("nope")

    def test_topological_order_respects_dependencies(self, ar_graph):
        order = ar_graph.topological_order()
        position = {op_id: i for i, op_id in enumerate(order)}
        for op_id in order:
            for pred in ar_graph.predecessors(op_id):
                assert position[pred] < position[op_id]

    def test_topological_order_deterministic(self, ar_graph):
        assert ar_graph.topological_order() == ar_graph.topological_order()

    def test_depth_of_chain(self, chain_graph):
        assert chain_graph.depth() == 4

    def test_len_and_contains(self, tiny_graph):
        assert len(tiny_graph) == 2
        assert "mul1" in tiny_graph
        assert "nope" not in tiny_graph


class TestSubgraph:
    def test_subgraph_boundary_values(self, tiny_graph):
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.MUL
        ]
        sub = tiny_graph.subgraph_ops([mul_id])
        # Product now leaves the subgraph -> becomes an output.
        assert len(sub.primary_outputs()) == 1
        assert len(sub.primary_inputs()) == 2  # a and b

    def test_subgraph_consumer_side(self, tiny_graph):
        (add_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.ADD
        ]
        sub = tiny_graph.subgraph_ops([add_id])
        # The product arrives from outside -> primary input; c too.
        assert len(sub.primary_inputs()) == 2
        assert [v.id for v in sub.primary_outputs()] == ["y"]

    def test_subgraph_whole_graph_preserves_io(self, ar_graph):
        sub = ar_graph.subgraph_ops(ar_graph.operations.keys())
        assert len(sub.primary_inputs()) == len(ar_graph.primary_inputs())
        assert len(sub.primary_outputs()) == len(ar_graph.primary_outputs())

    def test_subgraph_rejects_unknown_ops(self, tiny_graph):
        with pytest.raises(SpecificationError):
            tiny_graph.subgraph_ops(["ghost"])


class TestCutValues:
    def test_no_cut_when_single_partition(self, tiny_graph):
        mapping = {op.id: "P1" for op in tiny_graph}
        assert tiny_graph.cut_values(mapping) == []

    def test_cut_between_producer_and_consumer(self, tiny_graph):
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.MUL
        ]
        (add_id,) = [
            o.id for o in tiny_graph if o.op_type is OpType.ADD
        ]
        cuts = tiny_graph.cut_values({mul_id: "P1", add_id: "P2"})
        assert len(cuts) == 1
        vid, src, dests = cuts[0]
        assert src == "P1" and dests == {"P2"}

    def test_cycle_detection(self):
        # Build a cyclic structure directly (builder cannot make one).
        ops = {
            "a1": Operation("a1", OpType.ADD, ("v2", "x"), "v1"),
            "a2": Operation("a2", OpType.ADD, ("v1", "x"), "v2"),
        }
        values = {
            "x": Value("x", 16),
            "v1": Value("v1", 16, producer="a1"),
            "v2": Value("v2", 16, producer="a2"),
        }
        graph = DataFlowGraph("cyclic", ops, values)
        with pytest.raises(SpecificationError, match="cycle"):
            graph.topological_order()
