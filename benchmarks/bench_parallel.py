"""Serial vs engine-sharded enumeration on the largest example spec.

Measures the wall-clock of the same combination walk run serially and
through :class:`repro.engine.EvaluationEngine` at increasing worker
counts, asserting byte-identical results at every width, and records the
table into ``benchmarks/results/parallel_speedup.txt`` plus a
machine-readable ``benchmarks/results/BENCH_parallel.json`` (per worker
count: wall seconds and combinations/second).

Run directly (no pytest needed)::

    python benchmarks/bench_parallel.py            # full: 2/4/8 workers
    python benchmarks/bench_parallel.py --smoke    # CI: equivalence only

The full run additionally asserts a >= 2x speedup at 4 workers — but
only on machines that actually have 4 cores; on smaller hosts (and in
``--smoke`` mode) the table is still produced and the equivalence checks
still gate, because correctness does not need cores.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
SPEC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples", "specs",
    "moving_average.chop")


def build_session():
    """The bench workload: the 8-tap moving average over 3 chips."""
    from repro.bad.styles import (
        ArchitectureStyle, ClockScheme, OperationTiming,
    )
    from repro.chips.presets import mosis_package
    from repro.core.chop import ChopSession
    from repro.core.feasibility import FeasibilityCriteria
    from repro.core.schemes import horizontal_cut
    from repro.dfg.parser import parse_spec
    from repro.library.presets import extended_library
    from repro.memory.module import MemoryModule

    with open(SPEC) as handle:
        graph = parse_spec(handle.read())
    blocks = sorted(
        {
            op.memory_block
            for op in graph
            if getattr(op, "memory_block", None)
        }
    )
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=120_000.0, delay_ns=120_000.0
        ),
        memories=[
            MemoryModule(name, 256, 16, off_the_shelf=True)
            for name in blocks
        ],
    )
    parts = horizontal_cut(graph, 3)
    assignment = {}
    for index, part in enumerate(parts):
        chip = f"chip{index + 1}"
        session.add_chip(chip, mosis_package(2))
        assignment[part.name] = chip
    session.set_partitions(parts, assignment)
    return session


def comparable(result) -> dict:
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


def timed_check(session, prune: bool, engine=None):
    started = time.perf_counter()
    result = session.check(
        heuristic="enumeration", prune=prune, engine=engine
    )
    return result, time.perf_counter() - started


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="pruned workload, 2 workers, no speedup assertion "
        "(the CI mode)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to measure (default: 2 4 8, or 2 with "
        "--smoke)",
    )
    parser.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
    )
    args = parser.parse_args(argv)

    from repro.engine import EvaluationEngine

    widths = args.workers or ([2] if args.smoke else [2, 4, 8])
    # --smoke keeps the level-1 pruned space (fast, still parallel);
    # the full bench searches the raw prediction lists, the workload
    # whose 61-second flavour the paper measured in section 3.1.
    prune = bool(args.smoke)

    session = build_session()
    # Predict once up front so every timing below measures the
    # combination walk alone, never BAD prediction.
    session.predict_all()

    serial_result, serial_s = timed_check(session, prune)
    reference = comparable(serial_result)
    rows = [("serial", 1, serial_s, 1.0, "-")]
    failures = []
    for workers in widths:
        engine = EvaluationEngine(
            workers=workers,
            start_method=args.start_method,
            min_combinations=1,
        )
        result, elapsed = timed_check(session, prune, engine=engine)
        if comparable(result) != reference:
            failures.append(
                f"{workers}-worker result differs from serial"
            )
        stats = engine.stats()
        mode = (
            "parallel" if stats["searches_parallel"] else "serial"
        )
        speedup = serial_s / elapsed if elapsed > 0 else float("inf")
        rows.append((mode, workers, elapsed, speedup,
                     stats["last_utilization"]))

    lines = [
        f"Parallel enumeration speedup — moving_average.chop, "
        f"3 partitions, {serial_result.trials} combinations "
        f"({'pruned' if prune else 'raw'} predictions), "
        f"host cores: {os.cpu_count()}",
        "",
        f"{'mode':<10} {'workers':>7} {'wall s':>8} {'speedup':>8} "
        f"{'utilization':>12}",
    ]
    for mode, workers, elapsed, speedup, utilization in rows:
        lines.append(
            f"{mode:<10} {workers:>7} {elapsed:>8.3f} {speedup:>7.2f}x "
            f"{str(utilization):>12}"
        )
    lines.append("")
    lines.append(
        "equivalence: "
        + ("FAILED: " + "; ".join(failures) if failures else
           "all worker counts byte-identical to serial")
    )
    table = "\n".join(lines)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "parallel_speedup.txt")
    with open(out_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\nwrote {out_path}")

    combinations = serial_result.trials
    json_doc = {
        "bench": "parallel_enumeration",
        "spec": "moving_average.chop",
        "partitions": 3,
        "combinations": combinations,
        "pruned": prune,
        "host_cores": os.cpu_count(),
        "equivalence_ok": not failures,
        "runs": [
            {
                "mode": mode,
                "workers": workers,
                "wall_s": round(elapsed, 6),
                "combos_per_s": (
                    round(combinations / elapsed, 1)
                    if elapsed > 0 else None
                ),
                "speedup": round(speedup, 3),
                "utilization": (
                    utilization if utilization != "-" else None
                ),
            }
            for mode, workers, elapsed, speedup, utilization in rows
        ],
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_parallel.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    if failures:
        return 1
    if not args.smoke and 4 in widths and (os.cpu_count() or 1) >= 4:
        at4 = next(r for r in rows if r[1] == 4 and r[0] != "serial")
        if at4[3] < 2.0:
            print(
                f"FAILED: expected >= 2x speedup at 4 workers on a "
                f"{os.cpu_count()}-core host, measured {at4[3]:.2f}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
