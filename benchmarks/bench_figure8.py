"""Figure 8: part of the design space of experiment 2, unpruned.

The paper could not keep the whole experiment-2 space ("swap space
problems") and plots the 1-partition slice only: 21 828 designs (8 764
unique) in 65.89 s.  This bench replays that slice.
"""

from __future__ import annotations

from repro.experiments import experiment2_session
from repro.reporting.figures import ascii_scatter, scatter_csv


def test_figure8_design_space(benchmark, save_artifact):
    outcome = {}

    def run_keep_all():
        session = experiment2_session(partition_count=1)
        result = session.check(
            "enumeration", prune=False, keep_all=True
        )
        outcome["result"] = result
        return result

    benchmark.pedantic(run_keep_all, rounds=1, iterations=1)
    result = outcome["result"]
    points = result.space.scatter_series()

    header = (
        "Figure 8: designs considered during experiment 2, "
        "1-partition slice (no pruning)\n"
        f"total designs: {result.space.total}, "
        f"unique designs: {result.space.unique}\n"
        "(paper: 21828 total, 8764 unique)\n"
    )
    save_artifact(
        "figure8_design_space.txt", header + ascii_scatter(points)
    )
    save_artifact("figure8_design_space.csv", scatter_csv(points))

    assert result.space.total > 200
    assert result.space.unique <= result.space.total


def test_figure8_exp2_space_exceeds_exp1(benchmark, save_artifact):
    """The faster datapath clock creates more design possibilities —
    the reason the paper's figure 8 cloud dwarfs figure 7's slice."""
    from repro.experiments import experiment1_session

    sizes = {}

    def run_both():
        for name, session in (
            ("exp1", experiment1_session(2, 1)),
            ("exp2", experiment2_session(1)),
        ):
            result = session.check(
                "enumeration", prune=False, keep_all=True
            )
            sizes[name] = result.space.total
        return sizes

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_artifact(
        "figure8_vs_figure7_slice.txt",
        f"exp1 1-partition cloud: {sizes['exp1']}\n"
        f"exp2 1-partition cloud: {sizes['exp2']}\n"
        "(paper: 111-design slice vs 21828-design slice)",
    )
    assert sizes["exp2"] > sizes["exp1"]
