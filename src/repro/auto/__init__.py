"""Automatic multilevel partitioning on top of the CHOP session.

The paper positions CHOP as an *interactive* feasibility checker; this
package closes the ROADMAP's "multilevel auto-partitioner" gap with the
classic coarsen / initial-partition / refine scheme (plus RePart-style
logic replication), using the CHOP session itself — not cut bits — as
the final acceptance oracle.  See :mod:`repro.auto.partitioner` for the
pipeline and ``docs/auto.md`` for the design notes.
"""

from repro.auto.coarsen import (
    ClusterGraph,
    CoarseLevel,
    base_cluster_graph,
    coarsen,
)
from repro.auto.initial import topo_interval_split, verify_chain
from repro.auto.refine import RefineStats, fm_refine, project
from repro.auto.replicate import (
    Clone,
    ReplicationReport,
    replicate_cut_ops,
    transfer_bits,
)
from repro.auto.partitioner import (
    AutoPartitionConfig,
    AutoPartitionResult,
    auto_partition,
    default_auto_criteria,
    default_auto_package,
    default_auto_session,
)

__all__ = [
    "AutoPartitionConfig",
    "AutoPartitionResult",
    "Clone",
    "ClusterGraph",
    "CoarseLevel",
    "RefineStats",
    "ReplicationReport",
    "auto_partition",
    "base_cluster_graph",
    "coarsen",
    "default_auto_criteria",
    "default_auto_package",
    "default_auto_session",
    "fm_refine",
    "project",
    "replicate_cut_ops",
    "topo_interval_split",
    "transfer_bits",
    "verify_chain",
]
