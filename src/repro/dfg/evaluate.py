"""Reference interpreter for data-flow graphs.

Gives the behavioral specification executable semantics: two's-complement
fixed-width integer arithmetic, memory blocks as word arrays with
addressed reads and stream (append-order) writes.  The synthesis
simulator (:mod:`repro.synth.simulate`) is checked against this
interpreter — a bound, scheduled netlist must compute exactly what the
specification computes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, MutableMapping, Optional

from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import SpecificationError


def _mask(value: int, width: int) -> int:
    """Two's-complement wrap to ``width`` bits (non-negative residue)."""
    return value & ((1 << width) - 1)


def apply_op(
    op_type: OpType, operands: List[int], width: int
) -> int:
    """One operation's arithmetic on already-masked operands."""
    if op_type is OpType.ADD:
        return _mask(operands[0] + operands[1], width)
    if op_type is OpType.SUB:
        return _mask(operands[0] - operands[1], width)
    if op_type is OpType.MUL:
        return _mask(operands[0] * operands[1], width)
    if op_type is OpType.DIV:
        if operands[1] == 0:
            return _mask(-1, width)  # hardware saturates on div-by-zero
        return _mask(operands[0] // operands[1], width)
    if op_type is OpType.COMPARE:
        return 1 if operands[0] < operands[1] else 0
    if op_type is OpType.SHIFT:
        return _mask(operands[0] << (operands[1] % width), width)
    if op_type is OpType.AND:
        return operands[0] & operands[1]
    if op_type is OpType.OR:
        return operands[0] | operands[1]
    raise SpecificationError(
        f"operation type {op_type.value!r} has no arithmetic semantics"
    )


def evaluate(
    graph: DataFlowGraph,
    inputs: Mapping[str, int],
    memories: Optional[MutableMapping[str, List[int]]] = None,
) -> Dict[str, int]:
    """Execute the graph; returns every computed value by id.

    ``inputs`` must cover all primary inputs.  ``memories`` maps block
    names to word lists, mutated in place: reads index by
    ``address % len(words)``, writes append in topological order (stream
    semantics — the write operation carries no address).
    """
    values: Dict[str, int] = {}
    for value in graph.primary_inputs():
        if value.id not in inputs:
            raise SpecificationError(
                f"missing input value {value.id!r}"
            )
        values[value.id] = _mask(int(inputs[value.id]), value.width)

    memories = memories if memories is not None else {}
    for op_id in graph.topological_order():
        op = graph.operation(op_id)
        operands = [values[vid] for vid in op.inputs]
        if op.op_type is OpType.MEM_READ:
            words = _memory(memories, op.memory_block)
            assert op.output is not None
            width = graph.value(op.output).width
            values[op.output] = _mask(
                words[operands[0] % len(words)], width
            )
            continue
        if op.op_type is OpType.MEM_WRITE:
            words = _memory(memories, op.memory_block)
            words.append(operands[0])
            continue
        assert op.output is not None
        width = graph.value(op.output).width
        values[op.output] = apply_op(op.op_type, operands, width)
    return values


def evaluate_outputs(
    graph: DataFlowGraph,
    inputs: Mapping[str, int],
    memories: Optional[MutableMapping[str, List[int]]] = None,
) -> Dict[str, int]:
    """Like :func:`evaluate`, restricted to the primary outputs."""
    values = evaluate(graph, inputs, memories)
    return {
        v.id: values[v.id]
        for v in graph.primary_outputs()
        if v.id in values
    }


def _memory(
    memories: MutableMapping[str, List[int]], block: Optional[str]
) -> List[int]:
    assert block is not None
    words = memories.get(block)
    if words is None or not words:
        raise SpecificationError(
            f"memory block {block!r} has no contents to read"
        )
    return words
