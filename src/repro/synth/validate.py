"""Prediction-versus-synthesis validation.

:func:`synthesize_prediction` re-derives the schedule a prediction was
built from (the scheduler is deterministic), binds it, and prices the
netlist; :func:`validation_report` runs that over a whole prediction
list and scores the predictor the way the paper's authors scored BAD
against ADAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bad.allocation import partition_resource_model
from repro.bad.prediction import DesignPrediction
from repro.bad.predictor import BADPredictor
from repro.bad.scheduling import list_schedule
from repro.dfg.graph import DataFlowGraph
from repro.errors import PredictionError
from repro.library.library import ComponentLibrary
from repro.synth.binding import bind_design
from repro.synth.netlist import Netlist, build_netlist


@dataclass(frozen=True, slots=True)
class SynthesisComparison:
    """One prediction against its synthesized implementation."""

    prediction: DesignPrediction
    netlist: Netlist

    @property
    def predicted_ml(self) -> float:
        return self.prediction.area_total.ml

    @property
    def actual(self) -> float:
        return self.netlist.area_mil2

    @property
    def within_bounds(self) -> bool:
        """Whether the actual area falls inside the predicted triplet."""
        total = self.prediction.area_total
        return total.lb <= self.actual <= total.ub

    @property
    def relative_error(self) -> float:
        """(most-likely - actual) / actual."""
        return (self.predicted_ml - self.actual) / self.actual


def synthesize_prediction(
    predictor: BADPredictor,
    graph: DataFlowGraph,
    prediction: DesignPrediction,
    op_ids: Optional[Sequence[str]] = None,
) -> Netlist:
    """Carry out one (nonpipelined) prediction's design decisions.

    Pipelined designs need modulo binding and are out of the validation
    scope — :class:`PredictionError` is raised for them.
    """
    if prediction.pipelined:
        raise PredictionError(
            "synthesis validation covers nonpipelined designs; "
            "pipelined binding is modulo and not implemented"
        )
    sub = graph.subgraph_ops(op_ids) if op_ids is not None else graph
    op_class, _counts = partition_resource_model(sub)
    duration = predictor._durations(sub, prediction.module_set)
    delay_ns, cycle_ns = predictor._chaining_model(
        sub, prediction.module_set
    )
    if duration and max(duration.values()) > 1:
        delay_ns, cycle_ns = None, None
    capacities = predictor._capacities(prediction.operators)
    schedule = list_schedule(
        sub, duration, op_class, capacities,
        delay_ns=delay_ns, cycle_ns=cycle_ns,
    )
    bound = bind_design(sub, schedule)
    width = max((v.width for v in sub.values.values()), default=1)
    return build_netlist(
        sub, schedule, bound, prediction.module_set,
        predictor.library, width,
        pla_params=predictor.params.pla,
        wiring_params=predictor.params.wiring,
    )


def validation_report(
    predictor: BADPredictor,
    graph: DataFlowGraph,
    predictions: Sequence[DesignPrediction],
    op_ids: Optional[Sequence[str]] = None,
) -> List[SynthesisComparison]:
    """Synthesize every nonpipelined prediction and compare areas."""
    comparisons: List[SynthesisComparison] = []
    for prediction in predictions:
        if prediction.pipelined:
            continue
        netlist = synthesize_prediction(
            predictor, graph, prediction, op_ids
        )
        comparisons.append(
            SynthesisComparison(prediction=prediction, netlist=netlist)
        )
    if not comparisons:
        raise PredictionError(
            "no nonpipelined predictions to validate against"
        )
    return comparisons
