"""Multi-tenant registry of loaded designer sessions.

Each uploaded project document becomes one :class:`ChopSession` held in
memory, addressed by a project id derived from the document fingerprint —
uploads are therefore idempotent: re-posting an identical document maps
to the already-loaded session.  A bounded LRU eviction policy keeps
memory proportional to the number of *active* designer sessions, not the
number of documents ever uploaded.

Because the session owns its :class:`repro.eval.EvaluationContext`, the
incremental evaluation state survives across job re-checks on the same
project: a modify-and-recheck request pays only for the partitions it
touched.  :meth:`SessionRegistry.eval_stats` aggregates every resident
context's counters for the ``/metrics`` ``eval`` gauge.

``ChopSession`` itself is not thread-safe, so each entry carries a lock
that the serving layer holds while a check runs against that session.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.chop import ChopSession
from repro.io.project import load_project, project_fingerprint


@dataclass
class SessionEntry:
    """One loaded project and its serving-side bookkeeping."""

    project_id: str
    fingerprint: str
    session: ChopSession
    created_at: float = field(default_factory=time.time)
    lock: threading.RLock = field(default_factory=threading.RLock)

    def to_dict(self) -> Dict[str, Any]:
        partitioning = self.session.partitioning()
        return {
            "project_id": self.project_id,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "graph": self.session.graph.name,
            "operations": self.session.graph.op_count(),
            "partitions": sorted(partitioning.partitions),
            "chips": sorted(self.session.chips),
        }


class SessionRegistry:
    """Fingerprint-addressed LRU store of live :class:`ChopSession`s."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(
                f"session capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._evictions = 0

    def put(self, document: Dict[str, Any]) -> Tuple[SessionEntry, bool]:
        """Load (or find) the session for a document.

        Returns ``(entry, created)``; ``created`` is ``False`` when an
        identical document was already resident.  Raises
        :class:`repro.errors.SpecificationError` on a malformed document.
        """
        fingerprint = project_fingerprint(document)
        project_id = fingerprint[:16]
        with self._lock:
            entry = self._entries.get(project_id)
            if entry is not None:
                self._entries.move_to_end(project_id)
                return entry, False
        # Load outside the lock — parsing a big graph should not stall
        # other tenants.  A racing identical upload just loads twice and
        # the second insert wins harmlessly (same fingerprint).
        session = load_project(document)
        entry = SessionEntry(
            project_id=project_id,
            fingerprint=fingerprint,
            session=session,
        )
        with self._lock:
            existing = self._entries.get(project_id)
            if existing is not None:
                self._entries.move_to_end(project_id)
                return existing, False
            self._entries[project_id] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return entry, True

    def get(self, project_id: str) -> Optional[SessionEntry]:
        """Look up a resident session, refreshing its LRU position."""
        with self._lock:
            entry = self._entries.get(project_id)
            if entry is not None:
                self._entries.move_to_end(project_id)
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Gauges for ``/metrics``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._entries),
                "evictions": self._evictions,
            }

    def eval_stats(self) -> Dict[str, Any]:
        """Aggregated evaluation-context gauges across resident sessions.

        Counters only (sums are meaningful); reading a session's stats
        dict needs no per-entry lock — counters are plain ints updated
        under the entry lock, and a slightly stale sum is fine for a
        gauge.
        """
        with self._lock:
            entries = list(self._entries.values())
        agg: Dict[str, Any] = {
            "sessions": len(entries),
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
            "seeded": 0,
            "taskgraph_full_builds": 0,
            "taskgraph_incremental_updates": 0,
            "taskgraph_reuses": 0,
        }
        for entry in entries:
            stats = entry.session.eval_stats()
            agg["hits"] += stats["hits"]
            agg["misses"] += stats["misses"]
            agg["evictions"] += stats["evictions"]
            agg["invalidations"] += stats["invalidations"]
            agg["seeded"] += stats["seeded"]
            taskgraph = stats["taskgraph"]
            agg["taskgraph_full_builds"] += taskgraph["full_builds"]
            agg["taskgraph_incremental_updates"] += (
                taskgraph["incremental_updates"]
            )
            agg["taskgraph_reuses"] += taskgraph["reuses"]
        lookups = agg["hits"] + agg["misses"]
        agg["hit_ratio"] = (
            round(agg["hits"] / lookups, 4) if lookups else 0.0
        )
        return agg
