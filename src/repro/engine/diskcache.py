"""Persistent on-disk cache of BAD prediction lists.

Prediction is the expensive half of a feasibility check (the search only
recombines predicted designs), and predictions depend on nothing but the
project inputs — so they can outlive the process.  The cache keys each
entry on the canonical :func:`repro.io.project.project_fingerprint` of
the project document *plus* an independent digest of the resolved
library and clock scheme (belt and braces: a preset label like
``"table1"`` must not alias across library revisions) *plus* the cache
format version.  Repeated ``chop check`` runs and server restarts on an
unchanged project then skip BAD prediction entirely.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a torn entry; a reader that finds a
corrupt or version-mismatched file treats it as a miss and deletes it.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.library.library import ComponentLibrary
from repro.obs.tracing import span as trace_span

#: Bump whenever the pickled payload layout or the prediction model's
#: output semantics change; every older entry becomes a miss.
CACHE_VERSION = 1


def library_clock_digest(
    library: ComponentLibrary, clocks: ClockScheme
) -> str:
    """A stable digest of the resolved library and clock scheme."""
    parts: List[str] = [library.name]
    for op_type in library.supported_op_types():
        for component in library.components_for(op_type):
            parts.append(
                f"{component.name}:{component.op_type.value}:"
                f"{component.bit_width}:{component.area_mil2!r}:"
                f"{component.delay_ns!r}"
            )
    for cell in (library.register, library.mux):
        parts.append(f"{cell.name}:{cell.area_mil2!r}:{cell.delay_ns!r}")
    parts.append(
        f"clocks:{clocks.main_cycle_ns!r}:{clocks.dp_multiplier}:"
        f"{clocks.transfer_multiplier}"
    )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


class DiskPredictionCache:
    """A directory of pickled per-project prediction lists."""

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        version: int = CACHE_VERSION,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.version = version
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._invalidated = 0

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self,
        fingerprint: str,
        library: ComponentLibrary,
        clocks: ClockScheme,
    ) -> str:
        """Cache key for a project fingerprint under a resolved setup."""
        digest = library_clock_digest(library, clocks)
        return hashlib.sha256(
            f"v{self.version}|{fingerprint}|{digest}".encode("utf-8")
        ).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.predictions.pkl"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    def load(
        self, key: str
    ) -> Optional[Dict[str, List[DesignPrediction]]]:
        """The cached per-partition prediction lists, or ``None``.

        Any defect — missing file, unreadable pickle, version or key
        mismatch — is a miss; defective files are removed so they cannot
        fail again.
        """
        with trace_span("diskcache.load", key=key[:12]) as sp:
            path = self.path_for(key)
            try:
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                self._count(hit=False)
                sp.put("hit", False)
                return None
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError):
                self._discard(path)
                self._count(hit=False)
                sp.put("hit", False)
                return None
            if (
                not isinstance(payload, dict)
                or payload.get("version") != self.version
                or payload.get("key") != key
                or not isinstance(payload.get("predictions"), dict)
            ):
                self._discard(path)
                self._count(hit=False)
                sp.put("hit", False)
                return None
            self._count(hit=True)
            sp.put("hit", True)
            sp.add("partitions", len(payload["predictions"]))
            return payload["predictions"]

    def store(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> None:
        """Atomically persist the prediction lists under ``key``."""
        with trace_span(
            "diskcache.store", key=key[:12],
        ) as sp:
            payload = {
                "version": self.version,
                "key": key,
                "predictions": {
                    name: list(preds)
                    for name, preds in sorted(predictions.items())
                },
            }
            sp.add("partitions", len(payload["predictions"]))
            descriptor, temp_name = tempfile.mkstemp(
                prefix=".tmp-", suffix=".pkl", dir=self.directory
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(temp_name, self.path_for(key))
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                self._stores += 1

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _discard(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        with self._lock:
            self._invalidated += 1

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/store counters for ``/metrics`` and the CLI."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "directory": str(self.directory),
                "version": self.version,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "invalidated": self._invalidated,
                "hit_rate": (
                    round(self._hits / total, 4) if total else None
                ),
            }
