"""A small behavioral specification language.

CHOP's input DFGs came out of the ADAM design system's front ends; this
module provides the equivalent entry point: a textual behavioral
language compiled straight into a :class:`~repro.dfg.graph.DataFlowGraph`
through the builder.  Grammar (line-oriented, ``#`` comments)::

    graph fir4 width 16        # optional header (name, default width)
    input x, k0, k1 width 8    # declare inputs (width optional)
    memory M                   # declare a memory block name

    t = x * k0                 # assignments build operations
    u = (t + k1) - x           # full expression grammar below
    v = read M[x]              # addressed memory read
    write M, u                 # stream memory write
    repeat 3 as i:             # determinate loop, unrolled at parse
        acc = acc + k$i        #   $i substitutes the iteration index
    end

    output u, v                # mark primary outputs

Expressions support ``+ - * / & |``, comparison ``<``, shift ``<<``,
parentheses, and names.  Operator precedence is conventional
(``* /`` over ``+ -`` over ``<<`` over ``< & |``).  Every assignment
target becomes a named value; reassigning a name shadows it for later
lines (SSA renaming happens internally), exactly how loop-carried
accumulators behave after unrolling.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.units import DEFAULT_BIT_WIDTH

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9$]*)"
    r"|(?P<op><<|[-+*/&|<,()\[\]=]))"
)

#: Binding powers for the Pratt expression parser.
_BINDING = {
    "|": 10,
    "&": 10,
    "<": 20,
    "<<": 30,
    "+": 40,
    "-": 40,
    "*": 50,
    "/": 50,
}

_OP_TYPES = {
    "+": OpType.ADD,
    "-": OpType.SUB,
    "*": OpType.MUL,
    "/": OpType.DIV,
    "<": OpType.COMPARE,
    "<<": OpType.SHIFT,
    "&": OpType.AND,
    "|": OpType.OR,
}


@dataclass
class _Line:
    number: int
    text: str


class _ExprParser:
    """Pratt parser producing a small AST.

    Nodes are tuples: ``("op", OpType, left, right)``,
    ``("name", identifier)``, ``("num", value)`` and
    ``("read", block, address_node)``.  Keeping an AST lets the emitter
    name the root operation after the assignment target.
    """

    def __init__(self, tokens: List[str], line: int) -> None:
        self.tokens = tokens
        self.position = 0
        self.line = line

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise SpecificationError(
                f"line {self.line}: unexpected end of expression"
            )
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.advance()
        if got != token:
            raise SpecificationError(
                f"line {self.line}: expected {token!r}, got {got!r}"
            )

    def parse(self, min_power: int = 0):
        left = self._primary()
        while True:
            token = self.peek()
            power = _BINDING.get(token or "")
            if token is None or power is None or power < min_power:
                return left
            self.advance()
            right = self.parse(power + 1)
            left = ("op", _OP_TYPES[token], left, right)
        return left

    def _primary(self):
        token = self.advance()
        if token == "(":
            inner = self.parse()
            self.expect(")")
            return inner
        if token == "read":
            block = self.advance()
            self.expect("[")
            address = self.parse()
            self.expect("]")
            return ("read", block, address)
        if re.fullmatch(r"\d+", token):
            return ("num", int(token))
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9$]*", token):
            return ("name", token)
        raise SpecificationError(
            f"line {self.line}: unexpected token {token!r}"
        )


class _Compiler:
    """Statement-by-statement compilation into a GraphBuilder."""

    def __init__(self) -> None:
        self.builder: Optional[GraphBuilder] = None
        self.name = "spec"
        self.width = DEFAULT_BIT_WIDTH
        #: Source-language name -> current value id (SSA head).
        self.environment: Dict[str, str] = {}
        self.memories: set = set()
        self.outputs: List[str] = []
        self._constants: Dict[int, str] = {}
        self._header_done = False

    # ------------------------------------------------------------------
    def ensure_builder(self) -> GraphBuilder:
        if self.builder is None:
            self.builder = GraphBuilder(self.name, self.width)
        return self.builder

    def constant(self, value: int, line: int) -> str:
        """Constants become dedicated input values (ROM-fed), as the
        coefficient inputs of the paper's benchmarks are."""
        existing = self._constants.get(value)
        if existing is not None:
            return existing
        vid = self.ensure_builder().input(f"const_{value}")
        self._constants[value] = vid
        self.environment[f"const_{value}"] = vid
        return vid

    def lookup(self, name: str, line: int) -> str:
        vid = self.environment.get(name)
        if vid is None:
            raise SpecificationError(
                f"line {line}: undefined name {name!r}"
            )
        return vid

    def emit(self, node, line: int, name: Optional[str] = None) -> str:
        """Emit an AST node; ``name`` labels the root value if the root
        creates an operation (a bare name/constant cannot be renamed)."""
        kind = node[0]
        if kind == "name":
            return self.lookup(node[1], line)
        if kind == "num":
            return self.constant(node[1], line)
        if kind == "read":
            _k, block, address = node
            if block not in self.memories:
                raise SpecificationError(
                    f"line {line}: undeclared memory {block!r}"
                )
            address_vid = self.emit(address, line)
            return self.ensure_builder().mem_read(
                address_vid, block, name=self._fresh(name)
            )
        _k, op_type, left, right = node
        left_vid = self.emit(left, line)
        right_vid = self.emit(right, line)
        return self.ensure_builder().op(
            op_type, left_vid, right_vid, name=self._fresh(name)
        )

    def _fresh(self, name: Optional[str]) -> Optional[str]:
        """A source name is usable as a value id only once (SSA)."""
        if name is None:
            return None
        builder = self.ensure_builder()
        if name in builder._values:  # shadowed: keep auto-naming
            return None
        return name

    # ------------------------------------------------------------------
    def run(self, lines: List[_Line]) -> DataFlowGraph:
        index = 0
        while index < len(lines):
            index = self._statement(lines, index)
        builder = self.ensure_builder()
        if not self.outputs:
            raise SpecificationError(
                "specification declares no outputs"
            )
        for name in self.outputs:
            builder.output(self.lookup(name, 0))
        return builder.build()

    def _statement(self, lines: List[_Line], index: int) -> int:
        line = lines[index]
        text = line.text
        if text.startswith("graph "):
            self._header(line)
            return index + 1
        if text.startswith("input "):
            self._inputs(line)
            return index + 1
        if text.startswith("memory "):
            self._memory(line)
            return index + 1
        if text.startswith("output "):
            self._outputs(line)
            return index + 1
        if text.startswith("write "):
            self._write(line)
            return index + 1
        if text.startswith("repeat "):
            return self._repeat(lines, index)
        if text == "end":
            raise SpecificationError(
                f"line {line.number}: 'end' without matching 'repeat'"
            )
        if "=" in text:
            self._assignment(line)
            return index + 1
        raise SpecificationError(
            f"line {line.number}: cannot parse statement {text!r}"
        )

    def _header(self, line: _Line) -> None:
        if self._header_done or self.builder is not None:
            raise SpecificationError(
                f"line {line.number}: header must come first"
            )
        match = re.fullmatch(
            r"graph\s+(\w[\w-]*)(?:\s+width\s+(\d+))?", line.text
        )
        if not match:
            raise SpecificationError(
                f"line {line.number}: malformed graph header"
            )
        self.name = match.group(1)
        if match.group(2):
            self.width = int(match.group(2))
        self._header_done = True

    def _inputs(self, line: _Line) -> None:
        match = re.fullmatch(
            r"input\s+(.+?)(?:\s+width\s+(\d+))?", line.text
        )
        if not match:
            raise SpecificationError(
                f"line {line.number}: malformed input declaration"
            )
        width = int(match.group(2)) if match.group(2) else None
        for raw in match.group(1).split(","):
            name = raw.strip()
            if not re.fullmatch(r"[A-Za-z_]\w*", name):
                raise SpecificationError(
                    f"line {line.number}: bad input name {name!r}"
                )
            vid = self.ensure_builder().input(name, width=width)
            self.environment[name] = vid

    def _memory(self, line: _Line) -> None:
        match = re.fullmatch(r"memory\s+(\w+)", line.text)
        if not match:
            raise SpecificationError(
                f"line {line.number}: malformed memory declaration"
            )
        self.memories.add(match.group(1))

    def _outputs(self, line: _Line) -> None:
        names = line.text[len("output "):].split(",")
        for raw in names:
            name = raw.strip()
            self.lookup(name, line.number)  # must exist
            self.outputs.append(name)

    def _write(self, line: _Line) -> None:
        match = re.fullmatch(r"write\s+(\w+)\s*,\s*(.+)", line.text)
        if not match:
            raise SpecificationError(
                f"line {line.number}: malformed write statement"
            )
        block = match.group(1)
        if block not in self.memories:
            raise SpecificationError(
                f"line {line.number}: undeclared memory {block!r}"
            )
        value = self._expression(match.group(2), line.number)
        self.ensure_builder().mem_write(value, block)

    def _assignment(self, line: _Line) -> None:
        target, _eq, expr = line.text.partition("=")
        name = target.strip()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9$]*", name):
            raise SpecificationError(
                f"line {line.number}: bad assignment target {name!r}"
            )
        self.environment[name] = self._expression(
            expr, line.number, name=name
        )

    def _repeat(self, lines: List[_Line], index: int) -> int:
        header = lines[index]
        match = re.fullmatch(
            r"repeat\s+(\d+)\s+as\s+(\w+)\s*:", header.text
        )
        if not match:
            raise SpecificationError(
                f"line {header.number}: malformed repeat header"
            )
        count = int(match.group(1))
        variable = match.group(2)
        body: List[_Line] = []
        cursor = index + 1
        depth = 1
        while cursor < len(lines):
            text = lines[cursor].text
            if text.startswith("repeat "):
                depth += 1
            elif text == "end":
                depth -= 1
                if depth == 0:
                    break
            body.append(lines[cursor])
            cursor += 1
        else:
            raise SpecificationError(
                f"line {header.number}: 'repeat' without 'end'"
            )
        for iteration in range(count):
            substituted = [
                _Line(
                    b.number,
                    b.text.replace(f"${variable}", str(iteration)),
                )
                for b in body
            ]
            inner = 0
            while inner < len(substituted):
                inner = self._statement(substituted, inner)
        return cursor + 1

    def _expression(
        self, text: str, line_number: int, name: Optional[str] = None
    ) -> str:
        tokens = _tokenize(text, line_number)
        parser = _ExprParser(tokens, line_number)
        node = parser.parse()
        if parser.peek() is not None:
            raise SpecificationError(
                f"line {line_number}: trailing tokens after expression"
            )
        return self.emit(node, line_number, name=name)


def _tokenize(text: str, line_number: int) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SpecificationError(
                f"line {line_number}: cannot tokenize {remainder!r}"
            )
        tokens.append(match.group().strip())
        position = match.end()
    return tokens


def parse_spec(source: str) -> DataFlowGraph:
    """Compile a behavioral specification to a data-flow graph."""
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].strip()
        if text:
            lines.append(_Line(number, text))
    if not lines:
        raise SpecificationError("empty specification")
    return _Compiler().run(lines)
