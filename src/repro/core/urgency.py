"""Urgency scheduling of tasks over shared chip pins.

"Having delays of all tasks (data transfer tasks and partitions), an
urgency scheduling is performed to confirm feasibility of sharing the
data pins of chips as well as to keep memory accesses to each memory
block feasible while reaching the minimum overall system delay.  The
urgency measure is based on the actual critical path delays of tasks"
(section 2.5).

The overall process is pipelined with initiation interval ``l`` (main
cycles), so pin occupancy is accounted **modulo l**: a transfer from one
iteration shares the window with transfers of neighbouring iterations.
The hard rule "the data transfer time ... cannot be longer than the
initiation interval" is enforced before scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.tasks import TaskGraph, TaskKind
from repro.errors import InfeasibleError, PredictionError


@dataclass(slots=True)
class TaskSchedule:
    """Start/finish times (main cycles) of every task, plus derived waits."""

    start: Dict[str, int]
    finish: Dict[str, int]
    makespan: int
    #: For data tasks: cycles between data-ready and transfer start (the
    #: output-side DTM's wait time W).
    wait: Dict[str, int]
    #: For data tasks: cycles between transfer end and the consuming
    #: process task's start (the input-side DTM's hold time).
    hold: Dict[str, int]


def urgency_schedule(
    task_graph: TaskGraph,
    durations: Mapping[str, int],
    pin_needs: Mapping[str, int],
    pin_capacity: Mapping[str, int],
    ii_main: int,
) -> TaskSchedule:
    """Schedule all tasks, sharing data pins modulo the initiation interval.

    ``durations`` maps every task to its length in main cycles;
    ``pin_needs`` gives the pins a data task occupies on each of its
    chips; ``pin_capacity`` the shareable data pins per chip (after
    memory I/O).  Raises :class:`InfeasibleError` when a transfer exceeds
    the initiation interval (data clash) or the pins cannot be shared at
    this rate.
    """
    if ii_main <= 0:
        raise PredictionError(
            f"initiation interval must be positive, got {ii_main}"
        )
    for name, task in task_graph.tasks.items():
        if name not in durations:
            raise PredictionError(f"task {name!r} has no duration")
        if durations[name] < 0:
            raise PredictionError(f"task {name!r} has negative duration")
        if task.moves_data and durations[name] > ii_main:
            raise InfeasibleError(
                f"task {name!r} needs {durations[name]} cycles but the "
                f"initiation interval is {ii_main}; a longer transfer "
                "would cause data clashes"
            )

    urgency = _urgency(task_graph, durations)
    order = task_graph.topological_order()
    remaining = {
        name: len(task_graph.predecessors(name)) for name in order
    }
    data_ready: Dict[str, int] = {}
    ready: List[str] = [n for n in order if remaining[n] == 0]
    # Pin occupancy per chip per modulo slot.
    usage: Dict[str, List[int]] = {
        chip: [0] * ii_main for chip in pin_capacity
    }
    start: Dict[str, int] = {}
    finish: Dict[str, int] = {}

    total_duration = sum(durations.values())
    horizon = total_duration + ii_main * max(1, len(order)) + 1

    time = 0
    scheduled = 0
    while scheduled < len(order):
        if time > horizon:
            raise InfeasibleError(
                f"urgency scheduling cannot share the data pins at "
                f"initiation interval {ii_main}; pins are oversubscribed"
            )
        ready.sort(key=lambda n: (-urgency[n], n))
        placed = True
        while placed:
            placed = False
            for name in list(ready):
                if data_ready.get(name, 0) > time:
                    continue
                task = task_graph.tasks[name]
                if task.moves_data and not _pins_free(
                    task.chips, pin_needs.get(name, 0), usage,
                    pin_capacity, time, durations[name], ii_main,
                ):
                    continue
                start[name] = time
                finish[name] = time + durations[name]
                if task.moves_data:
                    _occupy(
                        task.chips, pin_needs.get(name, 0), usage,
                        time, durations[name], ii_main,
                    )
                ready.remove(name)
                scheduled += 1
                placed = True
                for succ in task_graph.successors(name):
                    remaining[succ] -= 1
                    data_ready[succ] = max(
                        data_ready.get(succ, 0), finish[name]
                    )
                    if remaining[succ] == 0:
                        ready.append(succ)
                ready.sort(key=lambda n: (-urgency[n], n))
        time += 1

    makespan = max(finish.values(), default=0)
    wait: Dict[str, int] = {}
    hold: Dict[str, int] = {}
    for name, task in task_graph.tasks.items():
        if not task.moves_data:
            continue
        wait[name] = start[name] - data_ready.get(name, 0)
        consumers = [
            s
            for s in task_graph.successors(name)
            if task_graph.tasks[s].kind is TaskKind.PROCESS
        ]
        if consumers:
            hold[name] = max(start[c] for c in consumers) - finish[name]
        else:
            hold[name] = 0
    return TaskSchedule(
        start=start, finish=finish, makespan=makespan, wait=wait, hold=hold
    )


def _urgency(
    task_graph: TaskGraph, durations: Mapping[str, int]
) -> Dict[str, int]:
    """Critical-path-to-sink length of every task (inclusive)."""
    urgency: Dict[str, int] = {}
    for name in reversed(task_graph.topological_order()):
        downstream = max(
            (urgency[s] for s in task_graph.successors(name)), default=0
        )
        urgency[name] = durations[name] + downstream
    return urgency


def _pins_free(
    chips: Tuple[str, ...],
    pins: int,
    usage: Dict[str, List[int]],
    capacity: Mapping[str, int],
    begin: int,
    duration: int,
    ii_main: int,
) -> bool:
    for chip in chips:
        cap = capacity.get(chip)
        if cap is None:
            raise PredictionError(f"no pin capacity for chip {chip!r}")
        slots = usage[chip]
        for cycle in range(begin, begin + duration):
            if slots[cycle % ii_main] + pins > cap:
                return False
    return True


def _occupy(
    chips: Tuple[str, ...],
    pins: int,
    usage: Dict[str, List[int]],
    begin: int,
    duration: int,
    ii_main: int,
) -> None:
    for chip in chips:
        slots = usage[chip]
        for cycle in range(begin, begin + duration):
            slots[cycle % ii_main] += pins
