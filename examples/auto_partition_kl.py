"""Automatic cuts vs constraint-driven cuts: the Kernighan-Lin baseline.

The paper's related-work section argues the classic min-cut heuristic
"is not directly applicable for partitioning of behavioral
specifications" (section 1.1): the cut size does not track pins or chip
area once synthesis introduces sequential behaviour.  This example
measures that claim on the elliptic wave filter: run KL, repair its cut
into the one-way form CHOP's prediction model requires, feed both cuts
through the feasibility analysis, and compare.

Run:  python examples/auto_partition_kl.py
"""

from __future__ import annotations

from repro import (
    ArchitectureStyle,
    ChopSession,
    ClockScheme,
    FeasibilityCriteria,
    OperationTiming,
    Partition,
    elliptic_wave_filter,
    extended_library,
    horizontal_cut,
    mosis_package,
)
from repro.baselines import (
    cut_bits,
    edge_weights,
    kl_bipartition,
    make_acyclic,
)


def session_for(graph, partitions) -> ChopSession:
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0, dp_multiplier=1, transfer_multiplier=1),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=40_000.0, delay_ns=60_000.0
        ),
    )
    session.add_chip("chip1", mosis_package(2))
    session.add_chip("chip2", mosis_package(2))
    session.set_partitions(
        partitions, {"P1": "chip1", "P2": "chip2"}
    )
    return session


def describe(label, session):
    result = session.check("iterative")
    best = result.best()
    if best is None:
        print(f"  {label}: no feasible implementation "
              f"({result.trials} trials)")
    else:
        print(
            f"  {label}: best II {best.ii_main}, delay "
            f"{best.delay_main}, clock {best.clock_cycle_ns:.0f} ns "
            f"({result.feasible_trials} feasible of {result.trials} "
            "trials)"
        )
    return best


def main() -> None:
    graph = elliptic_wave_filter()
    print(f"Benchmark: {graph.name} ({graph.op_count()} operations)")
    print()

    # Constraint-driven protocol: a balanced horizontal cut.
    horizontal = horizontal_cut(graph, 2)
    weights = edge_weights(graph)
    h_cut = cut_bits(graph, set(horizontal[0].op_ids), weights=weights)
    print(f"Horizontal cut: {h_cut} bits cross the boundary")
    h_best = describe("horizontal", session_for(graph, horizontal))
    print()

    # KL min-cut, then repair to one-way data flow.
    side_a, side_b, raw_cut = kl_bipartition(graph)
    print(f"Kernighan-Lin cut: {raw_cut} bits (directions ignored)")
    new_a, new_b, moved = make_acyclic(graph, side_a, side_b)
    print(
        f"  repaired to one-way flow by moving {moved} operations; "
        f"cut is now {cut_bits(graph, new_a, weights=weights)} bits"
    )
    kl_parts = [Partition.of("P1", new_a), Partition.of("P2", new_b)]
    kl_best = describe("kl-repaired", session_for(graph, kl_parts))
    print()

    if h_best and kl_best:
        if (h_best.ii_main, h_best.delay_main) <= (
            kl_best.ii_main, kl_best.delay_main,
        ):
            print(
                "The smaller cut did not produce the better design: "
                "feasibility under area/pin/delay constraints is what "
                "CHOP optimises, and cut bits are only a proxy — the "
                "paper's argument against applying min-cut directly to "
                "behavioral specifications."
            )
        else:
            print(
                "Here KL's cut also wins on constraints — small graphs "
                "can go either way; the point is that CHOP *measures* "
                "this instead of assuming cut size decides it."
            )


if __name__ == "__main__":
    main()
