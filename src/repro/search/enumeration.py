"""The explicit-enumeration heuristic (paper section 2.4, heuristic E).

"The heuristic searches all possible combinations of implementing the
global design (partitioning), given the predicted implementations of
individual partitions ... The heuristic assumes that the performance of
each combination is upper bounded and set by the slowest partition
implementation in the combination."

Even this enumeration is a heuristic — "there are multiple ways of
integrating the partitions considered in each combination, and the
heuristic does not examine all ways": each combination is integrated once
at its slowest implementation's rate.

With pruning on, a combination is abandoned on the first violated chip
area bound before the (more expensive) system integration runs — the
paper's level-2 pruning.

The evaluation loop itself lives in :mod:`repro.engine.workers` so the
serial path here and the engine's worker processes execute *identical*
code: handing an :class:`~repro.engine.EvaluationEngine` in through
``engine=`` shards the same walk across a process pool and merges the
shards back into a byte-identical result.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partitioning import Partitioning
from repro.core.tasks import TaskGraph
from repro.engine.workers import (
    EvaluationProblem,
    evaluate_range,
    evaluate_range_kernel,
)
from repro.errors import CombinationExplosionError, PredictionError
from repro.library.library import ComponentLibrary
from repro.obs.tracing import span as trace_span
from repro.resilience.degrade import SoftDeadline
from repro.search.results import SearchResult
from repro.search.space import DesignSpace

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.engine.workers import EvaluationEngine

#: Safety valve: enumeration refuses absurdly large products so a typo in
#: a prune setting cannot hang a session.
MAX_COMBINATIONS = 2_000_000


def enumeration_search(
    partitioning: Partitioning,
    predictions: Mapping[str, Sequence[DesignPrediction]],
    clocks: ClockScheme,
    library: ComponentLibrary,
    criteria: FeasibilityCriteria,
    prune: bool = True,
    keep_all: bool = False,
    cancel: Optional[Callable[[], bool]] = None,
    engine: Optional["EvaluationEngine"] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    collector: Optional[object] = None,
    soft_deadline_s: Optional[float] = None,
    task_graph: Optional[TaskGraph] = None,
    kernel: Optional[str] = None,
    packer: Optional[Callable[[EvaluationProblem], None]] = None,
) -> SearchResult:
    """Try every combination of per-partition implementations.

    ``predictions`` maps each partition name to its (already level-1
    pruned, unless the caller kept everything) prediction list.  With
    ``keep_all`` every visited combination lands in the returned
    :class:`DesignSpace`.  ``cancel`` is a cooperative cancellation hook
    polled between candidate combinations; when it returns ``True`` the
    search raises :class:`repro.errors.SearchCancelled`.

    ``engine`` runs the walk on a process pool; the result is identical
    to the serial path (same visit order, same designs, same trial
    count).  ``keep_all`` stays on the serial path: recording every
    visited point is a paper-figure mode whose payload would dwarf the
    shard results.  ``collector`` (an
    :class:`repro.obs.ExplainCollector`) likewise forces the serial
    path — it records the per-combination failure breakdown, which is
    per-combination payload by definition.  ``progress`` (engine runs
    only) receives ``(shards_done, shards_total)`` as shards complete.

    ``soft_deadline_s`` is the graceful-degradation hook (paper framing:
    *interactive* means "fast, or degraded, but never nothing"): once the
    budget elapses the walk stops after the current combination and the
    partial result comes back with ``degraded=True`` instead of raising.
    At least one combination is always evaluated.  A soft deadline
    forces the serial path — shard boundaries would make the visited
    prefix nondeterministic.

    ``task_graph`` accepts a pre-built graph for ``partitioning`` (the
    incremental one from :class:`repro.eval.EvaluationContext`); when
    omitted the graph is built from scratch.

    ``kernel`` selects the evaluation kernel ("scalar" or
    "vectorized"); ``None`` defers to the engine's configured default
    (plain "scalar" on the serial path).  Both kernels return
    byte-identical results; the vectorized one supports neither
    ``keep_all``, a ``collector`` nor a soft deadline (those hooks are
    per-combination by definition), so those modes run the scalar loop
    regardless.  ``packer`` (if given) is called with the built
    :class:`EvaluationProblem` before the walk — the
    :class:`~repro.eval.EvaluationContext` uses it to seed or reuse its
    cached prediction pack across checks of an unchanged design.
    """
    if kernel is not None and kernel not in ("scalar", "vectorized"):
        raise PredictionError(
            f"unknown kernel {kernel!r}; expected 'scalar' or "
            f"'vectorized'"
        )
    names = sorted(partitioning.partitions)
    missing = [n for n in names if not predictions.get(n)]
    if missing:
        raise PredictionError(
            f"no predictions for partitions: {missing}"
        )
    problem = EvaluationProblem.build(
        partitioning, predictions, clocks, library, criteria,
        prune=prune, task_graph=task_graph,
    )
    combination_count = problem.combination_count()
    if combination_count > MAX_COMBINATIONS:
        raise CombinationExplosionError(
            combinations=combination_count,
            limit=MAX_COMBINATIONS,
            list_sizes=problem.list_sizes(),
        )
    if packer is not None:
        packer(problem)

    soft_stop: Optional[Callable[[], bool]] = None
    if soft_deadline_s is not None:
        soft_stop = SoftDeadline(soft_deadline_s)

    started = time.perf_counter()
    with trace_span(
        "search.enumeration", prune=prune, space=combination_count,
        partitions=len(names),
    ) as sp:
        if (
            engine is not None and not keep_all and collector is None
            and soft_stop is None
        ):
            run = engine.run(
                problem, cancel=cancel, progress=progress, kernel=kernel
            )
            sp.add("combinations", run.trials)
            sp.add("feasible", len(run.feasible))
            return SearchResult(
                heuristic="enumeration",
                trials=run.trials,
                feasible=run.feasible,
                cpu_seconds=time.perf_counter() - started,
                space=None,
            )

        if (
            kernel == "vectorized" and not keep_all
            and collector is None and soft_stop is None
        ):
            feasible, trials = evaluate_range_kernel(
                problem, 0, combination_count, kernel=kernel,
                cancel=cancel, counters=sp.counters,
            )
            space = None
        else:
            space = DesignSpace() if keep_all else None
            feasible, trials = evaluate_range(
                problem, 0, combination_count, cancel=cancel,
                space=space, collector=collector, counters=sp.counters,
                soft_stop=soft_stop,
            )
        degraded = trials < combination_count
        if degraded:
            sp.put("degraded", True)
        return SearchResult(
            heuristic="enumeration",
            trials=trials,
            feasible=feasible,
            cpu_seconds=time.perf_counter() - started,
            space=space,
            degraded=degraded,
        )
