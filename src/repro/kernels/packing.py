"""Packing prediction lists into numpy triplet columns.

One :class:`PackedPredictions` holds everything the batch kernels need
to screen any combination of one :class:`~repro.engine.workers.
EvaluationProblem`: per-partition prediction columns (``float64``
triplet components, ``int64`` cycle counts, ``int32`` interned
module-set ids), the mixed-radix place values that decode flat indices,
the chip layout in *scalar iteration order*, and the handful of
selection-independent thresholds (usable areas, the memory-bandwidth
window, the pin-capacity verdict) that integration would otherwise
recompute per combination.

Packing is cheap (one pass over the lists) but not free, so it happens
once per problem: :meth:`repro.engine.workers.EvaluationProblem.packed`
caches the result on the problem instance — which also ships it to pool
workers through the existing initializer pickle — and
:meth:`repro.eval.EvaluationContext.attach_packed` reuses it across
checks of an unchanged design.

Column order inside every per-chip array follows
``partitioning.partitions_on_chip`` and chips follow
``partitioning.chips`` insertion order — the exact iteration order of
:func:`~repro.engine.workers.chip_area_hopeless` and
:func:`repro.core.integration._chip_usage` — so sequential float sums
over these arrays reproduce the scalar path's IEEE rounding bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, TYPE_CHECKING

import numpy as np

from repro.engine.sharding import digit_weights
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.engine.workers import EvaluationProblem

__all__ = ["PackedPredictions", "pack_problem"]


@dataclass(frozen=True)
class PackedPredictions:
    """Column-array form of one problem's prediction lists.

    All per-partition tuples are aligned with ``names`` (the problem's
    sorted partition order, i.e. mixed-radix digit positions); all
    per-chip tuples are aligned with ``chip_names``.  Immutable and
    picklable — it rides to pool workers inside the problem.
    """

    names: Tuple[str, ...]
    radices: Tuple[int, ...]
    #: Mixed-radix place values: ``digit[p] = (flat // weights[p]) % radices[p]``.
    weights: Tuple[int, ...]
    # -- per-partition prediction columns (one array per partition) --
    ii: Tuple[np.ndarray, ...]            # int64
    latency: Tuple[np.ndarray, ...]       # int64
    pipelined: Tuple[np.ndarray, ...]     # bool
    area_lb: Tuple[np.ndarray, ...]       # float64
    area_ml: Tuple[np.ndarray, ...]       # float64
    area_ub: Tuple[np.ndarray, ...]       # float64
    power_lb: Tuple[np.ndarray, ...]      # float64
    #: Interned module-set labels: ``module_set_labels[module_set_ids[p][i]]``.
    module_set_ids: Tuple[np.ndarray, ...]  # int32
    module_set_labels: Tuple[str, ...]
    # -- chip layout, in scalar iteration order --
    chip_names: Tuple[str, ...]
    #: Digit positions of the partitions on each chip, in
    #: ``partitions_on_chip`` order.
    chip_positions: Tuple[Tuple[int, ...], ...]
    #: Optimistic usable area (supply pads only) — the level-2 prune limit.
    usable_opt: Tuple[float, ...]
    #: Real usable area (every package pin bonded) — the verdict limit.
    usable_real: Tuple[float, ...]
    # -- selection-independent integration thresholds --
    #: Max access cycles any memory block needs per iteration (0: none).
    memory_need: int
    transfer_multiplier: int
    #: True when memory I/O alone oversubscribes some chip's data pins —
    #: every combination raises ``InfeasibleError`` in integration.
    memory_pins_infeasible: bool

    def nbytes(self) -> int:
        """Total array payload, for stats and the performance docs."""
        arrays = (
            self.ii + self.latency + self.pipelined + self.area_lb
            + self.area_ml + self.area_ub + self.power_lb
            + self.module_set_ids
        )
        return sum(a.nbytes for a in arrays)


def pack_problem(problem: "EvaluationProblem") -> PackedPredictions:
    """Pack one problem's prediction lists into kernel columns."""
    from repro.chips.chip import pin_budget
    from repro.core.tasks import memory_interfaces
    from repro.memory.access import memory_access_profile

    partitioning = problem.partitioning
    position: Dict[str, int] = {
        name: index for index, name in enumerate(problem.names)
    }

    labels: Dict[str, int] = {}
    ii, latency, pipelined = [], [], []
    area_lb, area_ml, area_ub, power_lb = [], [], [], []
    module_set_ids = []
    for options in problem.lists:
        ii.append(np.array(
            [p.ii_main for p in options], dtype=np.int64
        ))
        latency.append(np.array(
            [p.latency_main for p in options], dtype=np.int64
        ))
        pipelined.append(np.array(
            [p.pipelined for p in options], dtype=bool
        ))
        area_lb.append(np.array(
            [p.area_total.lb for p in options], dtype=np.float64
        ))
        area_ml.append(np.array(
            [p.area_total.ml for p in options], dtype=np.float64
        ))
        area_ub.append(np.array(
            [p.area_total.ub for p in options], dtype=np.float64
        ))
        power_lb.append(np.array(
            [p.power_mw.lb for p in options], dtype=np.float64
        ))
        module_set_ids.append(np.array(
            [
                labels.setdefault(p.module_set.label, len(labels))
                for p in options
            ],
            dtype=np.int32,
        ))

    chip_names = tuple(partitioning.chips)
    chip_positions = tuple(
        tuple(
            position[name]
            for name in partitioning.partitions_on_chip(chip)
        )
        for chip in chip_names
    )
    usable_opt = tuple(
        float(problem.usable_area[chip]) for chip in chip_names
    )
    usable_real = tuple(
        float(
            chip.package.usable_area_mil2(chip.package.pin_count)
        )
        for chip in partitioning.chips.values()
    )

    # Selection-independent integration verdicts (see repro.core.
    # integration): the memory-bandwidth window only depends on ii_main,
    # and the memory pin capacity not even on that.
    memory_need = 0
    if partitioning.memories:
        profile = memory_access_profile(
            partitioning.graph, partitioning.graph.operations
        )
        for block in profile.blocks:
            module = partitioning.memories[block]
            memory_need = max(
                memory_need,
                ceil_div(profile.accesses(block), module.ports),
            )
    interfaces = memory_interfaces(partitioning)
    task_graph = problem.task_graph
    memory_pins_infeasible = False
    for chip_name, chip in partitioning.chips.items():
        budget = pin_budget(
            chip.package,
            communication_links=task_graph.communication_links(chip_name),
            memory_blocks=len(interfaces.get(chip_name, ())),
        )
        load = task_graph.memory_pin_loads.get(chip_name, 0)
        if budget.data - load < 0:
            memory_pins_infeasible = True
            break

    return PackedPredictions(
        names=problem.names,
        radices=problem.radices,
        weights=digit_weights(problem.radices),
        ii=tuple(ii),
        latency=tuple(latency),
        pipelined=tuple(pipelined),
        area_lb=tuple(area_lb),
        area_ml=tuple(area_ml),
        area_ub=tuple(area_ub),
        power_lb=tuple(power_lb),
        module_set_ids=tuple(module_set_ids),
        module_set_labels=tuple(labels),
        chip_names=chip_names,
        chip_positions=chip_positions,
        usable_opt=usable_opt,
        usable_real=usable_real,
        memory_need=memory_need,
        transfer_multiplier=problem.clocks.transfer_multiplier,
        memory_pins_infeasible=memory_pins_infeasible,
    )
