"""Focused tests on operation-chaining corner cases.

Chaining is the subtlest part of the scheduling model (DESIGN.md §6);
these tests pin its exact semantics: delay budgets, unit occupancy,
interaction with resource limits, and the register consequences.
"""

from __future__ import annotations

import pytest

from repro.bad.allocation import (
    partition_resource_model,
    register_requirement,
    value_lifetimes,
)
from repro.bad.scheduling import list_schedule
from repro.dfg.builders import GraphBuilder
from repro.errors import PredictionError


def _chain(n, op="add"):
    b = GraphBuilder(f"chain{n}")
    x = b.input("x")
    k = b.input("k")
    v = x
    for _ in range(n):
        v = b.add(v, k) if op == "add" else b.mul(v, k)
    b.output(v)
    return b.build()


def _sched(graph, delays, cycle, capacities=None):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    return list_schedule(
        graph, duration, op_class, capacities or counts,
        delay_ns=delays, cycle_ns=cycle,
    )


class TestDelayBudget:
    def test_exact_fit(self):
        """Three 1000 ns ops exactly fill a 3000 ns cycle."""
        graph = _chain(3)
        delays = {op_id: 1000.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        assert schedule.latency == 1

    def test_one_over_budget_splits(self):
        graph = _chain(3)
        delays = {op_id: 1001.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        assert schedule.latency == 2

    def test_mixed_delays_pack_greedily(self):
        """2950 + 34 fits; the next 2950 starts a new cycle."""
        b = GraphBuilder("mix")
        x = b.input("x")
        k = b.input("k")
        m1 = b.mul(x, k)      # 2950
        a1 = b.add(m1, k)     # 34, chains after m1
        m2 = b.mul(a1, k)     # 2950, next cycle
        a2 = b.add(m2, k)     # 34, chains after m2
        b.output(a2)
        graph = b.build()
        delays = {}
        for op in graph:
            delays[op.id] = 2950.0 if op.op_type.value == "mul" else 34.0
        schedule = _sched(graph, delays, 3000.0)
        assert schedule.latency == 2
        # The adds chained onto their multipliers' cycles.
        starts = {
            op.id: schedule.start[op.id] for op in graph
        }
        muls = sorted(
            o for o in starts if o.startswith("mul")
        )
        adds = sorted(
            o for o in starts if o.startswith("add")
        )
        assert starts[adds[0]] == starts[muls[0]]
        assert starts[adds[1]] == starts[muls[1]]

    def test_offsets_accumulate(self):
        graph = _chain(3)
        delays = {op_id: 500.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        offsets = sorted(schedule.offset_ns.values())
        assert offsets == [0.0, 500.0, 1000.0]


class TestUnitOccupancy:
    def test_chained_ops_need_distinct_units(self):
        """A 4-op chain in one cycle occupies four adders."""
        graph = _chain(4)
        delays = {op_id: 100.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        assert schedule.latency == 1
        assert max(schedule.usage_profile()["add"]) == 4

    def test_single_unit_forbids_chaining(self):
        graph = _chain(4)
        delays = {op_id: 100.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0, {"add": 1})
        assert schedule.latency == 4

    def test_two_units_halve_the_chain(self):
        graph = _chain(4)
        delays = {op_id: 100.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0, {"add": 2})
        assert schedule.latency == 2


class TestRegisterInteraction:
    def test_fully_chained_values_need_no_registers(self):
        graph = _chain(4)
        delays = {op_id: 100.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        lifetimes = value_lifetimes(graph, schedule)
        # Only the final output needs storage.
        assert len(lifetimes) == 1
        assert register_requirement(
            graph, schedule, schedule.latency
        ) == 1

    def test_cycle_boundary_values_are_stored(self):
        graph = _chain(4)
        delays = {op_id: 1600.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)  # one op per cycle
        assert schedule.latency == 4
        lifetimes = value_lifetimes(graph, schedule)
        assert len(lifetimes) == 4  # every intermediate crosses a cycle


class TestValidation:
    def test_verify_accepts_chained_schedule(self):
        graph = _chain(5)
        delays = {op_id: 300.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        schedule.verify(graph)  # must not raise

    def test_verify_rejects_tampered_offsets(self):
        graph = _chain(2)
        delays = {op_id: 1000.0 for op_id in graph.operations}
        schedule = _sched(graph, delays, 3000.0)
        if schedule.latency != 1:
            pytest.skip("chain did not fit one cycle")
        # Swap the offsets so the consumer 'settles' before its producer.
        ops = sorted(schedule.offset_ns, key=schedule.offset_ns.get)
        first, second = ops[0], ops[-1]
        schedule.offset_ns[first], schedule.offset_ns[second] = (
            schedule.offset_ns[second], schedule.offset_ns[first],
        )
        with pytest.raises(PredictionError, match="precedence"):
            schedule.verify(graph)
