"""Component libraries and module-set enumeration.

The paper's library (Table 1) offers several components per operation type
with different area/delay trade-offs; BAD "includes all possible
module-set combinations" when predicting.  A *module set* picks exactly one
component per operation type used by a partition; with three adders and
three multipliers that gives the paper's "up to 9 module-set
configurations".
"""

from repro.library.component import Cell, Component
from repro.library.library import ComponentLibrary, ModuleSet
from repro.library.presets import table1_library, extended_library

__all__ = [
    "Cell",
    "Component",
    "ComponentLibrary",
    "ModuleSet",
    "table1_library",
    "extended_library",
]
