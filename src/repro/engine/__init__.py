"""repro.engine — the parallel batch-evaluation engine.

Every combination-search path in the system funnels through this
package: :mod:`~repro.engine.sharding` addresses the cross-product space
by flat index, :mod:`~repro.engine.workers` evaluates index ranges in a
process pool (degrading gracefully to in-process serial execution),
:mod:`~repro.engine.merge` recombines shard results deterministically,
and :mod:`~repro.engine.diskcache` persists BAD prediction lists across
processes so repeated checks of an unchanged project skip prediction
entirely.  See ``docs/engine.md`` for the architecture and the
failure/degradation matrix.
"""

from repro.engine.diskcache import (
    CACHE_VERSION,
    DiskPredictionCache,
    library_clock_digest,
)
from repro.engine.merge import ShardResult, merge_shard_results
from repro.engine.sharding import (
    Shard,
    combination_count,
    decode_combination,
    digit_weights,
    plan_shards,
)
from repro.engine.workers import (
    KERNELS,
    EngineRun,
    EvaluationEngine,
    EvaluationProblem,
    evaluate_range,
    evaluate_range_kernel,
)

__all__ = [
    "CACHE_VERSION",
    "DiskPredictionCache",
    "EngineRun",
    "EvaluationEngine",
    "EvaluationProblem",
    "KERNELS",
    "Shard",
    "ShardResult",
    "combination_count",
    "decode_combination",
    "digit_weights",
    "evaluate_range",
    "evaluate_range_kernel",
    "library_clock_digest",
    "merge_shard_results",
    "plan_shards",
]
