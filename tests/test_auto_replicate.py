"""Replication's contract: profitable, structural, semantics-preserving."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auto import base_cluster_graph, replicate_cut_ops, transfer_bits
from repro.auto.initial import topo_interval_split
from repro.dfg.builders import GraphBuilder, generate_dfg
from repro.dfg.evaluate import evaluate_outputs
from repro.dfg.ops import MEMORY_OP_TYPES, OpType

from tests.strategies import dags


def _chain_assignment(graph, parts):
    """A valid chain partitioning of ``graph`` at op granularity."""
    cg = base_cluster_graph(graph)
    parts = min(parts, len(cg))
    part_of = topo_interval_split(cg, parts)
    return {
        min(ops): part_of[cid] for cid, ops in cg.members.items()
    }


def _inputs_for(graph, rng_values):
    inputs = {}
    for index, value in enumerate(sorted(
        graph.primary_inputs(), key=lambda v: v.id
    )):
        inputs[value.id] = rng_values[index % len(rng_values)] + index
    return inputs


def test_replication_reduces_transfer_bits():
    graph = generate_dfg("layered", 300, seed=11)
    part_of = _chain_assignment(graph, 4)
    replicated, new_parts, report = replicate_cut_ops(graph, part_of)
    assert report.transfer_bits_before == transfer_bits(graph, part_of)
    assert report.transfer_bits_after == transfer_bits(
        replicated, new_parts
    )
    assert report.transfer_bits_after <= report.transfer_bits_before
    if report.clones:
        assert report.saved_bits > 0


def test_clones_are_pure_compute_and_never_outputs():
    graph = generate_dfg("layered", 300, seed=11)
    part_of = _chain_assignment(graph, 4)
    replicated, new_parts, report = replicate_cut_ops(graph, part_of)
    assert report.clones, "expected at least one profitable clone"
    for clone in report.clones:
        op = replicated.operation(clone.clone_id)
        assert op.op_type not in MEMORY_OP_TYPES
        assert not replicated.value(op.output).is_output
        assert new_parts[clone.clone_id] == clone.to_part
        # the clone consumes exactly the original's values
        assert op.inputs == graph.operation(clone.op_id).inputs


def test_replicated_graph_is_still_acyclic_and_chain_partitioned():
    graph = generate_dfg("butterfly", 400)
    part_of = _chain_assignment(graph, 4)
    replicated, new_parts, _report = replicate_cut_ops(graph, part_of)
    replicated.topological_order()
    for value in replicated.values.values():
        if value.producer is None:
            continue
        for consumer in replicated.consumers(value.id):
            assert new_parts[value.producer] <= new_parts[consumer]


def test_memory_ops_are_never_replicated():
    b = GraphBuilder("memrep", default_width=8)
    addr = b.input("addr")
    x = b.input("x")
    loaded = b.mem_read(addr, "ram")
    total = b.add(loaded, x)
    b.mem_write(total, "ram")
    out = b.mul(total, x)
    b.output(out)
    graph = b.build()
    part_of = _chain_assignment(graph, 2)
    replicated, _parts, report = replicate_cut_ops(graph, part_of)
    for clone in report.clones:
        assert graph.operation(clone.op_id).op_type not in MEMORY_OP_TYPES
    memories = {"ram": [3, 5, 7]}
    reference = {"ram": [3, 5, 7]}
    assert evaluate_outputs(
        replicated, {"addr": 1, "x": 9}, memories
    ) == evaluate_outputs(graph, {"addr": 1, "x": 9}, reference)
    assert memories == reference


@pytest.mark.parametrize("kind,ops", [
    ("layered", 200), ("chain", 120), ("butterfly", 200),
])
def test_semantics_preserved_on_generated_graphs(kind, ops):
    graph = generate_dfg(kind, ops, seed=2)
    part_of = _chain_assignment(graph, 4)
    replicated, _parts, _report = replicate_cut_ops(graph, part_of)
    inputs = _inputs_for(graph, [17, 4242, 99991])
    assert evaluate_outputs(replicated, inputs) == evaluate_outputs(
        graph, inputs
    )


@given(
    dags(max_ops=30),
    st.integers(min_value=2, max_value=4),
    st.lists(
        st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_replication_preserves_evaluation_semantics(graph, parts, seeds):
    """The tentpole property: evaluate/outputs byte-identical pre/post."""
    if graph.op_count() < 2:
        return
    part_of = _chain_assignment(graph, parts)
    replicated, new_parts, report = replicate_cut_ops(graph, part_of)
    inputs = _inputs_for(graph, seeds)
    assert evaluate_outputs(replicated, inputs) == evaluate_outputs(
        graph, inputs
    )
    # primary outputs are exactly preserved, never renamed or added
    assert {v.id for v in replicated.primary_outputs()} == {
        v.id for v in graph.primary_outputs()
    }
    # the op-count delta is exactly the clone count
    assert replicated.op_count() == graph.op_count() + len(report.clones)
