"""Datapath component descriptions.

A :class:`Component` is one row of the paper's Table 1: a named module
implementing one operation type at one bit width, with an area in square
mil and a combinational delay in nanoseconds.  Registers and multiplexers
are 1-bit components scaled by bit count during allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.ops import OpType
from repro.errors import LibraryError


@dataclass(frozen=True, slots=True)
class Component:
    """One library module.

    ``bit_width`` is the native width; area scales linearly when a
    different width is requested (the standard bit-slice assumption for
    3-micron standard-cell modules).
    """

    name: str
    op_type: OpType
    bit_width: int
    area_mil2: float
    delay_ns: float

    def __post_init__(self) -> None:
        if self.bit_width <= 0:
            raise LibraryError(
                f"component {self.name!r}: bit width must be positive"
            )
        if self.area_mil2 <= 0:
            raise LibraryError(
                f"component {self.name!r}: area must be positive, got "
                f"{self.area_mil2}"
            )
        if self.delay_ns <= 0:
            raise LibraryError(
                f"component {self.name!r}: delay must be positive, got "
                f"{self.delay_ns}"
            )

    def area_for_width(self, width: int) -> float:
        """Area when instantiated at ``width`` bits (bit-slice scaling)."""
        if width <= 0:
            raise LibraryError(f"width must be positive, got {width}")
        return self.area_mil2 * (width / self.bit_width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name} ({self.op_type.value}, {self.bit_width}b, "
            f"{self.area_mil2:g} mil^2, {self.delay_ns:g} ns)"
        )


@dataclass(frozen=True, slots=True)
class Cell:
    """A 1-bit structural cell (register or multiplexer).

    Unlike :class:`Component`, a cell implements no data-flow operation;
    allocation replicates it per bit.  The paper's Table 1 lists the two
    cells every design needs: the 1-bit register (31 mil^2, 5 ns) and the
    1-bit 2:1 multiplexer (18 mil^2, 4 ns).
    """

    name: str
    area_mil2: float
    delay_ns: float

    def __post_init__(self) -> None:
        if self.area_mil2 <= 0 or self.delay_ns <= 0:
            raise LibraryError(
                f"cell {self.name!r}: area and delay must be positive"
            )

    def area_for_bits(self, bits: int) -> float:
        """Total area of ``bits`` replicated cells."""
        if bits < 0:
            raise LibraryError(f"bit count must be non-negative, got {bits}")
        return self.area_mil2 * bits
