"""Component libraries and module sets.

:class:`ComponentLibrary` groups :class:`~repro.library.component.Component`
instances by operation type and enumerates *module sets* — one choice of
component per required operation type.  The special roles ``register`` and
``mux`` (1-bit storage and steering cells used by every design) are held
separately because every module set shares them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dfg.ops import COMPUTE_OP_TYPES, OpType
from repro.errors import LibraryError
from repro.library.component import Cell, Component


@dataclass(frozen=True, slots=True)
class ModuleSet:
    """One component chosen for each operation type a partition uses."""

    choices: Tuple[Tuple[OpType, Component], ...]

    @staticmethod
    def of(mapping: Mapping[OpType, Component]) -> "ModuleSet":
        ordered = tuple(sorted(mapping.items(), key=lambda kv: kv[0].value))
        return ModuleSet(choices=ordered)

    def component(self, op_type: OpType) -> Component:
        for chosen_type, component in self.choices:
            if chosen_type is op_type:
                return component
        raise LibraryError(
            f"module set has no component for {op_type.value!r}"
        )

    def op_types(self) -> Tuple[OpType, ...]:
        return tuple(op_type for op_type, _ in self.choices)

    @property
    def label(self) -> str:
        """Compact human-readable name, e.g. ``add2+mul3``."""
        return "+".join(component.name for _, component in self.choices)

    def max_delay_ns(self) -> float:
        """Slowest component delay in the set."""
        return max(component.delay_ns for _, component in self.choices)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


class ComponentLibrary:
    """A named collection of datapath components.

    ``register`` and ``mux`` are mandatory 1-bit cells: register and
    multiplexer allocation (and their clock-cycle delay contributions) use
    them for every predicted design.
    """

    def __init__(
        self,
        name: str,
        components: Iterable[Component],
        register: Cell,
        mux: Cell,
    ) -> None:
        self.name = name
        self.register = register
        self.mux = mux
        self._by_type: Dict[OpType, List[Component]] = {}
        self._by_name: Dict[str, Component] = {}
        for component in components:
            if component.op_type not in COMPUTE_OP_TYPES:
                raise LibraryError(
                    f"component {component.name!r} implements "
                    f"{component.op_type.value!r}, which is not a compute type"
                )
            if component.name in self._by_name:
                raise LibraryError(
                    f"duplicate component name {component.name!r}"
                )
            self._by_name[component.name] = component
            self._by_type.setdefault(component.op_type, []).append(component)
        for options in self._by_type.values():
            options.sort(key=lambda c: c.delay_ns)

    # ------------------------------------------------------------------
    def components_for(self, op_type: OpType) -> List[Component]:
        """Components implementing ``op_type``, fastest first."""
        options = self._by_type.get(op_type)
        if not options:
            raise LibraryError(
                f"library {self.name!r} has no component for "
                f"{op_type.value!r}"
            )
        return list(options)

    def component_named(self, name: str) -> Component:
        try:
            return self._by_name[name]
        except KeyError:
            raise LibraryError(
                f"library {self.name!r} has no component named {name!r}"
            ) from None

    def supported_op_types(self) -> List[OpType]:
        return sorted(self._by_type, key=lambda t: t.value)

    def module_sets(
        self,
        op_types: Sequence[OpType],
        max_delay_ns: Optional[float] = None,
    ) -> List[ModuleSet]:
        """All module sets covering ``op_types``.

        ``max_delay_ns`` filters out components slower than the datapath
        clock — the single-cycle-style restriction where every operation
        must complete within one datapath cycle.  Raises
        :class:`LibraryError` when some type has no qualifying component.
        """
        required = sorted(set(op_types), key=lambda t: t.value)
        option_lists: List[List[Component]] = []
        for op_type in required:
            options = self.components_for(op_type)
            if max_delay_ns is not None:
                options = [c for c in options if c.delay_ns <= max_delay_ns]
            if not options:
                raise LibraryError(
                    f"no component for {op_type.value!r} fits within "
                    f"{max_delay_ns:g} ns"
                )
            option_lists.append(options)
        sets = []
        for combo in itertools.product(*option_lists):
            sets.append(ModuleSet.of(dict(zip(required, combo))))
        return sets

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComponentLibrary({self.name!r}, {len(self)} components)"
