"""Tests for data-transfer task creation."""

from __future__ import annotations

import pytest

from repro.chips.chip import Chip
from repro.chips.presets import mosis_package
from repro.core.partitioning import Partitioning
from repro.core.schemes import horizontal_cut, single_partition
from repro.core.tasks import (
    TaskKind,
    build_task_graph,
    memory_interfaces,
)
from repro.dfg.builders import GraphBuilder
from repro.memory.module import MemoryModule


def _chips(n):
    return [Chip(f"chip{i+1}", mosis_package(2)) for i in range(n)]


@pytest.fixture
def two_chip_partitioning(ar_graph):
    parts = horizontal_cut(ar_graph, 2)
    return Partitioning(
        ar_graph, parts, _chips(2), {"P1": "chip1", "P2": "chip2"}
    )


@pytest.fixture
def same_chip_partitioning(ar_graph):
    parts = horizontal_cut(ar_graph, 2)
    return Partitioning(
        ar_graph, parts, _chips(1), {"P1": "chip1", "P2": "chip1"}
    )


class TestTaskCreation:
    def test_process_task_per_partition(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        names = {t.name for t in tg.process_tasks()}
        assert names == {"pu:P1", "pu:P2"}

    def test_inter_chip_transfer_created(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        assert "xfer:P1->P2" in tg.tasks
        task = tg.tasks["xfer:P1->P2"]
        assert task.kind is TaskKind.TRANSFER
        assert task.chips == ("chip1", "chip2")
        assert task.bits > 0

    def test_same_chip_transfer_elided(self, same_chip_partitioning):
        tg = build_task_graph(same_chip_partitioning)
        assert "xfer:P1->P2" not in tg.tasks
        # Precedence is preserved as a direct PU edge.
        assert ("pu:P1", "pu:P2") in tg.edges

    def test_system_io_tasks(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        # Both partitions consume primary inputs (samples/coefficients).
        assert "in:P1" in tg.tasks
        assert "in:P2" in tg.tasks
        # Only P2 produces primary outputs.
        assert "out:P2" in tg.tasks
        assert "out:P1" not in tg.tasks

    def test_input_bits_match_widths(self, ar_graph,
                                     two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        total_in = (
            tg.tasks["in:P1"].bits + tg.tasks["in:P2"].bits
        )
        expected = sum(v.width for v in ar_graph.primary_inputs())
        assert total_in == expected

    def test_transfer_bits_match_cut(self, ar_graph,
                                     two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        cut = ar_graph.cut_values(two_chip_partitioning.partition_map())
        expected = sum(ar_graph.value(vid).width for vid, _s, _d in cut)
        assert tg.tasks["xfer:P1->P2"].bits == expected

    def test_precedence_shape(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        assert ("in:P1", "pu:P1") in tg.edges
        assert ("pu:P1", "xfer:P1->P2") in tg.edges
        assert ("xfer:P1->P2", "pu:P2") in tg.edges
        assert ("pu:P2", "out:P2") in tg.edges

    def test_topological_order(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        order = tg.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for src, dst in tg.edges:
            assert pos[src] < pos[dst]

    def test_communication_links(self, two_chip_partitioning):
        tg = build_task_graph(two_chip_partitioning)
        # chip1: partner chip2 plus the outside world (inputs).
        assert tg.communication_links("chip1") == 2
        # chip2: chip1, world-in, world-out.
        assert tg.communication_links("chip2") == 3

    def test_single_partition_has_only_io(self, ar_graph):
        pt = Partitioning(
            ar_graph, [single_partition(ar_graph)], _chips(1),
            {"P1": "chip1"},
        )
        tg = build_task_graph(pt)
        kinds = {t.kind for t in tg.data_tasks()}
        assert kinds == {TaskKind.INPUT, TaskKind.OUTPUT}


class TestMemoryInterfaces:
    @pytest.fixture
    def memory_partitioning(self):
        b = GraphBuilder("m")
        a = b.input("a")
        r = b.mem_read(a, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        g = b.build()
        parts = [single_partition(g)]
        return Partitioning(
            g, parts, _chips(2), {"P1": "chip1"},
            memories=[MemoryModule("M", 256, 16)],
            memory_chip={"M": "chip2"},
        )

    def test_both_sides_pay_interface(self, memory_partitioning):
        interfaces = memory_interfaces(memory_partitioning)
        assert interfaces["chip1"] == {"M"}
        assert interfaces["chip2"] == {"M"}

    def test_pin_loads(self, memory_partitioning):
        tg = build_task_graph(memory_partitioning)
        pins = MemoryModule("M", 256, 16).interface_pins()
        assert tg.memory_pin_loads["chip1"] == pins
        assert tg.memory_pin_loads["chip2"] == pins

    def test_resident_memory_is_free(self):
        b = GraphBuilder("m")
        a = b.input("a")
        r = b.mem_read(a, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        g = b.build()
        pt = Partitioning(
            g, [single_partition(g)], _chips(1), {"P1": "chip1"},
            memories=[MemoryModule("M", 256, 16)],
            memory_chip={"M": "chip1"},
        )
        tg = build_task_graph(pt)
        assert tg.memory_pin_loads["chip1"] == 0

    def test_off_the_shelf_memory_only_accessor_pays(self):
        b = GraphBuilder("m")
        a = b.input("a")
        r = b.mem_read(a, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        g = b.build()
        pt = Partitioning(
            g, [single_partition(g)], _chips(2), {"P1": "chip1"},
            memories=[MemoryModule("M", 256, 16, off_the_shelf=True)],
        )
        interfaces = memory_interfaces(pt)
        assert interfaces["chip1"] == {"M"}
        assert interfaces["chip2"] == set()
