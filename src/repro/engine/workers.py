"""Process-pool evaluation of combination shards.

The GIL keeps a single process from ever using more than one core on the
pure-Python integration pipeline, so the engine fans shards out to a
``multiprocessing`` pool.  Design points:

* the immutable :class:`EvaluationProblem` is pickled **once per
  worker** through the pool initializer, never per task — tasks are just
  tiny :class:`~repro.engine.sharding.Shard` ranges;
* workers run the *same* :func:`evaluate_range` code the serial path
  uses (level-2 pruning included), so parallel results merge to a
  byte-identical :class:`~repro.search.results.SearchResult`;
* cancellation is cooperative through a shared ``Event`` polled between
  combinations, mirroring the serving layer's ``should_stop`` contract;
* the engine degrades gracefully: ``workers=1``, an unsupported start
  method, a pool that cannot be created, or a worker death all fall back
  to in-process serial evaluation (a dead worker's shard is retried
  serially and counted in the stats) — callers always get an answer or a
  :class:`~repro.errors.SearchCancelled`, never a crash.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import FeasibilityCriteria, evaluate_system
from repro.core.integration import integrate
from repro.core.partitioning import Partitioning
from repro.core.tasks import TaskGraph, build_task_graph
from repro.engine.merge import ShardResult, merge_shard_results
from repro.engine.sharding import (
    Shard,
    combination_count,
    decode_combination,
    plan_shards,
)
from repro.errors import EngineError, InfeasibleError, SearchCancelled
from repro.library.library import ComponentLibrary
from repro.obs.metrics import get_registry
from repro.obs.tracing import (
    current_tracer,
    deterministic_span_id,
    make_span_record,
    span as trace_span,
)
from repro.resilience.faults import maybe_inject
from repro.resilience.retry import RetryPolicy
from repro.search.results import FeasibleDesign
from repro.search.space import DesignPoint, DesignSpace

#: Environment override for the pool start method (CI runs the suite
#: under both ``fork`` and ``spawn`` through this knob).
START_METHOD_ENV = "CHOP_START_METHOD"

#: Shards per worker: more shards than workers so a slow shard cannot
#: leave the rest of the pool idle at the tail of a search.
DEFAULT_SHARDS_PER_WORKER = 4

#: Below this many combinations the pool startup cost dominates; the
#: engine evaluates in process instead.
DEFAULT_MIN_COMBINATIONS = 64

#: Selectable evaluation kernels: the scalar reference loop, and the
#: numpy batch-screening path (see :mod:`repro.kernels`).  Both produce
#: byte-identical feasible lists; "vectorized" requires numpy.
KERNELS = ("scalar", "vectorized")


def _check_kernel(kernel: str) -> str:
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel


# ----------------------------------------------------------------------
# the immutable problem and its (shared) evaluation loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationProblem:
    """Everything needed to evaluate any combination of one search.

    Immutable and picklable: the pool initializer ships one copy to each
    worker, after which tasks are index ranges only.
    """

    partitioning: Partitioning
    names: Tuple[str, ...]
    lists: Tuple[Tuple[DesignPrediction, ...], ...]
    clocks: ClockScheme
    library: ComponentLibrary
    criteria: FeasibilityCriteria
    prune: bool
    task_graph: TaskGraph
    usable_area: Mapping[str, float]

    @classmethod
    def build(
        cls,
        partitioning: Partitioning,
        predictions: Mapping[str, Sequence[DesignPrediction]],
        clocks: ClockScheme,
        library: ComponentLibrary,
        criteria: FeasibilityCriteria,
        prune: bool = True,
        task_graph: Optional[TaskGraph] = None,
    ) -> "EvaluationProblem":
        names = tuple(sorted(partitioning.partitions))
        if task_graph is None:
            task_graph = build_task_graph(partitioning)
        return cls(
            partitioning=partitioning,
            names=names,
            lists=tuple(
                tuple(predictions[name]) for name in names
            ),
            clocks=clocks,
            library=library,
            criteria=criteria,
            prune=prune,
            task_graph=task_graph,
            usable_area=usable_area_by_chip(partitioning),
        )

    @property
    def radices(self) -> Tuple[int, ...]:
        return tuple(len(options) for options in self.lists)

    def combination_count(self) -> int:
        return combination_count(self.radices)

    def list_sizes(self) -> Dict[str, int]:
        return {
            name: len(options)
            for name, options in zip(self.names, self.lists)
        }

    def selection(self, flat: int) -> Dict[str, DesignPrediction]:
        """The per-partition selection at one flat combination index."""
        digits = decode_combination(flat, self.radices)
        return {
            name: self.lists[position][digit]
            for position, (name, digit) in enumerate(
                zip(self.names, digits)
            )
        }

    def packed(self) -> Any:
        """The :class:`repro.kernels.PackedPredictions` for this problem.

        Packed lazily and cached on the instance (the dataclass is
        frozen but not slotted, so the cache lives in ``__dict__`` and
        rides the initializer pickle to pool workers — each worker
        reuses the parent's pack instead of re-packing per shard).
        Callers that already hold a pack for these lists can seed the
        cache through :meth:`attach_packed`.
        """
        cached = self.__dict__.get("_packed")
        if cached is None:
            from repro.kernels.packing import pack_problem

            cached = pack_problem(self)
            object.__setattr__(self, "_packed", cached)
        return cached

    def attach_packed(self, packed: Any) -> None:
        """Seed the :meth:`packed` cache with a pre-built pack."""
        object.__setattr__(self, "_packed", packed)


def usable_area_by_chip(partitioning: Partitioning) -> Dict[str, float]:
    """Optimistic usable area per chip (only supply pads bonded)."""
    from repro.chips.chip import POWER_GROUND_PINS

    return {
        name: chip.package.usable_area_mil2(POWER_GROUND_PINS)
        for name, chip in partitioning.chips.items()
    }


def chip_area_hopeless(
    partitioning: Partitioning,
    selection: Mapping[str, DesignPrediction],
    usable: Mapping[str, float],
) -> bool:
    """Level-2 quick check: PU areas alone already overflow some chip.

    Uses the optimistic area lower bounds, so a ``True`` here is a proof
    of infeasibility — integration overhead only adds area.
    """
    for chip_name in partitioning.chips:
        total_lb = sum(
            selection[p].area_total.lb
            for p in partitioning.partitions_on_chip(chip_name)
        )
        if total_lb > usable[chip_name]:
            return True
    return False


def _record_selection(
    space: Optional[DesignSpace],
    selection: Mapping[str, DesignPrediction],
    ii_main: int,
    feasible_flag: bool,
) -> None:
    if space is None:
        return
    space.record(
        DesignPoint(
            kind="system",
            area_mil2=sum(p.area_total.ml for p in selection.values()),
            delay_cycles=max(p.latency_main for p in selection.values()),
            ii_cycles=ii_main,
            feasible=feasible_flag,
        )
    )


def evaluate_range(
    problem: EvaluationProblem,
    start: int,
    stop: int,
    cancel: Optional[Callable[[], bool]] = None,
    space: Optional[DesignSpace] = None,
    collector: Optional[Any] = None,
    counters: Optional[Dict[str, int]] = None,
    soft_stop: Optional[Callable[[], bool]] = None,
) -> Tuple[List[FeasibleDesign], int]:
    """Evaluate the flat combination indices ``[start, stop)`` in order.

    This is the one evaluation loop in the system: the serial path runs
    it over the whole space, workers run it over their shard.  Level-2
    pruning abandons a combination on the first violated chip-area bound
    before the (more expensive) system integration runs.

    ``collector`` (an :class:`repro.obs.ExplainCollector`-shaped object)
    receives the per-combination outcome — prune kill, integration
    failure, or the full feasibility report.  ``counters`` is a plain
    dict (typically a span's counter map) credited with the loop's
    tallies on exit, cancellation included; both hooks cost nothing when
    absent, which is the common case.

    ``soft_stop`` is the graceful-degradation hook (a
    :class:`repro.resilience.SoftDeadline`): where ``cancel`` raises and
    discards, an expired soft stop simply ends the walk and returns the
    partial results found so far.  At least one combination is always
    evaluated, so a degraded verdict is never an empty non-answer; the
    caller detects degradation by ``trials < stop - start``.
    """
    feasible: List[FeasibleDesign] = []
    trials = 0
    pruned = 0
    unintegrable = 0
    try:
        for flat in range(start, stop):
            if cancel is not None and cancel():
                raise SearchCancelled(
                    f"enumeration cancelled after {trials} of "
                    f"{stop - start} combinations"
                )
            if soft_stop is not None and trials > 0 and soft_stop():
                break
            trials += 1
            selection = problem.selection(flat)
            ii_main = max(pred.ii_main for pred in selection.values())

            if problem.prune and chip_area_hopeless(
                problem.partitioning, selection, problem.usable_area
            ):
                pruned += 1
                if collector is not None:
                    collector.record_pruned()
                _record_selection(space, selection, ii_main, False)
                continue
            try:
                system = integrate(
                    problem.partitioning, selection, ii_main,
                    problem.clocks, problem.library,
                    task_graph=problem.task_graph,
                )
            except InfeasibleError:
                unintegrable += 1
                if collector is not None:
                    collector.record_integration_infeasible()
                _record_selection(space, selection, ii_main, False)
                continue
            report = evaluate_system(system, problem.criteria)
            if collector is not None:
                collector.record_report(report)
            if space is not None:
                space.record(
                    DesignPoint(
                        kind="system",
                        area_mil2=sum(
                            u.total_area.ml
                            for u in system.chip_usage.values()
                        ),
                        delay_cycles=system.delay_main,
                        ii_cycles=system.ii_main,
                        feasible=report.feasible,
                    )
                )
            if report.feasible:
                feasible.append(
                    FeasibleDesign(
                        selection=selection, system=system, report=report
                    )
                )
    finally:
        if counters is not None:
            counters["combinations"] = (
                counters.get("combinations", 0) + trials
            )
            counters["pruned_level2"] = (
                counters.get("pruned_level2", 0) + pruned
            )
            counters["integration_infeasible"] = (
                counters.get("integration_infeasible", 0) + unintegrable
            )
            counters["feasible"] = (
                counters.get("feasible", 0) + len(feasible)
            )
    return feasible, trials


def evaluate_range_kernel(
    problem: EvaluationProblem,
    start: int,
    stop: int,
    kernel: str = "scalar",
    cancel: Optional[Callable[[], bool]] = None,
    counters: Optional[Dict[str, int]] = None,
) -> Tuple[List[FeasibleDesign], int]:
    """Dispatch a plain index range to the selected evaluation kernel.

    The vectorized kernel supports exactly this signature — no design
    space, collector or soft stop (callers needing those hooks use the
    scalar loop directly).  Results are byte-identical across kernels;
    see :mod:`repro.kernels`.
    """
    _check_kernel(kernel)
    if kernel == "vectorized":
        try:
            from repro.kernels.batch import evaluate_range_batch
        except ImportError as error:
            raise EngineError(
                "kernel 'vectorized' requires numpy, which is not "
                "importable in this environment"
            ) from error
        return evaluate_range_batch(
            problem, start, stop, cancel=cancel, counters=counters
        )
    return evaluate_range(
        problem, start, stop, cancel=cancel, counters=counters
    )


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
_WORKER_PROBLEM: Optional[EvaluationProblem] = None
_WORKER_CANCEL: Optional[Any] = None
_WORKER_KERNEL: str = "scalar"


def _problem_kernel(problem: EvaluationProblem) -> str:
    """The kernel stamped on ``problem`` for this run ("scalar" if none).

    Stored in the frozen dataclass's ``__dict__`` (like the prediction
    pack) so it travels inside the one problem pickle the pool
    initializer already ships — the ``_make_executor`` override seam
    keeps its ``(problem)`` signature.
    """
    return problem.__dict__.get("_kernel", "scalar")


def _init_worker(problem: EvaluationProblem, cancel_event: Any) -> None:
    """Pool initializer: receive the problem once, keep it in a global."""
    global _WORKER_PROBLEM, _WORKER_CANCEL, _WORKER_KERNEL
    _WORKER_PROBLEM = problem
    _WORKER_CANCEL = cancel_event
    _WORKER_KERNEL = _problem_kernel(problem)


def _evaluate_shard(
    shard: Shard, trace_id: Optional[str] = None
) -> ShardResult:
    """Task body run inside a worker process.

    When the parent search is traced, ``trace_id`` rides in with the
    task and the worker builds its shard span *record* locally — it has
    no channel to the parent's tracer, so the record travels home inside
    the :class:`ShardResult` and is re-parented under the engine's run
    span at merge time.  The span id is a pure function of the trace id
    and shard index, so retries collide deliberately and the merged tree
    is deterministic.
    """
    if _WORKER_PROBLEM is None:
        raise RuntimeError("worker used before initialization")
    # Fault-injection sites (no-ops unless $CHOP_FAULTS names them):
    # "shard" raises in the task body, "shard_exit" kills the process.
    maybe_inject("shard_exit", index=shard.index)
    maybe_inject("shard", index=shard.index)
    cancel = (
        _WORKER_CANCEL.is_set if _WORKER_CANCEL is not None else None
    )
    started = time.perf_counter()
    wall_started = time.time()
    counters: Optional[Dict[str, int]] = (
        {} if trace_id is not None else None
    )
    feasible, trials = evaluate_range_kernel(
        _WORKER_PROBLEM, shard.start, shard.stop,
        kernel=_WORKER_KERNEL, cancel=cancel, counters=counters,
    )
    spans: List[Dict[str, Any]] = []
    if trace_id is not None:
        spans.append(
            make_span_record(
                trace_id=trace_id,
                span_id=deterministic_span_id(
                    trace_id, "shard", shard.index
                ),
                parent_id=None,  # re-parented on merge
                name="engine.shard",
                start_s=wall_started,
                end_s=time.time(),
                counters=counters,
                attrs={
                    "shard": shard.index,
                    "start": shard.start,
                    "stop": shard.stop,
                    "kernel": _WORKER_KERNEL,
                },
            )
        )
    return ShardResult(
        shard=shard,
        feasible=feasible,
        trials=trials,
        elapsed_s=time.perf_counter() - started,
        spans=spans,
        kernel=_WORKER_KERNEL,
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass(slots=True)
class EngineRun:
    """Outcome and accounting of one :meth:`EvaluationEngine.run`."""

    feasible: List[FeasibleDesign]
    trials: int
    mode: str  # "parallel" | "serial" | "serial-fallback" | "serial-degraded"
    workers: int
    shard_count: int
    retried_shards: int
    wall_s: float
    #: Sum of per-shard evaluation time over (wall * workers); 1.0 means
    #: every worker was busy the whole run.  None for serial runs.
    utilization: Optional[float] = None
    #: Serial re-run attempts spent on dead shards beyond the original
    #: worker try (the retry policy's backoff/attempt accounting).
    retry_attempts: int = 0


class EvaluationEngine:
    """A reusable, thread-safe batch evaluator for combination searches.

    One engine can serve many concurrent searches (the HTTP service holds
    a single instance); each :meth:`run` gets its own pool so cancellation
    and crash recovery never leak between searches.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        shards_per_worker: int = DEFAULT_SHARDS_PER_WORKER,
        min_combinations: int = DEFAULT_MIN_COMBINATIONS,
        poll_interval_s: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
        degrade_after: int = 3,
        degrade_cooldown_s: float = 60.0,
        kernel: str = "scalar",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        _check_kernel(kernel)
        if shards_per_worker < 1:
            raise ValueError(
                f"shards_per_worker must be >= 1, got {shards_per_worker}"
            )
        if start_method is None:
            start_method = os.environ.get(START_METHOD_ENV) or None
        self.workers = workers
        self.start_method = start_method
        #: Default evaluation kernel for runs that don't override it.
        self.kernel = kernel
        if degrade_after < 0:
            raise ValueError(
                f"degrade_after must be >= 0, got {degrade_after}"
            )
        self.shards_per_worker = shards_per_worker
        self.min_combinations = min_combinations
        self.poll_interval_s = poll_interval_s
        #: Backoff schedule for dead-shard serial re-runs.  The worker's
        #: own try counts as attempt 1, so the policy's first delay is
        #: slept before the serial retry.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.05, max_delay_s=1.0
        )
        #: After this many *consecutive* pool failures (pool cannot be
        #: created, or a run loses workers) the engine stops trying and
        #: runs serial for ``degrade_cooldown_s``; 0 disables.
        self.degrade_after = degrade_after
        self.degrade_cooldown_s = degrade_cooldown_s
        self._pool_failures = 0
        self._degraded_until = 0.0
        self._lock = threading.Lock()
        # Worker processes never see the parent registry, so shard wall
        # time is observed parent-side from each ShardResult.elapsed_s.
        registry = get_registry()
        self._run_seconds = registry.histogram(
            "engine_run_seconds",
            "Engine run wall time by execution mode",
            labelnames=("mode",),
        )
        self._shard_seconds = registry.histogram(
            "engine_shard_seconds",
            "Per-shard evaluation wall time by execution mode",
            labelnames=("mode",),
        )
        self._shard_retries = registry.counter(
            "engine_shard_retries_total",
            "Serial re-run attempts spent on shards whose worker died",
        )
        self._stats: Dict[str, Any] = {
            "workers": workers,
            "start_method": start_method or "default",
            "kernel": kernel,
            "searches_parallel": 0,
            "searches_serial": 0,
            "searches_degraded": 0,
            "fallbacks": 0,
            "shards_completed": 0,
            "shards_retried": 0,
            "shard_retry_attempts": 0,
            "pool_failures_consecutive": 0,
            "combinations_evaluated": 0,
            "last_utilization": None,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self,
        problem: EvaluationProblem,
        cancel: Optional[Callable[[], bool]] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        kernel: Optional[str] = None,
    ) -> EngineRun:
        """Evaluate the whole combination space of ``problem``.

        ``cancel`` is polled continuously; when it returns ``True`` every
        worker is stopped and :class:`SearchCancelled` is raised with no
        worker processes left behind.  ``progress`` (if given) receives
        ``(shards_done, shards_total)`` after every finished shard.

        ``kernel`` overrides the engine's default evaluation kernel for
        this run only; results are byte-identical either way.

        When a tracer is active (see :mod:`repro.obs.tracing`) the run
        opens an ``engine.run`` span; worker shard spans ship back with
        the shard results and are re-parented under it during the merge.
        """
        if kernel is None:
            kernel = self.kernel
        else:
            _check_kernel(kernel)
        total = problem.combination_count()
        started = time.perf_counter()
        with trace_span(
            "engine.run", workers=self.workers, space=total,
            kernel=kernel,
        ) as sp:
            if self.workers <= 1 or total < self.min_combinations:
                run = self._run_serial(problem, total, started, cancel,
                                       progress, mode="serial",
                                       kernel=kernel)
            elif self.is_degraded():
                # Repeated pool failures: stop fighting the platform
                # and answer serially until the cooldown passes.
                run = self._run_serial(problem, total, started, cancel,
                                       progress, mode="serial-degraded",
                                       kernel=kernel)
            else:
                run = self._run_parallel(
                    problem, total, started, cancel, progress,
                    run_span=sp, kernel=kernel,
                )
            sp.put("mode", run.mode)
            sp.put("shards", run.shard_count)
            if run.utilization is not None:
                sp.put("utilization", run.utilization)
            sp.add("combinations", run.trials)
            sp.add("feasible", len(run.feasible))
            sp.add("retried_shards", run.retried_shards)
            sp.add("retry_attempts", run.retry_attempts)
        self._account(run)
        return run

    def stats(self) -> Dict[str, Any]:
        """Cumulative counters for ``/metrics`` (a snapshot copy)."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["degraded"] = (
                time.monotonic() < self._degraded_until
            )
            return snapshot

    def is_degraded(self) -> bool:
        """Whether the engine is inside a forced-serial cooldown."""
        with self._lock:
            return time.monotonic() < self._degraded_until

    def _note_pool_failure(self) -> None:
        """One more consecutive pool failure; maybe enter degraded mode."""
        with self._lock:
            self._pool_failures += 1
            self._stats["pool_failures_consecutive"] = self._pool_failures
            if self.degrade_after and (
                self._pool_failures >= self.degrade_after
            ):
                self._degraded_until = (
                    time.monotonic() + self.degrade_cooldown_s
                )

    def _note_pool_ok(self) -> None:
        """A clean parallel run resets the failure streak."""
        with self._lock:
            self._pool_failures = 0
            self._stats["pool_failures_consecutive"] = 0

    # ------------------------------------------------------------------
    # execution modes
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        problem: EvaluationProblem,
        total: int,
        started: float,
        cancel: Optional[Callable[[], bool]],
        progress: Optional[Callable[[int, int], None]],
        mode: str,
        retried_shards: int = 0,
        kernel: str = "scalar",
    ) -> EngineRun:
        with trace_span(
            "engine.serial", start=0, stop=total, mode=mode,
            kernel=kernel,
        ) as sp:
            feasible, trials = evaluate_range_kernel(
                problem, 0, total, kernel=kernel, cancel=cancel,
                counters=sp.counters,
            )
        if progress is not None:
            progress(1, 1)
        return EngineRun(
            feasible=feasible,
            trials=trials,
            mode=mode,
            workers=1,
            shard_count=1,
            retried_shards=retried_shards,
            wall_s=time.perf_counter() - started,
        )

    def _make_executor(
        self, problem: EvaluationProblem
    ) -> Tuple[ProcessPoolExecutor, Any]:
        """Create the pool (separated out so tests can inject failure).

        The run's kernel choice rides to the workers on the problem
        itself (:func:`_problem_kernel`), keeping this override seam's
        signature stable.
        """
        context = multiprocessing.get_context(self.start_method)
        cancel_event = context.Event()
        executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(problem, cancel_event),
        )
        return executor, cancel_event

    def _run_parallel(
        self,
        problem: EvaluationProblem,
        total: int,
        started: float,
        cancel: Optional[Callable[[], bool]],
        progress: Optional[Callable[[int, int], None]],
        run_span: Any = None,
        kernel: str = "scalar",
    ) -> EngineRun:
        shards = plan_shards(
            total, self.workers * self.shards_per_worker
        )
        object.__setattr__(problem, "_kernel", kernel)
        if kernel == "vectorized":
            # Pack in the parent so every worker inherits one shared
            # pack through the initializer pickle instead of re-packing.
            problem.packed()
        try:
            executor, cancel_event = self._make_executor(problem)
        except (ValueError, OSError, ImportError):
            # Unsupported start method or a platform that cannot spawn
            # processes at all: stay correct, run in process.
            with self._lock:
                self._stats["fallbacks"] += 1
            self._note_pool_failure()
            return self._run_serial(problem, total, started, cancel,
                                    progress, mode="serial-fallback",
                                    kernel=kernel)

        tracer = current_tracer()
        trace_id = tracer.trace_id if tracer is not None else None
        results: List[ShardResult] = []
        dead_shards: List[Shard] = []
        try:
            pending = {
                executor.submit(_evaluate_shard, shard, trace_id): shard
                for shard in shards
            }
            while pending:
                done, _ = wait(
                    pending,
                    timeout=self.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                if cancel is not None and cancel():
                    raise SearchCancelled(
                        f"parallel enumeration cancelled with "
                        f"{len(pending)} of {len(shards)} shards "
                        f"outstanding"
                    )
                for future in done:
                    shard = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        result = future.result()
                        results.append(result)
                        self._shard_seconds.labels(
                            mode=(
                                "vectorized"
                                if result.kernel == "vectorized"
                                else "parallel"
                            )
                        ).observe(result.elapsed_s, exemplar=trace_id)
                        if progress is not None:
                            progress(
                                len(results) + len(dead_shards),
                                len(shards),
                            )
                    elif isinstance(error, (BrokenProcessPool, OSError)):
                        # The worker died (or the pool broke with it);
                        # remember the shard for a serial retry.
                        dead_shards.append(shard)
                    elif isinstance(error, SearchCancelled):
                        raise SearchCancelled(str(error))
                    else:
                        raise error
        finally:
            cancel_event.set()
            executor.shutdown(wait=True, cancel_futures=True)

        retry_attempts = 0
        for shard in sorted(dead_shards, key=lambda s: s.start):
            feasible, trials, attempts = self._retry_shard(
                problem, shard, cancel, kernel=kernel
            )
            retry_attempts += attempts
            results.append(
                ShardResult(
                    shard=shard,
                    feasible=feasible,
                    trials=trials,
                    retried=True,
                    kernel=kernel,
                )
            )
            if progress is not None:
                progress(len(results), len(shards))
        if dead_shards:
            self._note_pool_failure()
        else:
            self._note_pool_ok()

        with trace_span("engine.merge", shards=len(results)) as merge_sp:
            if tracer is not None:
                # Replay worker shard spans in visit order, re-parented
                # under the run span — the tree is identical no matter
                # which worker ran which shard.
                parent_id = getattr(run_span, "span_id", None)
                replayed = 0
                for result in sorted(
                    results, key=lambda r: r.shard.start
                ):
                    for record in result.spans:
                        record["parent_id"] = parent_id
                        tracer.emit(record)
                        replayed += 1
                merge_sp.add("replayed_spans", replayed)
            feasible, trials = merge_shard_results(results, total)
            merge_sp.add("feasible", len(feasible))
        wall = time.perf_counter() - started
        busy = sum(result.elapsed_s for result in results)
        return EngineRun(
            feasible=feasible,
            trials=trials,
            mode="parallel",
            workers=self.workers,
            shard_count=len(shards),
            retried_shards=len(dead_shards),
            wall_s=wall,
            utilization=(
                round(busy / (wall * self.workers), 4) if wall > 0
                else None
            ),
            retry_attempts=retry_attempts,
        )

    def _retry_shard(
        self,
        problem: EvaluationProblem,
        shard: Shard,
        cancel: Optional[Callable[[], bool]],
        kernel: str = "scalar",
    ) -> Tuple[List[FeasibleDesign], int, int]:
        """Serially re-run a shard whose worker died, with backoff.

        The dead worker's try counts as attempt 1 of the retry policy,
        so the first serial re-run already backs off.  Returns
        ``(feasible, trials, retries)`` where ``retries`` is the number
        of re-run attempts spent (>= 1).
        """
        policy = self.retry_policy
        attempt = 1
        while True:
            time.sleep(policy.delay_for(attempt))
            attempt += 1
            self._shard_retries.inc()
            retry_started = time.perf_counter()
            # Retried in-process, so the span lands on the parent
            # tracer directly (parented under engine.run by context).
            with trace_span(
                "engine.shard", shard=shard.index, start=shard.start,
                stop=shard.stop, retried=True, attempt=attempt,
            ) as sp:
                try:
                    feasible, trials = evaluate_range_kernel(
                        problem, shard.start, shard.stop, kernel=kernel,
                        cancel=cancel, counters=sp.counters,
                    )
                except SearchCancelled:
                    raise
                except policy.retryable:
                    if attempt >= policy.max_attempts:
                        raise
                    continue
            self._shard_seconds.labels(mode="retry").observe(
                time.perf_counter() - retry_started
            )
            return feasible, trials, attempt - 1

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _account(self, run: EngineRun) -> None:
        self._run_seconds.labels(mode=run.mode).observe(run.wall_s)
        if run.mode != "parallel":
            # Serial modes evaluate the whole space as one shard.
            self._shard_seconds.labels(mode=run.mode).observe(run.wall_s)
        with self._lock:
            if run.mode == "parallel":
                self._stats["searches_parallel"] += 1
            else:
                self._stats["searches_serial"] += 1
            if run.mode == "serial-degraded":
                self._stats["searches_degraded"] += 1
            self._stats["shards_completed"] += run.shard_count
            self._stats["shards_retried"] += run.retried_shards
            self._stats["shard_retry_attempts"] += run.retry_attempts
            self._stats["combinations_evaluated"] += run.trials
            if run.utilization is not None:
                self._stats["last_utilization"] = run.utilization
