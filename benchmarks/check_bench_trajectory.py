#!/usr/bin/env python
"""Compare fresh ``BENCH_*.json`` artifacts against committed baselines.

CI regenerates the machine-readable benchmark artifacts on every run
(smoke mode), then calls this checker with the *committed* copies as the
baseline.  The point is trajectory, not absolutes: wall-clock numbers
move with the runner, so the specs below compare machine-independent
ratios (cold/warm speedups), quality metrics (cut bits), and invariant
booleans (equivalence, identity, SLO gates) — each with an explicit
direction and a generous tolerance band.

Rules per metric kind:

* ``true``   — the fresh value must be exactly ``True`` (baseline not
  consulted); these are correctness gates, never tolerated.
* ``exact``  — fresh must equal baseline exactly (deterministic counts).
* ``higher`` — fresh must be ``>= baseline * (1 - tol)``.
* ``lower``  — fresh must be ``<= baseline * (1 + tol)``.

Numeric comparisons are skipped (with a note) when either side lacks
the metric, or when the two runs disagree on their ``smoke`` flag —
smoke runs shrink the workload, so quality numbers are not comparable
across modes.  ``cases[*].<path>`` specs align list entries by their
``(graph, chips)`` identity and compare only the intersection.

Usage::

    python benchmarks/check_bench_trajectory.py \
        --baseline-dir /tmp/baseline --fresh-dir benchmarks/results
    python benchmarks/check_bench_trajectory.py --self-test

``--self-test`` feeds the checker a seeded synthetic regression and a
clean pair, asserting it fails the former and passes the latter.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Check:
    path: str            # dotted path; "cases[*]." prefix fans out
    kind: str            # true | exact | higher | lower
    tol: float = 0.0     # fractional band for higher/lower
    same_mode: bool = False  # skip unless smoke flags match


SPECS: Dict[str, List[Check]] = {
    "BENCH_service.json": [
        Check("gates_ok", "true"),
        Check("slo_ok", "true"),
        # Serving throughput and tail latency drift with the runner;
        # only a gross regression (>60% rps loss, >4x p95) fails.
        Check("rps", "higher", tol=0.6),
        Check("p95_ms", "lower", tol=3.0),
    ],
    "BENCH_incremental.json": [
        Check("identity_ok", "true"),
        # cold/warm ratio on the same machine — host speed cancels.
        Check("speedup", "higher", tol=0.6),
    ],
    "BENCH_parallel.json": [
        Check("equivalence_ok", "true"),
    ],
    "BENCH_vectorized.json": [
        Check("identity_ok", "true"),
        # The >= 4x gate re-asserts itself on every fresh run.
        Check("speedup_ok", "true"),
        # The vectorized side of the ratio finishes in well under a
        # millisecond, so the raw speedup is noise-dominated; only a
        # collapse (an order of magnitude) fails the trajectory.
        Check("speedup", "higher", tol=0.9),
    ],
    "BENCH_explore.json": [
        Check("gates_ok", "true"),
        Check("front_points", "exact"),
        Check("speedup", "higher", tol=0.6),
    ],
    "BENCH_distributed.json": [
        # Fleet-vs-single-node verdict identity, cross-worker shared-
        # cache reuse, and clean SIGTERM drain are correctness gates —
        # they must hold on every run, smoke or full.
        Check("identity_ok", "true"),
        Check("cross_worker_hits_ok", "true"),
        Check("drain_ok", "true"),
        Check("gates_ok", "true"),
        # Fleet-vs-single RPS on the same host — machine speed cancels,
        # but the smoke workload is too small to saturate 4 workers, so
        # the ratio only binds between same-mode runs.
        Check("speedup", "higher", tol=0.6, same_mode=True),
    ],
    "BENCH_auto.json": [
        Check("cases[*].auto.feasible", "true"),
        Check("cases[*].auto.chop_valid", "true"),
        # Partition quality is deterministic per (graph, chips) but the
        # smoke workload differs from the full one.
        Check("cases[*].auto.cut_bits", "lower", tol=0.25,
              same_mode=True),
    ],
}


def dig(doc, path: str):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def case_key(case: dict) -> Tuple:
    return (case.get("graph"), case.get("chips"))


def fan_out(
    fresh: dict, baseline: dict, path: str
) -> List[Tuple[str, object, object]]:
    """Resolve a spec path to [(label, fresh_value, baseline_value)]."""
    if not path.startswith("cases[*]."):
        return [(path, dig(fresh, path), dig(baseline, path))]
    sub = path[len("cases[*]."):]
    base_by_key = {
        case_key(c): c for c in baseline.get("cases", [])
        if isinstance(c, dict)
    }
    resolved = []
    for case in fresh.get("cases", []):
        if not isinstance(case, dict):
            continue
        key = case_key(case)
        label = f"cases[{key[0]},chips={key[1]}].{sub}"
        twin = base_by_key.get(key)
        resolved.append((
            label,
            dig(case, sub),
            dig(twin, sub) if twin is not None else None,
        ))
    return resolved


def compare_file(
    name: str, fresh: dict, baseline: Optional[dict]
) -> Tuple[List[str], List[str]]:
    """Returns ``(problems, notes)`` for one artifact."""
    problems: List[str] = []
    notes: List[str] = []
    modes_match = (
        baseline is not None
        and fresh.get("smoke") == baseline.get("smoke")
    )
    for check in SPECS[name]:
        pairs = fan_out(fresh, baseline or {}, check.path)
        if not pairs:
            problems.append(f"{name}: no entries match {check.path}")
        for label, fresh_value, base_value in pairs:
            where = f"{name}: {label}"
            if check.kind == "true":
                if fresh_value is not True:
                    problems.append(
                        f"{where} must be true, got {fresh_value!r}"
                    )
                continue
            if fresh_value is None:
                problems.append(f"{where} missing from fresh run")
                continue
            if baseline is None or base_value is None:
                notes.append(f"{where}: no baseline value, skipped")
                continue
            if check.same_mode and not modes_match:
                notes.append(
                    f"{where}: smoke flags differ, skipped"
                )
                continue
            if check.kind == "exact":
                if fresh_value != base_value:
                    problems.append(
                        f"{where} changed: {base_value!r} -> "
                        f"{fresh_value!r}"
                    )
            elif check.kind == "higher":
                floor = base_value * (1.0 - check.tol)
                if fresh_value < floor:
                    problems.append(
                        f"{where} regressed: {fresh_value} < "
                        f"{floor:.4g} (baseline {base_value}, "
                        f"tol {check.tol:.0%})"
                    )
            elif check.kind == "lower":
                ceiling = base_value * (1.0 + check.tol)
                if fresh_value > ceiling:
                    problems.append(
                        f"{where} regressed: {fresh_value} > "
                        f"{ceiling:.4g} (baseline {base_value}, "
                        f"tol {check.tol:.0%})"
                    )
            else:  # pragma: no cover - spec typo guard
                problems.append(
                    f"{where}: unknown check kind {check.kind!r}"
                )
    return problems, notes


def load(path: pathlib.Path) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"unreadable {path}: {exc}")


def run_compare(
    baseline_dir: pathlib.Path, fresh_dir: pathlib.Path
) -> int:
    problems: List[str] = []
    compared = 0
    for name in sorted(SPECS):
        fresh = load(fresh_dir / name)
        if fresh is None:
            print(f"SKIP {name}: not produced by this run")
            continue
        baseline = load(baseline_dir / name)
        if baseline is None:
            print(f"NOTE {name}: no committed baseline, gates only")
        compared += 1
        file_problems, notes = compare_file(name, fresh, baseline)
        for note in notes:
            print(f"NOTE {note}")
        problems.extend(file_problems)
    if compared == 0:
        print("FAIL no BENCH_*.json artifacts found to compare")
        return 1
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"{len(problems)} regression(s) across {compared} file(s)")
        return 1
    print(f"OK {compared} benchmark file(s) within the tolerance band")
    return 0


def self_test() -> int:
    """Seeded synthetic regression must fail; clean pair must pass."""
    baseline = {
        "BENCH_incremental.json": {
            "speedup": 4.0, "identity_ok": True,
        },
        "BENCH_service.json": {
            "rps": 1000.0, "p95_ms": 1.0, "gates_ok": True,
            "slo_ok": True,
        },
    }
    regressed = {
        "BENCH_incremental.json": {
            # speedup collapsed below the 60% band, identity broken.
            "speedup": 1.0, "identity_ok": False,
        },
        "BENCH_service.json": {
            # p95 blew past the 4x ceiling.
            "rps": 900.0, "p95_ms": 9.0, "gates_ok": True,
            "slo_ok": True,
        },
    }
    healthy = {
        "BENCH_incremental.json": {
            # within band: 40% slower speedup, still above the floor.
            "speedup": 2.4, "identity_ok": True,
        },
        "BENCH_service.json": {
            "rps": 800.0, "p95_ms": 2.5, "gates_ok": True,
            "slo_ok": True,
        },
    }

    def materialise(root: pathlib.Path, docs: dict) -> pathlib.Path:
        root.mkdir(parents=True, exist_ok=True)
        for name, doc in docs.items():
            (root / name).write_text(json.dumps(doc))
        return root

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        base_dir = materialise(tmp_path / "baseline", baseline)
        bad_dir = materialise(tmp_path / "regressed", regressed)
        good_dir = materialise(tmp_path / "healthy", healthy)

        print("-- self-test: seeded regression (must FAIL) --")
        if run_compare(base_dir, bad_dir) == 0:
            print("SELF-TEST FAIL: regression went undetected")
            return 1
        print("-- self-test: healthy run (must PASS) --")
        if run_compare(base_dir, good_dir) != 0:
            print("SELF-TEST FAIL: healthy run flagged")
            return 1
    print("SELF-TEST OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path,
        help="directory holding committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir", type=pathlib.Path,
        help="directory holding artifacts from this run",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the checker detects a seeded synthetic regression",
    )
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.baseline_dir is None or args.fresh_dir is None:
        parser.error(
            "--baseline-dir and --fresh-dir are required unless "
            "--self-test is given"
        )
    return run_compare(args.baseline_dir, args.fresh_dir)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
