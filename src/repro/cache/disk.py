"""The single-writer disk backend of the prediction cache.

This is the original ``repro.engine.diskcache.DiskPredictionCache``
behaviour, unchanged: one process owns the directory, writes are atomic
temp-file + ``os.replace``, defective entries are quarantined as
``*.corrupt``.  Concurrent writers from *other processes* are tolerated
only in the sense that atomic renames never produce torn entries — for
a fleet of writers sharing one directory use
:class:`repro.cache.SharedPredictionCache`, which adds advisory
locking, collision detection and writer attribution.
"""

from __future__ import annotations

from repro.cache.backend import PredictionCacheBase


class DiskPredictionCache(PredictionCacheBase):
    """A directory of pickled per-project prediction lists."""

    kind = "disk"
