"""Graceful-degradation tests: soft deadlines and engine degraded mode.

CHOP's contract is "fast, or degraded, but never nothing" — a check
under a soft deadline returns a partial verdict flagged ``degraded``
instead of raising, and an engine whose pool keeps dying stops paying
pool-construction tax and runs serial for a cooldown.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import EvaluationEngine, EvaluationProblem
from repro.experiments import experiment1_session, experiment2_session
from repro.io.project import session_to_dict
from repro.resilience import SoftDeadline
from repro.service import ChopService


class TestSoftDeadline:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            SoftDeadline(0)
        with pytest.raises(ValueError):
            SoftDeadline(-1.0)

    def test_expires_after_budget(self):
        deadline = SoftDeadline(0.02)
        assert not deadline()
        assert deadline.remaining_s() > 0
        time.sleep(0.03)
        assert deadline()
        assert deadline.expired()
        assert deadline.remaining_s() == 0.0


class TestSearchSoftDeadline:
    @pytest.fixture(scope="class")
    def session(self):
        return experiment2_session(partition_count=3)

    def test_enumeration_degrades_but_answers(self, session):
        full = session.check(heuristic="enumeration")
        partial = session.check(
            heuristic="enumeration", soft_deadline_s=1e-6
        )
        # At least one combination is always evaluated; the rest of the
        # walk is skipped and the verdict says so.
        assert 1 <= partial.trials < full.trials
        assert partial.degraded
        assert partial.to_dict()["degraded"] is True
        assert not full.degraded

    def test_iterative_degrades_but_answers(self, session):
        partial = session.check(
            heuristic="iterative", soft_deadline_s=1e-6
        )
        assert partial.trials >= 1
        assert partial.degraded

    def test_generous_deadline_is_not_degraded(self, session):
        result = session.check(
            heuristic="enumeration", soft_deadline_s=300.0
        )
        assert not result.degraded

    def test_soft_deadline_forces_serial_path(self, session):
        engine = EvaluationEngine(workers=2, min_combinations=1)
        session.check(
            heuristic="enumeration", engine=engine, soft_deadline_s=1e-6
        )
        # The engine was handed in but the soft deadline bypassed it:
        # shard boundaries would make the visited prefix nondeterministic.
        stats = engine.stats()
        assert stats["searches_parallel"] == 0
        assert stats["searches_serial"] == 0


class _UnpoolableEngine(EvaluationEngine):
    """An engine whose process pool can never be created."""

    def _make_executor(self, problem):
        raise OSError("no processes on this platform")


class TestEngineDegradedMode:
    def _problem(self):
        session = experiment2_session(partition_count=3)
        return EvaluationProblem.build(
            session.partitioning(),
            session.pruned_predictions(),
            session.clocks,
            session.library,
            session.criteria,
        )

    def test_repeated_pool_failures_enter_degraded_mode(self):
        problem = self._problem()
        engine = _UnpoolableEngine(
            workers=2, min_combinations=1,
            degrade_after=2, degrade_cooldown_s=60.0,
        )
        # Two consecutive pool failures: both fall back serially.
        for _ in range(2):
            run = engine.run(problem)
            assert run.mode == "serial-fallback"
        assert engine.is_degraded()
        assert engine.stats()["pool_failures_consecutive"] == 2
        # The third run skips pool construction entirely.
        run = engine.run(problem)
        assert run.mode == "serial-degraded"
        stats = engine.stats()
        assert stats["searches_degraded"] == 1
        assert stats["degraded"] is True

    def test_cooldown_expiry_restores_parallel_attempts(self):
        problem = self._problem()
        engine = _UnpoolableEngine(
            workers=2, min_combinations=1,
            degrade_after=1, degrade_cooldown_s=0.05,
        )
        engine._note_pool_failure()
        assert engine.is_degraded()
        time.sleep(0.08)
        assert not engine.is_degraded()
        # Pools are attempted again (and fail again -> fallback).
        run = engine.run(problem)
        assert run.mode == "serial-fallback"

    def test_degrade_after_zero_disables(self):
        problem = self._problem()
        engine = _UnpoolableEngine(
            workers=2, min_combinations=1, degrade_after=0
        )
        for _ in range(4):
            assert engine.run(problem).mode == "serial-fallback"
        assert not engine.is_degraded()

    def test_clean_run_resets_failure_streak(self):
        problem = self._problem()
        broken = _UnpoolableEngine(
            workers=2, min_combinations=1, degrade_after=3
        )
        broken.run(problem)
        assert broken.stats()["pool_failures_consecutive"] == 1
        healthy = EvaluationEngine(
            workers=2, min_combinations=1, degrade_after=3
        )
        healthy._note_pool_failure()
        healthy._note_pool_ok()
        assert healthy.stats()["pool_failures_consecutive"] == 0

    def test_negative_degrade_after_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(workers=2, degrade_after=-1)


class TestServiceSoftDeadline:
    @pytest.fixture()
    def service(self):
        svc = ChopService(workers=1)
        yield svc
        svc.close()

    @pytest.fixture(scope="class")
    def project_doc(self):
        return session_to_dict(
            experiment2_session(partition_count=3)
        )

    def _upload(self, service, doc):
        status, payload, _route, _hdrs = service.handle(
            "POST", "/projects", json.dumps(doc).encode()
        )
        assert status in (200, 201)
        return payload["project_id"]

    def test_check_with_soft_deadline_bypasses_verdict_cache(
        self, service, project_doc
    ):
        pid = self._upload(service, project_doc)
        body = json.dumps(
            {
                "heuristic": "enumeration",
                "soft_deadline_s": 1e-6,
            }
        ).encode()
        status, payload, _route, _hdrs = service.handle(
            "POST", f"/projects/{pid}/check", body
        )
        assert status == 200
        assert payload["result"]["degraded"] is True
        assert payload["cache_hit"] is False
        # A second identical degraded check is recomputed, never served
        # from the verdict cache — partial answers are not memoized.
        status, payload, _route, _hdrs = service.handle(
            "POST", f"/projects/{pid}/check", body
        )
        assert payload["cache_hit"] is False
        # ... and a full check afterwards does not inherit the partial.
        full_body = json.dumps({"heuristic": "enumeration"}).encode()
        status, payload, _route, _hdrs = service.handle(
            "POST", f"/projects/{pid}/check", full_body
        )
        assert status == 200
        assert payload["result"]["degraded"] is False

    @pytest.mark.parametrize("bad", ["soon", -1, 0])
    def test_invalid_soft_deadline_is_400(
        self, service, project_doc, bad
    ):
        pid = self._upload(service, project_doc)
        status, payload, _route, _hdrs = service.handle(
            "POST",
            f"/projects/{pid}/check",
            json.dumps({"soft_deadline_s": bad}).encode(),
        )
        assert status == 400
