"""Prometheus text exposition of the service's ``/metrics`` snapshot.

The snapshot is a nested JSON document (request counters, per-route
latency percentiles, and one sub-document per registered subsystem
gauge).  Prometheus wants flat ``name{labels} value`` lines, so this
module renders the known request/route shapes explicitly and flattens
every gauge sub-document generically: numeric leaves become metrics,
booleans become 0/1, strings and nulls are skipped.  Names are
sanitised to the ``[a-zA-Z_][a-zA-Z0-9_]*`` charset and prefixed
``chop_``; label values are escaped per the exposition format.

Stdlib-only and pure: ``render_prometheus(snapshot) -> str`` — the
service maps ``GET /metrics?format=prometheus`` onto it.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping

PREFIX = "chop"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    name = "_".join(
        _NAME_OK.sub("_", str(part)) for part in parts if part != ""
    )
    if not name or name[0].isdigit():
        name = f"_{name}"
    return f"{PREFIX}_{name}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _line(name: str, labels: Mapping[str, str], value: Any) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _flatten(
    lines: List[str], prefix: List[str], value: Any
) -> None:
    """Emit a generic (sub-)document as flat gauge lines."""
    if isinstance(value, Mapping):
        for key, child in sorted(value.items(), key=lambda kv: str(kv[0])):
            _flatten(lines, prefix + [str(key)], child)
        return
    if isinstance(value, bool) or isinstance(value, (int, float)):
        lines.append(_line(_metric_name(*prefix), {}, value))
    # strings, None, lists: not representable as a single gauge — skip.


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """The Prometheus text-format (0.0.4) view of one metrics snapshot."""
    lines: List[str] = []

    requests_total = snapshot.get("requests_total")
    if requests_total is not None:
        lines.append(
            f"# TYPE {PREFIX}_requests_total counter"
        )
        lines.append(
            _line(f"{PREFIX}_requests_total", {}, requests_total)
        )

    statuses = snapshot.get("responses_by_status") or {}
    if statuses:
        lines.append(f"# TYPE {PREFIX}_responses_total counter")
        for code, count in sorted(statuses.items()):
            lines.append(
                _line(
                    f"{PREFIX}_responses_total",
                    {"status": str(code)},
                    count,
                )
            )

    routes = snapshot.get("routes") or {}
    if routes:
        lines.append(f"# TYPE {PREFIX}_route_requests_total counter")
        for route, doc in sorted(routes.items()):
            lines.append(
                _line(
                    f"{PREFIX}_route_requests_total",
                    {"route": route},
                    doc.get("count", 0),
                )
            )
        lines.append(f"# TYPE {PREFIX}_route_latency_ms gauge")
        for route, doc in sorted(routes.items()):
            latency = doc.get("latency_ms") or {}
            for quantile_label, quantile in (("p50", "0.5"),
                                             ("p95", "0.95")):
                value = latency.get(quantile_label)
                if value is None:
                    continue
                lines.append(
                    _line(
                        f"{PREFIX}_route_latency_ms",
                        {"route": route, "quantile": quantile},
                        value,
                    )
                )

    handled = {"requests_total", "responses_by_status", "routes"}
    for label, value in sorted(snapshot.items()):
        if label in handled:
            continue
        _flatten(lines, [label], value)

    return "\n".join(lines) + "\n"
