"""Unit conventions and conversion helpers.

The paper works in 1990s MOSIS units and this reproduction keeps them:

* lengths in **mil** (1/1000 inch),
* areas in **square mil** (``mil^2``),
* times in **nanoseconds**,
* data sizes in **bits**.

Clock frequencies never appear directly; everything is expressed in cycle
*counts* of one of the three clocks (main, datapath, transfer), exactly as
the paper's tables do.  The helpers below centralise the ceiling-division
and cycle-conversion arithmetic so that rounding rules live in one place.
"""

from __future__ import annotations

import math

MILS_PER_INCH = 1000.0

#: Bit width used throughout the paper's experiments.
DEFAULT_BIT_WIDTH = 16


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative operands.

    >>> ceil_div(7, 3)
    3
    >>> ceil_div(6, 3)
    2
    >>> ceil_div(0, 5)
    0
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def cycles_for_delay(delay_ns: float, cycle_ns: float) -> int:
    """Number of whole clock cycles needed to cover ``delay_ns``.

    A zero delay still occupies one cycle: hardware registers its result at
    a clock edge, so nothing completes in less than a cycle.

    >>> cycles_for_delay(151.0, 300.0)
    1
    >>> cycles_for_delay(301.0, 300.0)
    2
    >>> cycles_for_delay(0.0, 300.0)
    1
    """
    if cycle_ns <= 0:
        raise ValueError(f"cycle_ns must be positive, got {cycle_ns}")
    if delay_ns < 0:
        raise ValueError(f"delay_ns must be non-negative, got {delay_ns}")
    if delay_ns == 0:
        return 1
    return max(1, math.ceil(delay_ns / cycle_ns - 1e-9))


def rect_area(width_mil: float, height_mil: float) -> float:
    """Area of a rectangle in square mil."""
    if width_mil <= 0 or height_mil <= 0:
        raise ValueError(
            f"dimensions must be positive, got {width_mil} x {height_mil}"
        )
    return width_mil * height_mil
