"""The auto-partitioner against the Kernighan-Lin baseline at equal k.

Runs :func:`repro.auto.auto_partition` and
:func:`repro.baselines.recursive_bisection` on the same generated DFG
and compares (a) k-way cut bits, (b) wall-clock, and (c) CHOP validity
— whether the partition-level quotient graph is acyclic, which §2.3
requires and KL does not guarantee.  Renders the table to
``benchmarks/results/auto_vs_kl.txt`` plus a machine-readable
``benchmarks/results/BENCH_auto.json``.

Run directly (no pytest needed)::

    python benchmarks/bench_auto.py            # full: 1000-op DFG, k=4 and 8
    python benchmarks/bench_auto.py --smoke    # CI: small graph, k=3

Gates: the auto run must be feasible, and must beat KL on either cut
bits or CHOP validity at equal k (the ISSUE acceptance bar).  The full
run additionally gates auto wall-clock at 30 s on the 1000-op graph.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Set

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def kway_cut_bits(weights, part_of: Dict[str, int]) -> int:
    """Total bit width crossing any partition boundary."""
    return sum(
        weight for (a, b), weight in weights.items()
        if part_of[a] != part_of[b]
    )


def directed_edges(graph):
    """Producer -> consumer op pairs (edge_weights keys are undirected)."""
    edges = set()
    for value in graph.values.values():
        if value.producer is None:
            continue
        for consumer in graph.consumers(value.id):
            if consumer != value.producer:
                edges.add((value.producer, consumer))
    return edges


def quotient_is_acyclic(edges, part_of: Dict[str, int]) -> bool:
    """Whether the partition-level dependency graph has no cycle."""
    succ: Dict[int, Set[int]] = {p: set() for p in set(part_of.values())}
    for (a, b) in edges:
        pa, pb = part_of[a], part_of[b]
        if pa != pb:
            succ[pa].add(pb)
    indeg = {p: 0 for p in succ}
    for targets in succ.values():
        for p in targets:
            indeg[p] += 1
    queue = [p for p, d in indeg.items() if d == 0]
    seen = 0
    while queue:
        p = queue.pop()
        seen += 1
        for q in succ[p]:
            indeg[q] -= 1
            if indeg[q] == 0:
                queue.append(q)
    return seen == len(succ)


def parts_to_assignment(parts: List[Set[str]]) -> Dict[str, int]:
    return {op: i for i, part in enumerate(parts) for op in part}


def run_case(graph, chips: int, replicate: bool):
    from repro.auto import AutoPartitionConfig, auto_partition
    from repro.baselines.kernighan_lin import (
        edge_weights, recursive_bisection,
    )

    weights = edge_weights(graph)
    edges = directed_edges(graph)

    start = time.perf_counter()
    auto = auto_partition(
        graph,
        AutoPartitionConfig(chips=chips, replicate=replicate),
    )
    auto_wall = time.perf_counter() - start
    # measure the KL metric on the *original* graph's assignment: the
    # replicated graph has extra ops KL never sees
    auto_parts = {
        op: part for op, part in auto.assignment.items()
        if op in graph.operations
    }
    auto_cut = kway_cut_bits(weights, auto_parts)

    start = time.perf_counter()
    kl_parts = parts_to_assignment(
        recursive_bisection(graph, chips, weights=weights)
    )
    kl_wall = time.perf_counter() - start
    kl_cut = kway_cut_bits(weights, kl_parts)

    return {
        "graph": graph.name,
        "operations": graph.op_count(),
        "chips": chips,
        "auto": {
            "wall_s": round(auto_wall, 3),
            "cut_bits": auto_cut,
            "feasible": auto.feasible,
            "chop_valid": quotient_is_acyclic(edges, auto_parts),
            "levels": auto.levels,
            "clones": (
                len(auto.replication.clones) if auto.replication else 0
            ),
            "repair_moves": auto.repair_moves,
        },
        "kl": {
            "wall_s": round(kl_wall, 3),
            "cut_bits": kl_cut,
            "chop_valid": quotient_is_acyclic(edges, kl_parts),
        },
    }


def render(rows) -> str:
    lines = [
        f"{'graph':<14} {'ops':>5} {'k':>2}   "
        f"{'auto cut':>9} {'auto s':>7} {'feas':>4} {'valid':>5}   "
        f"{'KL cut':>8} {'KL s':>7} {'valid':>5}",
    ]
    for row in rows:
        a, k = row["auto"], row["kl"]
        lines.append(
            f"{row['graph']:<14} {row['operations']:>5} "
            f"{row['chips']:>2}   "
            f"{a['cut_bits']:>9} {a['wall_s']:>7.2f} "
            f"{'yes' if a['feasible'] else 'NO':>4} "
            f"{'yes' if a['chop_valid'] else 'NO':>5}   "
            f"{k['cut_bits']:>8} {k['wall_s']:>7.2f} "
            f"{'yes' if k['chop_valid'] else 'NO':>5}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph for CI: quality gates only, no wall gate",
    )
    args = parser.parse_args(argv)

    from repro.dfg.builders import generate_dfg

    if args.smoke:
        cases = [("layered", 150, 3, True)]
    else:
        cases = [
            ("layered", 1000, 4, True),
            ("layered", 1000, 8, False),
            ("chain", 1000, 4, False),
        ]

    rows = []
    for kind, ops, chips, replicate in cases:
        graph = generate_dfg(kind, ops, seed=7)
        print(
            f"running {kind}/{graph.op_count()} ops at k={chips} "
            f"(replicate={replicate}) ..."
        )
        rows.append(run_case(graph, chips, replicate))

    table = render(rows)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    txt_path = os.path.join(RESULTS_DIR, "auto_vs_kl.txt")
    with open(txt_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\n=== auto_vs_kl.txt ===\n{table}\nwrote {txt_path}")

    json_doc = {"smoke": args.smoke, "cases": rows}
    json_path = os.path.join(RESULTS_DIR, "BENCH_auto.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    failures = []
    for row in rows:
        label = f"{row['graph']}/k={row['chips']}"
        a, k = row["auto"], row["kl"]
        if not a["feasible"]:
            failures.append(f"{label}: auto run infeasible")
        if not a["chop_valid"]:
            failures.append(f"{label}: auto quotient graph is cyclic")
        beats_cut = a["cut_bits"] <= k["cut_bits"]
        beats_validity = a["chop_valid"] and not k["chop_valid"]
        if not (beats_cut or beats_validity):
            failures.append(
                f"{label}: auto loses to KL on both cut "
                f"({a['cut_bits']} vs {k['cut_bits']}) and validity"
            )
        if not args.smoke and row["operations"] >= 1000:
            if a["wall_s"] > 30.0:
                failures.append(
                    f"{label}: auto took {a['wall_s']:.1f}s "
                    f"(budget 30s)"
                )
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
