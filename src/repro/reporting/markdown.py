"""Markdown session reports.

One call renders a designer-facing report of a feasibility check: the
input summary (the paper's six input groups), both heuristics' outcome
rows, the winning design's guideline list and the per-chip occupancy —
the artifact a designer would attach to a design review.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.core.chop import ChopSession
from repro.search.results import SearchResult


def markdown_report(
    session: ChopSession,
    results: Mapping[str, SearchResult],
    title: str = "CHOP feasibility report",
) -> str:
    """Render a markdown report for one partitioning's check results.

    ``results`` maps heuristic names (``iterative`` / ``enumeration``)
    to their search outcomes.
    """
    partitioning = session.partitioning()
    lines: List[str] = [f"# {title}", ""]

    lines += ["## Inputs", ""]
    lines.append(
        f"* specification: `{session.graph.name}` "
        f"({session.graph.op_count()} operations, depth "
        f"{session.graph.depth()})"
    )
    lines.append(
        f"* library: `{session.library.name}` "
        f"({len(session.library)} components)"
    )
    lines.append(
        f"* clocks: main {session.clocks.main_cycle_ns:g} ns, datapath "
        f"x{session.clocks.dp_multiplier}, transfer "
        f"x{session.clocks.transfer_multiplier}"
    )
    lines.append(
        f"* style: {session.style.timing.value}"
        + (", pipelined allowed" if session.style.allow_pipelined else "")
    )
    criteria = session.criteria
    constraint_bits = [
        f"performance <= {criteria.performance_ns:g} ns",
        f"delay <= {criteria.delay_ns:g} ns "
        f"(confidence {criteria.delay_confidence:.0%})",
    ]
    if criteria.system_power_mw is not None:
        constraint_bits.append(
            f"system power <= {criteria.system_power_mw:g} mW"
        )
    if criteria.chip_power_mw is not None:
        constraint_bits.append(
            f"chip power <= {criteria.chip_power_mw:g} mW"
        )
    lines.append("* constraints: " + "; ".join(constraint_bits))
    lines.append("")

    lines += ["## Partitioning", ""]
    for name in sorted(partitioning.partitions):
        partition = partitioning.partitions[name]
        lines.append(
            f"* `{name}`: {len(partition)} operations on "
            f"`{partitioning.chip_of(name)}`"
        )
    for memory in sorted(session.memories):
        host = session.memory_chip.get(memory, "(off the shelf)")
        lines.append(f"* memory `{memory}` on `{host}`")
    lines.append("")

    lines += ["## Search outcomes", ""]
    lines.append(
        "| heuristic | trials | feasible | best II | best delay | "
        "clock ns |"
    )
    lines.append("|---|---|---|---|---|---|")
    best_overall = None
    for heuristic in sorted(results):
        result = results[heuristic]
        best = result.best()
        if best is not None and (
            best_overall is None
            or (best.ii_main, best.delay_main)
            < (best_overall.ii_main, best_overall.delay_main)
        ):
            best_overall = best
        if best is None:
            lines.append(
                f"| {heuristic} | {result.trials} | 0 | - | - | - |"
            )
        else:
            lines.append(
                f"| {heuristic} | {result.trials} | "
                f"{result.feasible_trials} | {best.ii_main} | "
                f"{best.delay_main} | {best.clock_cycle_ns:.0f} |"
            )
    lines.append("")

    if best_overall is None:
        lines.append(
            "**No feasible implementation** under these constraints."
        )
        return "\n".join(lines) + "\n"

    lines += ["## Recommended design", ""]
    system = best_overall.system
    lines.append(
        f"Initiation interval **{system.ii_main}** main cycles, system "
        f"delay **{system.delay_main}** cycles, adjusted clock "
        f"**{system.clock_cycle_ns.ml:.0f} ns** "
        f"(performance {system.performance_ns.ml / 1000:.1f} us, delay "
        f"{system.delay_ns.ml / 1000:.1f} us, power "
        f"{system.power_mw.ml:.0f} mW)."
    )
    lines.append("")
    for name in sorted(best_overall.selection):
        prediction = best_overall.selection[name]
        lines.append(f"### Partition `{name}`")
        lines.append("")
        for item in prediction.guideline_lines():
            lines.append(f"* {item}")
        lines.append("")

    lines += ["## Chip occupancy", ""]
    lines.append("| chip | partitions | area mil^2 | of | power mW |")
    lines.append("|---|---|---|---|---|")
    for chip_name in sorted(system.chip_usage):
        usage = system.chip_usage[chip_name]
        lines.append(
            f"| {chip_name} | {', '.join(usage.partitions) or '-'} | "
            f"{usage.total_area.ml:.0f} | "
            f"{usage.usable_area_mil2:.0f} | "
            f"{usage.power_mw.ml:.0f} |"
        )
    lines.append("")
    return "\n".join(lines) + "\n"
