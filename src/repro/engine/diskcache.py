"""Back-compat adapter: the prediction cache lives in :mod:`repro.cache`.

The original ``DiskPredictionCache`` grew a pluggable backend seam —
the implementation (and its multi-writer sibling
:class:`repro.cache.SharedPredictionCache`) now lives under
:mod:`repro.cache`; this module keeps the historical import path
``repro.engine.diskcache`` working for existing call sites and pickles.
"""

from __future__ import annotations

from repro.cache.backend import CACHE_VERSION, library_clock_digest
from repro.cache.disk import DiskPredictionCache

__all__ = ["CACHE_VERSION", "DiskPredictionCache", "library_clock_digest"]
