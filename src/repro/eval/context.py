"""The incremental evaluation context.

:class:`EvaluationContext` is the single owner of everything the
predict → prune → task-graph pipeline computes per partition, keyed on
*partition content* (the operation-id set) rather than partition name.
It is the one evaluation core under the designer loop: `ChopSession`,
both search heuristics, the process-pool engine's problem builder, the
baselines and the serving layer all obtain their pruned predictions and
task graphs here.

Three cache families, all bounded by one LRU capacity:

* **raw predictions** — BAD's per-partition list, keyed on the op-id
  frozenset (the canonical content key; :meth:`content_hash` gives the
  stable hex digest for external storage),
* **pruned predictions** — level-1 pruned lists, keyed on
  (content, usable area, drop_inferior) so `add_chip` self-invalidates,
* **memory profiles** — per-partition :class:`MemoryAccessProfile`,
  consumed by incremental task-graph assembly.

The task graph is maintained incrementally: section-2.7 mutators mark
partitions dirty, and :meth:`task_graph` rebuilds only the cut pairs and
IO totals incident to the dirty set (see :mod:`repro.eval.taskgraph`),
then reassembles — with results byte-identical to
:func:`repro.core.tasks.build_task_graph`.  A content diff against the
last-seen state backs the dirty set, so even an unannounced mutation is
caught, never silently served stale.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bad.prediction import DesignPrediction
from repro.bad.predictor import BADPredictor, PredictorParameters
from repro.bad.styles import ArchitectureStyle, ClockScheme
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partition import Partition
from repro.core.partitioning import Partitioning
from repro.core.tasks import TaskGraph
from repro.dfg.graph import DataFlowGraph
from repro.eval.taskgraph import (
    TaskGraphIngredients,
    assemble_task_graph,
    full_ingredients,
    update_ingredients,
)
from repro.library.library import ComponentLibrary
from repro.memory.access import MemoryAccessProfile, memory_access_profile
from repro.memory.module import MemoryModule
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span

#: Default LRU bound for each per-content cache.  Sized for long service
#: sessions: hundreds of distinct partition contents fit, while a
#: pathological migrate-heavy client can no longer grow a session
#: without limit.
DEFAULT_CACHE_CAPACITY = 1024

ContentKey = FrozenSet[str]


class EvaluationContext:
    """Content-addressed caches + incremental task graph for one design.

    Not thread-safe (matching :class:`~repro.core.chop.ChopSession`);
    the serving layer serializes access per session entry.
    """

    def __init__(
        self,
        graph: DataFlowGraph,
        library: ComponentLibrary,
        clocks: ClockScheme,
        style: ArchitectureStyle,
        criteria: FeasibilityCriteria,
        memories: Mapping[str, MemoryModule],
        predictor_params: Optional[PredictorParameters] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        self.graph = graph
        self.clocks = clocks
        self.criteria = criteria
        self.capacity = cache_capacity
        self.predictor = BADPredictor(
            library=library,
            clocks=clocks,
            style=style,
            memories=dict(memories),
            params=predictor_params,
        )
        self._raw: "OrderedDict[ContentKey, List[DesignPrediction]]" = (
            OrderedDict()
        )
        self._pruned: "OrderedDict[Tuple, List[DesignPrediction]]" = (
            OrderedDict()
        )
        self._profiles: (
            "OrderedDict[ContentKey, MemoryAccessProfile]"
        ) = OrderedDict()
        self._content_hashes: Dict[ContentKey, str] = {}
        # -- incremental task-graph state --
        self._dirty: Set[str] = set()
        self._ingredients: Optional[TaskGraphIngredients] = None
        self._ingredient_state: Dict[str, ContentKey] = {}
        self._assembled: Optional[TaskGraph] = None
        self._assembled_key: Optional[Tuple] = None
        # -- packed-prediction reuse (vectorized kernel; one slot) --
        # (task_graph, names, usable_area, prediction lists, pack):
        # the strong references to the prediction lists keep their ids
        # from being recycled, so the elementwise identity check below
        # can never false-hit.
        self._packed_entry: Optional[Tuple] = None
        # -- counters (exported through stats() / the /metrics gauge) --
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._seeded = 0
        self._tg_full_builds = 0
        self._tg_incremental = 0
        self._tg_reuses = 0
        self._pairs_reused = 0
        self._pairs_rebuilt = 0
        self._packs = 0
        self._pack_reuses = 0

    # ------------------------------------------------------------------
    # content keys
    # ------------------------------------------------------------------
    def content_hash(self, op_ids: ContentKey) -> str:
        """Canonical hex digest of a partition's operation set.

        Stable across processes and sessions (unlike ``hash()`` of the
        frozenset) — the key to use anywhere a content identity leaves
        this process.
        """
        cached = self._content_hashes.get(op_ids)
        if cached is None:
            digest = hashlib.sha256(
                "\x00".join(sorted(op_ids)).encode("utf-8")
            )
            cached = digest.hexdigest()
            self._content_hashes[op_ids] = cached
        return cached

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _get(self, store: OrderedDict, key):
        entry = store.get(key)
        if entry is not None:
            store.move_to_end(key)
            self._hits += 1
        else:
            self._misses += 1
        return entry

    def _put(self, store: OrderedDict, key, value) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.capacity:
            store.popitem(last=False)
            self._evictions += 1

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    def raw_predictions(
        self, name: str, partition: Partition
    ) -> List[DesignPrediction]:
        """BAD's raw prediction list for one partition content (cached).

        The returned list is the cache's own — callers that hand it out
        must copy (as :meth:`ChopSession.predict` does).
        """
        key = partition.op_ids
        cached = self._get(self._raw, key)
        if cached is None:
            cached = self.predictor.predict_partition(
                self.graph, partition.op_ids, name=name
            )
            self._put(self._raw, key, cached)
        return cached

    def seed_predictions(
        self, partition: Partition, predictions: Sequence[DesignPrediction]
    ) -> None:
        """Install persisted predictions for one partition content."""
        self._put(self._raw, partition.op_ids, list(predictions))
        self._seeded += 1

    def pruned_predictions(
        self,
        name: str,
        partition: Partition,
        usable_area_mil2: float,
        drop_inferior: bool = True,
    ) -> List[DesignPrediction]:
        """Level-1 pruned predictions for one partition content (cached).

        Keyed on (content, usable area, drop_inferior): a chip-set
        change that alters the optimistic usable area naturally misses
        and re-prunes, with the raw list still served from cache.
        """
        # Imported lazily: repro.search's package init reaches back up to
        # ChopSession (advisor), which already imports this module.
        from repro.search.pruning import level1_prune

        key = (partition.op_ids, usable_area_mil2, drop_inferior)
        cached = self._get(self._pruned, key)
        if cached is None:
            raw = self.raw_predictions(name, partition)
            cached = level1_prune(
                raw, self.criteria, self.clocks, usable_area_mil2,
                drop_inferior=drop_inferior,
            )
            self._put(self._pruned, key, cached)
        return cached

    def pruned_map(
        self,
        partitions: Mapping[str, Partition],
        usable_area_mil2: float,
        drop_inferior: bool = True,
    ) -> Dict[str, List[DesignPrediction]]:
        """Pruned predictions for a whole partitioning, traced.

        Emits an ``eval.context`` span whose ``hit``/``miss`` counters
        say how much of this check's prediction work was reused.
        """
        started = time.perf_counter()
        with trace_span(
            "eval.context", partitions=len(partitions)
        ) as sp:
            hits_before, misses_before = self._hits, self._misses
            out = {
                name: list(
                    self.pruned_predictions(
                        name, partition, usable_area_mil2,
                        drop_inferior=drop_inferior,
                    )
                )
                for name, partition in partitions.items()
            }
            hits = self._hits - hits_before
            misses = self._misses - misses_before
            sp.add("hit", hits)
            sp.add("miss", misses)
        # Warm maps answer from the prediction cache alone; cold maps
        # paid for at least one BAD prediction run.
        get_registry().histogram(
            "eval_pruned_map_seconds",
            "Whole-partitioning prediction-map latency by cache warmth",
            labelnames=("cache",),
        ).labels(cache="warm" if misses == 0 else "cold").observe(
            time.perf_counter() - started
        )
        return out

    # ------------------------------------------------------------------
    # memory profiles
    # ------------------------------------------------------------------
    def memory_profile(self, partition: Partition) -> MemoryAccessProfile:
        """The partition's memory access profile (cached by content)."""
        key = partition.op_ids
        cached = self._get(self._profiles, key)
        if cached is None:
            cached = memory_access_profile(self.graph, partition.op_ids)
            self._put(self._profiles, key, cached)
        return cached

    # ------------------------------------------------------------------
    # invalidation (the section-2.7 mutators call these)
    # ------------------------------------------------------------------
    def mark_membership_dirty(self, names: Iterable[str]) -> None:
        """Partition membership changed (migrate / set_partitions)."""
        self._dirty.update(names)
        self._assembled = None
        self._assembled_key = None
        self._invalidations += 1

    def mark_placement_dirty(self) -> None:
        """Chip / memory placement changed (move / assign / add_chip).

        Ingredients depend only on membership, so just the assembled
        graph is dropped; reassembly is O(partitions + pairs).
        """
        self._assembled = None
        self._assembled_key = None
        self._invalidations += 1

    def clear(self) -> None:
        """Drop every cache (benchmark cold paths)."""
        self._raw.clear()
        self._pruned.clear()
        self._profiles.clear()
        self._dirty.clear()
        self._ingredients = None
        self._ingredient_state = {}
        self._assembled = None
        self._assembled_key = None
        self._packed_entry = None
        self._invalidations += 1

    # ------------------------------------------------------------------
    # incremental task graph
    # ------------------------------------------------------------------
    def task_graph(self, partitioning: Partitioning) -> TaskGraph:
        """The task graph for ``partitioning``, maintained incrementally.

        Byte-identical to ``build_task_graph(partitioning)`` — same task
        dict order, edge list, memory pin loads.  Emits an
        ``eval.taskgraph.delta`` span: ``mode`` is ``reused`` (nothing
        changed since last assembly), ``incremental`` (only dirty
        partitions re-derived) or ``full`` (first build), and the
        ``pairs_reused``/``pairs_rebuilt`` counters quantify the delta.
        """
        current = {
            name: partition.op_ids
            for name, partition in partitioning.partitions.items()
        }
        assembled_key = (
            tuple(current.items()),
            tuple(sorted(partitioning.partition_chip.items())),
            tuple(sorted(partitioning.memory_chip.items())),
            tuple(sorted(partitioning.chips)),
        )
        with trace_span("eval.taskgraph.delta") as sp:
            if (
                self._assembled is not None
                and assembled_key == self._assembled_key
            ):
                self._tg_reuses += 1
                sp.put("mode", "reused")
                return self._assembled
            if self._ingredients is None:
                self._ingredients = full_ingredients(partitioning)
                self._tg_full_builds += 1
                sp.put("mode", "full")
                sp.add("dirty", len(current))
            else:
                # Mutator-marked names, unioned with a content diff so an
                # unannounced membership change can never serve stale.
                dirty = {
                    name
                    for name, key in current.items()
                    if self._ingredient_state.get(name) != key
                }
                dirty |= {n for n in self._dirty if n in current}
                removed = set(self._ingredient_state) - set(current)
                if dirty or removed:
                    self._ingredients, reused, rebuilt = update_ingredients(
                        partitioning, self._ingredients, dirty, removed
                    )
                    self._tg_incremental += 1
                    self._pairs_reused += reused
                    self._pairs_rebuilt += rebuilt
                    sp.put("mode", "incremental")
                    sp.add("dirty", len(dirty) + len(removed))
                    sp.add("pairs_reused", reused)
                    sp.add("pairs_rebuilt", rebuilt)
                else:
                    sp.put("mode", "assembly")
            self._ingredient_state = current
            self._dirty.clear()
            graph = assemble_task_graph(
                partitioning,
                self._ingredients,
                lambda name: self.memory_profile(
                    partitioning.partitions[name]
                ),
            )
            self._assembled = graph
            self._assembled_key = assembled_key
            return graph

    # ------------------------------------------------------------------
    # packed predictions (vectorized kernel)
    # ------------------------------------------------------------------
    def attach_packed(self, problem) -> None:
        """Seed ``problem`` with a cached prediction pack, or pack now.

        The single-slot cache is valid only when nothing the pack
        derives from has changed: the task graph must be the *same
        object* (every invalidation path drops ``_assembled``, so a
        rebuilt graph is always a new object — an epoch marker), the
        partition names and optimistic usable areas must be equal, and
        every prediction object must be identical (``is``) position for
        position.  The entry holds strong references to the cached
        prediction lists, so a recycled ``id`` can never alias a new
        prediction into a false hit.
        """
        entry = self._packed_entry
        if entry is not None:
            graph, names, usable, cached_lists, pack = entry
            if (
                graph is problem.task_graph
                and names == problem.names
                and usable == dict(problem.usable_area)
                and len(cached_lists) == len(problem.lists)
                and all(
                    len(have) == len(want)
                    and all(a is b for a, b in zip(have, want))
                    for have, want in zip(cached_lists, problem.lists)
                )
            ):
                problem.attach_packed(pack)
                self._pack_reuses += 1
                return
        try:
            pack = problem.packed()
        except ImportError:  # numpy absent; the kernel dispatcher will
            return           # raise the descriptive EngineError itself
        self._packed_entry = (
            problem.task_graph,
            problem.names,
            dict(problem.usable_area),
            problem.lists,
            pack,
        )
        self._packs += 1

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters for `/metrics` and the benchmark reports."""
        return {
            "capacity": self.capacity,
            "entries": {
                "raw": len(self._raw),
                "pruned": len(self._pruned),
                "profiles": len(self._profiles),
            },
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "invalidations": self._invalidations,
            "seeded": self._seeded,
            "taskgraph": {
                "full_builds": self._tg_full_builds,
                "incremental_updates": self._tg_incremental,
                "reuses": self._tg_reuses,
                "pairs_reused": self._pairs_reused,
                "pairs_rebuilt": self._pairs_rebuilt,
            },
            "packed": {
                "packs": self._packs,
                "reuses": self._pack_reuses,
            },
        }
