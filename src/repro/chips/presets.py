"""The paper's Table 2: a subset of MOSIS standard chip packages."""

from __future__ import annotations

from typing import Dict

from repro.chips.package import ChipPackage
from repro.errors import ChipError


def mosis_packages() -> Dict[int, ChipPackage]:
    """Table 2 verbatim, keyed by the paper's package number.

    Both packages share a 311.02 x 362.20 mil project area, 25 ns pad
    delay and 297.60 mil^2 pad area; they differ only in pin count (64 vs
    84).
    """
    return {
        1: ChipPackage(
            name="MOSIS-64",
            width_mil=311.02,
            height_mil=362.20,
            pin_count=64,
            pad_delay_ns=25.0,
            pad_area_mil2=297.60,
        ),
        2: ChipPackage(
            name="MOSIS-84",
            width_mil=311.02,
            height_mil=362.20,
            pin_count=84,
            pad_delay_ns=25.0,
            pad_area_mil2=297.60,
        ),
    }


def mosis_package(number: int) -> ChipPackage:
    """One package of Table 2 by its paper number (1 or 2)."""
    packages = mosis_packages()
    if number not in packages:
        raise ChipError(
            f"Table 2 has packages 1 and 2; no package {number}"
        )
    return packages[number]
