"""Tests for the background job queue and cooperative cancellation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import SearchCancelled
from repro.experiments import experiment1_session
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JobQueue,
    QUEUED,
)


@pytest.fixture()
def queue():
    q = JobQueue(workers=1, default_timeout_s=30.0)
    yield q
    q.shutdown()


def _cooperative(should_stop):
    """A job that politely polls its hook, like the search heuristics."""
    for _ in range(1000):
        if should_stop():
            raise SearchCancelled("stopped by hook")
        time.sleep(0.005)
    return "ran to completion"


class TestJobQueue:
    def test_success_lifecycle(self, queue):
        job = queue.submit(lambda should_stop: 42, kind="answer")
        finished = queue.wait(job.id)
        assert finished.state == DONE
        assert finished.result == 42
        doc = finished.to_dict()
        assert doc["kind"] == "answer"
        assert doc["result"] == 42
        assert doc["started_at"] >= doc["submitted_at"]

    def test_failure_captures_error(self, queue):
        def boom(should_stop):
            raise ValueError("bad input")

        job = queue.submit(boom)
        finished = queue.wait(job.id)
        assert finished.state == FAILED
        assert "ValueError: bad input" in finished.error
        assert "result" not in finished.to_dict()

    def test_wall_clock_timeout(self, queue):
        job = queue.submit(_cooperative, timeout_s=0.05)
        finished = queue.wait(job.id)
        assert finished.state == FAILED
        assert "timed out after 0.05 s" in finished.error

    def test_cancel_running_job(self, queue):
        job = queue.submit(_cooperative, timeout_s=30.0)
        # Wait until it is actually running, then cancel.
        deadline = time.monotonic() + 5
        while job.state == QUEUED and time.monotonic() < deadline:
            time.sleep(0.005)
        queue.cancel(job.id)
        finished = queue.wait(job.id)
        assert finished.state == CANCELLED
        assert "cancelled" in finished.error

    def test_cancel_queued_job_never_starts(self, queue):
        release = threading.Event()

        def blocker(should_stop):
            release.wait(10)
            return "done"

        first = queue.submit(blocker)
        second = queue.submit(lambda should_stop: "should not run")
        assert second.state == QUEUED
        queue.cancel(second.id)
        release.set()
        finished = queue.wait(second.id)
        assert finished.state == CANCELLED
        assert second.started_at is None
        assert queue.wait(first.id).state == DONE

    def test_zero_timeout_means_no_deadline(self, queue):
        job = queue.submit(lambda should_stop: should_stop(), timeout_s=0)
        finished = queue.wait(job.id)
        assert finished.state == DONE
        assert finished.result is False  # hook never fires
        assert finished.timeout_s is None

    def test_depth_gauges(self, queue):
        release = threading.Event()

        def blocker(should_stop):
            release.wait(10)

        running = queue.submit(blocker)
        queued = queue.submit(lambda should_stop: None)
        deadline = time.monotonic() + 5
        while running.state == QUEUED and time.monotonic() < deadline:
            time.sleep(0.005)
        depth = queue.depth()
        assert depth["running"] == 1
        assert depth["queued"] == 1
        assert depth["total"] == 2
        release.set()
        queue.wait(queued.id)

    def test_unknown_job(self, queue):
        assert queue.get("job-999") is None
        assert queue.cancel("job-999") is None


class TestSearchCancellationHook:
    """The hook threads all the way into the heuristics."""

    def test_enumeration_cancels_immediately(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        with pytest.raises(SearchCancelled):
            session.check(heuristic="enumeration", cancel=lambda: True)

    def test_iterative_cancels_immediately(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        with pytest.raises(SearchCancelled):
            session.check(heuristic="iterative", cancel=lambda: True)

    def test_no_cancel_still_completes(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        result = session.check(
            heuristic="enumeration", cancel=lambda: False
        )
        assert result.feasible
