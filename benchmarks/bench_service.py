"""Serving-layer throughput: cold vs warm cache checks/sec.

Not a paper table — this measures the subsystem the paper's
interactivity claim (sections 1 and 6) grows into: a designer session
re-checks near-identical partitionings, so the server memoizes verdicts
on the project fingerprint.  The artifact records how many feasibility
checks per second one process answers with a cold cache (every check
runs BAD + search) versus warm (every check is a cache hit).
"""

from __future__ import annotations

import time

from repro.experiments import experiment1_session
from repro.io.project import session_to_dict
from repro.service import ChopService

WARM_REQUESTS = 200


def _cold_check_seconds(doc) -> float:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    started = time.perf_counter()
    service._check(entry, {"heuristic": "iterative"})
    elapsed = time.perf_counter() - started
    service.close()
    return elapsed


def _warm_checks_per_second(doc) -> tuple:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    first = service._check(entry, {"heuristic": "iterative"})
    assert first["cache_hit"] is False
    started = time.perf_counter()
    for _ in range(WARM_REQUESTS):
        response = service._check(entry, {"heuristic": "iterative"})
        assert response["cache_hit"] is True
    elapsed = time.perf_counter() - started
    stats = service.cache.stats()
    service.close()
    return WARM_REQUESTS / elapsed, stats


def test_service_cold_vs_warm_throughput(benchmark, save_artifact):
    doc = session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )
    measurements = {}

    def run():
        cold_s = _cold_check_seconds(doc)
        warm_rate, stats = _warm_checks_per_second(doc)
        measurements.update(
            cold_s=cold_s, warm_rate=warm_rate, stats=stats
        )
        return measurements

    benchmark.pedantic(run, rounds=1, iterations=1)

    cold_rate = 1.0 / measurements["cold_s"]
    warm_rate = measurements["warm_rate"]
    stats = measurements["stats"]
    lines = [
        "Serving-layer check throughput (experiment 1, 2 partitions,",
        "iterative heuristic, one process, in-process dispatch):",
        "",
        f"  cold cache : {cold_rate:10.1f} checks/sec "
        f"({measurements['cold_s'] * 1000:.1f} ms/check)",
        f"  warm cache : {warm_rate:10.1f} checks/sec "
        f"(over {WARM_REQUESTS} requests)",
        f"  speedup    : {warm_rate / cold_rate:10.1f}x",
        "",
        f"  cache hits {stats['hits']}, misses {stats['misses']}, "
        f"hit rate {stats['hit_rate']:.3f}",
    ]
    save_artifact("service_throughput.txt", "\n".join(lines))

    # The whole point of the cache: warm must beat cold clearly.
    assert warm_rate > cold_rate * 2
    assert stats["misses"] == 1
    assert stats["hits"] == WARM_REQUESTS
