"""Plain-text tables in the layout of the paper's Tables 1-6."""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.bad.prediction import DesignPrediction
from repro.chips.package import ChipPackage
from repro.library.library import ComponentLibrary
from repro.search.results import SearchResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width table with a header separator."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        )
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line.rstrip()))
    return "\n".join(lines)


def library_table(library: ComponentLibrary) -> str:
    """The paper's Table 1: the component library."""
    rows: List[Tuple[object, ...]] = []
    for op_type in library.supported_op_types():
        for component in library.components_for(op_type):
            rows.append(
                (
                    component.name,
                    component.op_type.value,
                    component.bit_width,
                    f"{component.area_mil2:g}",
                    f"{component.delay_ns:g}",
                )
            )
    rows.append(("register", "storage", 1,
                 f"{library.register.area_mil2:g}",
                 f"{library.register.delay_ns:g}"))
    rows.append(("mux", "steering", 1,
                 f"{library.mux.area_mil2:g}",
                 f"{library.mux.delay_ns:g}"))
    return format_table(
        ("Module", "Type", "Bits", "Area mil^2", "Delay ns"), rows
    )


def package_table(packages: Mapping[int, ChipPackage]) -> str:
    """The paper's Table 2: the chip packages."""
    rows = [
        (
            number,
            f"{pkg.width_mil:g}",
            f"{pkg.height_mil:g}",
            pkg.pin_count,
            f"{pkg.pad_delay_ns:g}",
            f"{pkg.pad_area_mil2:g}",
        )
        for number, pkg in sorted(packages.items())
    ]
    return format_table(
        ("No", "Width mil", "Height mil", "Pins", "Pad delay ns",
         "Pad area mil^2"),
        rows,
    )


def prediction_stats_table(
    stats: Mapping[int, Tuple[int, int]]
) -> str:
    """The paper's Tables 3 and 5: BAD statistics per partition count.

    ``stats`` maps partition count to (total predictions, feasible
    predictions after level-1 pruning).
    """
    rows = [
        (count, total, feasible)
        for count, (total, feasible) in sorted(stats.items())
    ]
    return format_table(
        ("Partition count", "Total predictions", "Feasible predictions"),
        rows,
    )


def results_table(
    entries: Sequence[Tuple[int, int, str, SearchResult]]
) -> str:
    """The paper's Tables 4 and 6: one block per run, one row per
    non-inferior feasible design.

    ``entries`` holds (partition count, package number, heuristic letter,
    search result) tuples.
    """
    rows: List[Tuple[object, ...]] = []
    for count, package, heuristic, result in entries:
        designs = result.non_inferior()
        if not designs:
            rows.append(
                (count, package, heuristic, f"{result.cpu_seconds:.2f}",
                 result.trials, 0, "-", "-", "-")
            )
            continue
        for index, design in enumerate(designs):
            prefix: Tuple[object, ...]
            if index == 0:
                prefix = (
                    count, package, heuristic,
                    f"{result.cpu_seconds:.2f}", result.trials,
                    result.feasible_trials,
                )
            else:
                prefix = ("", "", "", "", "", "")
            rows.append(
                prefix
                + (
                    design.ii_main,
                    design.delay_main,
                    f"{design.clock_cycle_ns:.0f}",
                )
            )
    return format_table(
        ("Partitions", "Package", "H", "CPU s", "Trials", "Feasible",
         "Initiation interval", "Delay", "Clock ns"),
        rows,
    )
