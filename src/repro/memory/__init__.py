"""Memory modules and bandwidth accounting.

The paper's inputs include "on and off chip memory modules to be used and
assignments of memory modules to chips" (section 2.2); I/O operations are
modelled as memory-mapped I/O (section 2.4), and bandwidth calculations
"take the effects of simultaneous memory I/O on pin usage" into account
(section 2.5).  This package provides the memory-module descriptions and
the per-block bandwidth/port model the integration predictor consumes.
"""

from repro.memory.module import MemoryModule
from repro.memory.access import (
    MemoryAccessProfile,
    memory_access_profile,
    memory_pin_load,
)

__all__ = [
    "MemoryModule",
    "MemoryAccessProfile",
    "memory_access_profile",
    "memory_pin_load",
]
