"""Structured JSONL logging with trace correlation.

One log event is one JSON object on one line — the same convention as
the trace files (:class:`repro.obs.tracing.JsonlSink`), so the two
streams interleave cleanly and share tooling.  Every record carries the
active ``trace_id``/``span_id`` (when a tracer is installed via
:func:`repro.obs.tracing.activate`), so a service log line correlates
with the span tree of the job that produced it.

Configuration is environment-first, matching ``$CHOP_FAULTS`` and
``$CHOP_START_METHOD``:

* ``$CHOP_LOG`` — minimum level: ``debug``, ``info``, ``warning``,
  ``error`` or ``off``.  Unset means ``off``: logging costs one integer
  compare per call site and emits nothing.
* ``$CHOP_LOG_FILE`` — append records to this JSONL file instead of
  stderr.

Programmatic use::

    from repro.obs.logging import configure_logging, get_logger
    configure_logging(level="info", path="server-log.jsonl")
    log = get_logger("service")
    log.info("drain started", jobs_running=3)

Loggers are cheap name-bound views over one shared, lock-protected
configuration; :func:`configure_logging` may be called at any time and
affects every logger immediately.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Callable, Dict, Optional, TextIO

from repro.obs.tracing import current_span_id, current_tracer

LEVELS = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}

LOG_ENV = "CHOP_LOG"
LOG_FILE_ENV = "CHOP_LOG_FILE"


def _level_number(level: str) -> int:
    try:
        return LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; use one of {sorted(LEVELS)}"
        ) from None


class _Config:
    """The process-wide logging configuration (level + sink)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._level = LEVELS["off"]
        self._emit: Callable[[Dict[str, Any]], None] = self._emit_stderr
        self._handle: Optional[TextIO] = None
        self._configured = False

    # -- sinks ---------------------------------------------------------
    def _emit_stderr(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        print(line, file=sys.stderr, flush=True)

    def _emit_file(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            handle = self._handle
            if handle is None or handle.closed:
                return
            handle.write(line + "\n")
            handle.flush()

    # -- configuration -------------------------------------------------
    def configure(
        self,
        level: Optional[str] = None,
        path: Optional[str] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        """Set level and sink; ``None`` falls back to the environment."""
        if level is None:
            level = os.environ.get(LOG_ENV, "off")
        if path is None and stream is None:
            path = os.environ.get(LOG_FILE_ENV) or None
        number = _level_number(level)
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None
            self._level = number
            if path:
                directory = os.path.dirname(os.path.abspath(path))
                os.makedirs(directory, exist_ok=True)
                self._handle = open(path, "a", encoding="utf-8")
                self._emit = self._emit_file
            elif stream is not None:
                def _emit_stream(record: Dict[str, Any]) -> None:
                    print(
                        json.dumps(
                            record, sort_keys=True, default=str
                        ),
                        file=stream,
                        flush=True,
                    )
                self._emit = _emit_stream
            else:
                self._emit = self._emit_stderr
            self._configured = True

    def ensure_configured(self) -> None:
        """Lazy first-use configuration from the environment."""
        with self._lock:
            configured = self._configured
        if not configured:
            self.configure()

    @property
    def level(self) -> int:
        return self._level

    def emit(self, record: Dict[str, Any]) -> None:
        self._emit(record)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None
            self._emit = self._emit_stderr
            self._configured = False
            self._level = LEVELS["off"]


_CONFIG = _Config()


def configure_logging(
    level: Optional[str] = None,
    path: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """(Re)configure the shared logging level and sink.

    ``level=None`` reads ``$CHOP_LOG`` (default ``off``); ``path=None``
    with no ``stream`` reads ``$CHOP_LOG_FILE`` (default stderr).
    """
    _CONFIG.configure(level=level, path=path, stream=stream)


def reset_logging() -> None:
    """Close the sink and return to unconfigured (tests)."""
    _CONFIG.close()


class StructuredLogger:
    """A named view over the shared configuration; create via
    :func:`get_logger`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def is_enabled(self, level: str) -> bool:
        _CONFIG.ensure_configured()
        return _level_number(level) >= _CONFIG.level

    def log(self, level: str, msg: str, **fields: Any) -> None:
        _CONFIG.ensure_configured()
        number = _level_number(level)
        if number < _CONFIG.level:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "msg": msg,
        }
        tracer = current_tracer()
        if tracer is not None:
            record["trace_id"] = tracer.trace_id
            span_id = current_span_id()
            if span_id is not None:
                record["span_id"] = span_id
        if fields:
            record.update(fields)
        _CONFIG.emit(record)

    def debug(self, msg: str, **fields: Any) -> None:
        self.log("debug", msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        self.log("info", msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self.log("warning", msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        self.log("error", msg, **fields)


def get_logger(name: str) -> StructuredLogger:
    """A logger bound to ``name`` over the shared configuration."""
    return StructuredLogger(name)
