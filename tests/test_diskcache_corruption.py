"""Corruption and crash-recovery properties of the disk cache + engine.

The contract under test: *no defective byte sequence on disk can fail a
check* — every corruption is a quarantined miss followed by a clean
rewrite — and *no single worker death can change a result* — the killed
shard's serial retry merges back byte-identical.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import DiskPredictionCache, EvaluationEngine
from repro.experiments import experiment1_session, experiment2_session
from repro.resilience import FAULTS_ENV


@pytest.fixture()
def session():
    return experiment1_session(partition_count=2)


def result_doc(result):
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


class TestCorruptEntries:
    def _stored(self, tmp_path, session):
        cache = DiskPredictionCache(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        cache.store(key, session.export_predictions())
        return cache, key

    def test_truncated_file_is_miss_quarantined_rewritten(
        self, tmp_path, session
    ):
        cache, key = self._stored(tmp_path, session)
        path = cache.path_for(key)
        intact = path.read_bytes()
        path.write_bytes(intact[: len(intact) // 2])

        assert cache.load(key) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.stats()["quarantined"] == 1

        cache.store(key, session.export_predictions())
        assert cache.load(key) is not None

    def test_garbage_bytes_are_a_miss(self, tmp_path, session):
        cache, key = self._stored(tmp_path, session)
        cache.path_for(key).write_bytes(b"\x80\x04garbage" * 7)
        assert cache.load(key) is None
        assert cache.stats()["quarantined"] == 1

    def test_wrong_payload_shape_is_a_miss(self, tmp_path, session):
        cache, key = self._stored(tmp_path, session)
        with cache.path_for(key).open("wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        assert cache.load(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path, session):
        cache, key = self._stored(tmp_path, session)
        payload = {
            "version": cache.version,
            "key": "someone-elses-key",
            "predictions": session.export_predictions(),
        }
        with cache.path_for(key).open("wb") as handle:
            pickle.dump(payload, handle)
        assert cache.load(key) is None

    def test_repeat_corruption_keeps_one_quarantine_file(
        self, tmp_path, session
    ):
        cache, key = self._stored(tmp_path, session)
        for round_no in range(3):
            cache.path_for(key).write_bytes(b"\x00bad%d" % round_no)
            assert cache.load(key) is None
        corrupts = [
            name for name in os.listdir(tmp_path)
            if name.endswith(".corrupt")
        ]
        # os.replace overwrites the single per-key quarantine file, so
        # repeated corruption cannot fill the disk with tombstones.
        assert len(corrupts) == 1
        assert cache.stats()["quarantined"] == 3

    @given(junk=st.binary(min_size=0, max_size=256))
    @settings(max_examples=25, deadline=None)
    def test_any_junk_bytes_degrade_to_a_miss(self, junk):
        import tempfile

        session = experiment1_session(partition_count=2)
        with tempfile.TemporaryDirectory() as tmp:
            cache = DiskPredictionCache(tmp)
            key = cache.key_for("fp", session.library, session.clocks)
            cache.path_for(key).write_bytes(junk)
            # Whatever the bytes, load never raises and never returns
            # junk: either a structurally valid payload was forged
            # (impossible for arbitrary junk this small) or it's a miss.
            assert cache.load(key) is None
            cache.store(key, session.export_predictions())
            assert cache.load(key) is not None


class TestKilledShardProperty:
    @pytest.fixture(scope="class")
    def serial_baseline(self):
        session = experiment2_session(partition_count=3)
        return result_doc(session.check(heuristic="enumeration"))

    @given(shard_index=st.integers(min_value=0, max_value=7))
    @settings(max_examples=5, deadline=None)
    def test_any_killed_shard_merges_byte_identical(
        self, serial_baseline, shard_index
    ):
        """Property: whichever shard dies, the merged result is the
        serial result — recovery is invisible in the output."""
        session = experiment2_session(partition_count=3)
        os.environ[FAULTS_ENV] = f"shard={shard_index}"
        try:
            engine = EvaluationEngine(workers=2, min_combinations=1)
            survived = session.check(
                heuristic="enumeration", engine=engine
            )
        finally:
            os.environ.pop(FAULTS_ENV, None)
        assert result_doc(survived) == serial_baseline
        assert engine.stats()["shards_retried"] >= 1
