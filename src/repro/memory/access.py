"""Memory-access accounting for partitions.

BAD's per-partition results include "memory bandwidth requirements for
each memory block (I/O operations are modeled as memory-mapped I/O)"
(section 2.4).  :func:`memory_access_profile` extracts those requirements
from a partition's operations, and :func:`memory_pin_load` converts a
profile into the pin load a chip sees when the accessed blocks are not
resident on it — the "effects of simultaneous memory I/O on pin usage"
of section 2.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import PartitioningError
from repro.memory.module import MemoryModule


@dataclass(frozen=True, slots=True)
class MemoryAccessProfile:
    """Accesses a set of operations makes against each memory block.

    ``reads``/``writes`` count word accesses per graph execution
    (equivalently per initiation, since the whole process pipelines).
    """

    reads: Mapping[str, int]
    writes: Mapping[str, int]

    @property
    def blocks(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.reads) | set(self.writes)))

    def accesses(self, block: str) -> int:
        """Total word accesses against ``block``."""
        return self.reads.get(block, 0) + self.writes.get(block, 0)

    @property
    def total_accesses(self) -> int:
        return sum(self.reads.values()) + sum(self.writes.values())

    def bandwidth_bits(
        self, modules: Mapping[str, MemoryModule]
    ) -> Dict[str, int]:
        """Bits moved against each block per execution."""
        result: Dict[str, int] = {}
        for block in self.blocks:
            module = modules.get(block)
            if module is None:
                raise PartitioningError(
                    f"operations access unknown memory block {block!r}"
                )
            result[block] = self.accesses(block) * module.width_bits
        return result


def memory_access_profile(
    graph: DataFlowGraph, op_ids: Iterable[str]
) -> MemoryAccessProfile:
    """Profile the memory operations among ``op_ids`` of ``graph``."""
    reads: Dict[str, int] = {}
    writes: Dict[str, int] = {}
    for op_id in op_ids:
        op = graph.operation(op_id)
        if op.op_type is OpType.MEM_READ:
            assert op.memory_block is not None
            reads[op.memory_block] = reads.get(op.memory_block, 0) + 1
        elif op.op_type is OpType.MEM_WRITE:
            assert op.memory_block is not None
            writes[op.memory_block] = writes.get(op.memory_block, 0) + 1
    return MemoryAccessProfile(reads=reads, writes=writes)


def memory_pin_load(
    profile: MemoryAccessProfile,
    modules: Mapping[str, MemoryModule],
    resident_blocks: Iterable[str],
) -> int:
    """Peak pins a chip needs for off-chip memory traffic.

    ``resident_blocks`` are the blocks living on the chip itself (accesses
    to them stay on-die).  Each non-resident accessed block requires its
    full data+address interface on the accessing chip; interfaces are not
    shared between blocks because Select/R-W timing differs per block.
    """
    resident = set(resident_blocks)
    pins = 0
    for block in profile.blocks:
        if block in resident:
            continue
        module = modules.get(block)
        if module is None:
            raise PartitioningError(
                f"operations access unknown memory block {block!r}"
            )
        pins += module.interface_pins()
    return pins
