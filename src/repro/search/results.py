"""Search outcomes.

A :class:`SearchResult` carries everything the paper's Tables 4 and 6
report per run: the heuristic used, CPU time, the number of partitioning
implementation trials, the feasible trials, and the feasible designs'
(initiation interval, delay, clock cycle) rows — plus the recorded design
space when the keep-everything mode was on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.bad.prediction import DesignPrediction
from repro.core.feasibility import FeasibilityReport
from repro.core.integration import SystemPrediction
from repro.search.space import DesignSpace


@dataclass(frozen=True, slots=True)
class FeasibleDesign:
    """One feasible integrated implementation found by a search."""

    selection: Mapping[str, DesignPrediction]
    system: SystemPrediction
    report: FeasibilityReport

    @property
    def ii_main(self) -> int:
        return self.system.ii_main

    @property
    def delay_main(self) -> int:
        return self.system.delay_main

    @property
    def clock_cycle_ns(self) -> float:
        return self.system.clock_cycle_ns.ml

    def row(self) -> Dict[str, object]:
        """One row of the paper's result tables."""
        return {
            "initiation_interval": self.ii_main,
            "delay": self.delay_main,
            "clock_cycle_ns": round(self.clock_cycle_ns, 1),
        }

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable summary of this design (serving layer)."""
        return {
            **self.row(),
            "selection": {
                name: pred.style_label
                for name, pred in sorted(self.selection.items())
            },
            "feasible": self.report.feasible,
        }


@dataclass(slots=True)
class SearchResult:
    """Outcome of one heuristic run over one partitioning."""

    heuristic: str
    trials: int
    feasible: List[FeasibleDesign]
    cpu_seconds: float
    space: Optional[DesignSpace] = None
    #: ``True`` when a soft deadline stopped the search before the full
    #: space was visited — the verdict is a lower bound ("at least these
    #: designs are feasible"), not a complete answer, and must not be
    #: cached as one.
    degraded: bool = False

    @property
    def feasible_trials(self) -> int:
        return len(self.feasible)

    def non_inferior(self) -> List[FeasibleDesign]:
        """Feasible designs not dominated on (II, delay).

        These are the rows the paper's tables print: "the feasible and
        non-inferior predicted designs".
        """
        designs = self.feasible
        kept: List[FeasibleDesign] = []
        for candidate in designs:
            dominated = any(
                (other.ii_main <= candidate.ii_main
                 and other.delay_main <= candidate.delay_main)
                and (other.ii_main < candidate.ii_main
                     or other.delay_main < candidate.delay_main)
                for other in designs
            )
            if not dominated:
                kept.append(candidate)
        unique: Dict[tuple, FeasibleDesign] = {}
        for design in kept:
            unique.setdefault((design.ii_main, design.delay_main), design)
        return sorted(
            unique.values(), key=lambda d: (d.ii_main, d.delay_main)
        )

    def best(self) -> Optional[FeasibleDesign]:
        """The fastest feasible design (II first, then delay)."""
        if not self.feasible:
            return None
        return min(
            self.feasible, key=lambda d: (d.ii_main, d.delay_main)
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable summary (the serving layer's wire format).

        Carries the same per-run numbers as the paper's result tables plus
        the non-inferior rows, so a remote designer session can render the
        verdict without the Python objects.
        """
        best = self.best()
        return {
            "heuristic": self.heuristic,
            "trials": self.trials,
            "feasible_trials": self.feasible_trials,
            "cpu_seconds": round(self.cpu_seconds, 6),
            "feasible": bool(self.feasible),
            "degraded": self.degraded,
            "non_inferior": [d.to_dict() for d in self.non_inferior()],
            "best": best.to_dict() if best is not None else None,
        }
