"""Deterministic merging of per-shard evaluation results.

Workers finish in scheduling-dependent order, but each shard is a
contiguous slice of the serial visit order, so sorting results by shard
start and concatenating their feasible lists is *provably* identical to
the serial enumeration — the property the parallel-equivalence tests
assert byte-for-byte.  The merge also verifies that the shards tile the
combination space exactly; a gap or overlap means an engine bug and
raises :class:`repro.errors.EngineError` rather than silently returning
a wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.engine.sharding import Shard
from repro.errors import EngineError
from repro.search.results import FeasibleDesign


@dataclass(slots=True)
class ShardResult:
    """What one worker hands back for one shard."""

    shard: Shard
    feasible: List[FeasibleDesign]
    trials: int
    elapsed_s: float = 0.0
    #: Set when the shard was re-run serially after a worker death.
    retried: bool = field(default=False)
    #: Finished span records built inside the worker process (traced
    #: runs only); the engine re-parents and replays them on merge.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Which evaluation kernel produced this shard ("scalar" or
    #: "vectorized") — results are byte-identical either way, but the
    #: engine labels its shard-latency histogram with it.
    kernel: str = "scalar"


def merge_shard_results(
    results: Iterable[ShardResult], expected_total: int
) -> Tuple[List[FeasibleDesign], int]:
    """Merge shard results into (feasible designs, trial count).

    ``expected_total`` is the combination-space size; the merged shards
    must tile ``[0, expected_total)`` exactly.
    """
    ordered = sorted(results, key=lambda r: r.shard.start)
    cursor = 0
    feasible: List[FeasibleDesign] = []
    trials = 0
    for result in ordered:
        if result.shard.start != cursor:
            raise EngineError(
                f"shard ranges do not tile the space: expected start "
                f"{cursor}, got [{result.shard.start}, "
                f"{result.shard.stop})"
            )
        cursor = result.shard.stop
        feasible.extend(result.feasible)
        trials += result.trials
    if cursor != expected_total:
        raise EngineError(
            f"shard ranges cover [0, {cursor}) but the space has "
            f"{expected_total} combinations"
        )
    return feasible, trials
