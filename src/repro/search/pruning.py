"""Two-level pruning of predictions (section 2.1 of the paper).

"The partitioning software can be instructed to discard any infeasible or
inferior predicted designs immediately upon detection.  This keeps the
number of eligible predicted designs down, resulting in significantly
faster execution speed and smaller run-time memory requirement."

Level 1 runs before the combination search: per-partition predictions
that can never satisfy the criteria (:func:`level1_prune`) or that are
Pareto-dominated by a sibling (:func:`dominance_filter`) are dropped.
Level 2 happens inside the search loops: combinations are abandoned on
the first violated constraint.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import (
    FeasibilityCriteria,
    prediction_possibly_feasible,
)
from repro.search.pareto import pareto_front

#: Prediction lists at least this long take the vectorized level-1
#: filter (:func:`repro.kernels.level1_keep_mask`); below it the numpy
#: round trip costs more than the scalar comprehension saves.  The mask
#: replicates every scalar comparison bitwise, so the switch is
#: invisible in the results.
LEVEL1_VECTOR_THRESHOLD = 64


def dominance_filter(
    predictions: Sequence[DesignPrediction],
) -> List[DesignPrediction]:
    """Keep only Pareto-optimal predictions on (II, latency, area).

    A prediction dominated in all three dimensions can never appear in a
    best feasible combination: replacing it with its dominator preserves
    every constraint and improves the goal — the paper's "inferior"
    designs.

    This is the shared sort+sweep filter of
    :func:`repro.search.pareto.pareto_front` applied to
    :meth:`DesignPrediction.sort_key` — the same dominance semantics
    (strict, minimizing, ties kept) the design-space explorer uses for
    its (cost, performance, delay, chips) front.  Input order is
    preserved.
    """
    return pareto_front(predictions, key=DesignPrediction.sort_key)


def level1_prune(
    predictions: Sequence[DesignPrediction],
    criteria: FeasibilityCriteria,
    clocks: ClockScheme,
    max_usable_area_mil2: float,
    drop_inferior: bool = True,
) -> List[DesignPrediction]:
    """First-level pruning of one partition's prediction list.

    Drops predictions that cannot satisfy the criteria even with zero
    integration overhead, then (optionally) the Pareto-dominated ones.
    The result keeps the paper's ordering (II, then delay).
    """
    keep = None
    if len(predictions) >= LEVEL1_VECTOR_THRESHOLD:
        try:
            from repro.kernels.batch import level1_keep_mask
        except ImportError:  # numpy absent: the scalar filter is fine
            pass
        else:
            keep = level1_keep_mask(
                predictions, criteria, clocks, max_usable_area_mil2
            )
    if keep is not None:
        feasible = [
            p for p, kept in zip(predictions, keep.tolist()) if kept
        ]
    else:
        feasible = [
            p
            for p in predictions
            if prediction_possibly_feasible(
                p, criteria, clocks, max_usable_area_mil2
            )
        ]
    if drop_inferior:
        feasible = dominance_filter(feasible)
    return sorted(feasible, key=DesignPrediction.sort_key)
