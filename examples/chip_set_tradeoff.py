"""The designer loop: modifying chip sets and partitionings.

Section 2.7 of the paper lists the designer's levers — behavioral
partitions, memory blocks, target chip set, constraints.  This example
plays a short session with CHOP as the "system-level advisor": sweep the
partition count and package, read the feedback, then apply an operation
migration and see its effect.

Run:  python examples/chip_set_tradeoff.py
"""

from __future__ import annotations

from repro.experiments import experiment1_session
from repro.reporting import results_table


def sweep() -> None:
    print("Sweeping partition count x package (experiment-1 settings):")
    entries = []
    for package in (2, 1):
        for count in (1, 2, 3):
            session = experiment1_session(
                package_number=package, partition_count=count
            )
            result = session.check("iterative")
            entries.append((count, package, "I", result))
    print(results_table(entries))
    print()
    print(
        "Reading the table: doubling the chips roughly halves the "
        "initiation interval until chip pins become the bottleneck; the "
        "64-pin package trades pad area against transfer bandwidth."
    )


def migrate() -> None:
    print()
    print("Operation migration (a section-2.7 'behavioral partitions' "
          "modification):")
    session = experiment1_session(package_number=2, partition_count=2)
    before = session.check("iterative").best()
    print(
        f"  before: II {before.ii_main}, delay {before.delay_main}, "
        f"P1 has {len(session.partitioning().partitions['P1'])} ops"
    )

    # Move one boundary operation from P1 to P2 (keeping the data flow
    # one-way: the op's successors must already be in P2).
    pt = session.partitioning()
    graph = session.graph
    movable = [
        op_id
        for op_id in sorted(pt.partitions["P1"].op_ids)
        if all(
            succ in pt.partitions["P2"].op_ids
            for succ in graph.successors(op_id)
        )
    ]
    session.migrate_operations("P1", "P2", movable[:2])
    after_result = session.check("iterative")
    after = after_result.best()
    if after is None:
        print("  after: the modified partitioning is infeasible")
    else:
        print(
            f"  after moving {len(movable[:2])} ops: II {after.ii_main}, "
            f"delay {after.delay_main}, P1 has "
            f"{len(session.partitioning().partitions['P1'])} ops"
        )
    print(
        "  CHOP re-checks a modified partitioning in milliseconds — the "
        "fast-feedback loop the paper builds the methodology around."
    )


def main() -> None:
    sweep()
    migrate()


if __name__ == "__main__":
    main()
