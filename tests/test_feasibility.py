"""Tests for feasibility criteria and level-1 pruning predicate."""

from __future__ import annotations

import pytest

from repro.bad.styles import ClockScheme
from repro.core.feasibility import (
    FeasibilityCriteria,
    prediction_possibly_feasible,
)
from repro.errors import PredictionError


class TestCriteria:
    def test_paper_defaults(self):
        c = FeasibilityCriteria(performance_ns=30_000, delay_ns=30_000)
        assert c.performance_confidence == 1.0
        assert c.area_confidence == 1.0
        assert c.delay_confidence == 0.8

    def test_rejects_non_positive_constraints(self):
        with pytest.raises(PredictionError):
            FeasibilityCriteria(performance_ns=0, delay_ns=1)
        with pytest.raises(PredictionError):
            FeasibilityCriteria(performance_ns=1, delay_ns=-5)

    def test_rejects_bad_confidence(self):
        with pytest.raises(PredictionError):
            FeasibilityCriteria(
                performance_ns=1, delay_ns=1, delay_confidence=0.0
            )
        with pytest.raises(PredictionError):
            FeasibilityCriteria(
                performance_ns=1, delay_ns=1, area_confidence=1.5
            )


class TestLevel1Predicate:
    def test_discards_oversized(self, exp1_predictor, ar_graph,
                                exp1_clocks, exp1_criteria):
        preds = exp1_predictor.predict_partition(ar_graph)
        huge = max(preds, key=lambda p: p.area_total.ub)
        assert not prediction_possibly_feasible(
            huge, exp1_criteria, exp1_clocks,
            max_usable_area_mil2=huge.area_total.ub - 1,
        )

    def test_keeps_fitting_designs(self, exp1_predictor, ar_graph,
                                   exp1_clocks):
        preds = exp1_predictor.predict_partition(ar_graph)
        generous = FeasibilityCriteria(
            performance_ns=10**9, delay_ns=10**9
        )
        small = min(preds, key=lambda p: p.area_total.ub)
        assert prediction_possibly_feasible(
            small, generous, exp1_clocks,
            max_usable_area_mil2=small.area_total.ub + 1,
        )

    def test_discards_slow_initiation(self, exp1_predictor, ar_graph,
                                      exp1_clocks):
        preds = exp1_predictor.predict_partition(ar_graph)
        slow = max(preds, key=lambda p: p.ii_main)
        tight = FeasibilityCriteria(
            performance_ns=slow.ii_main
            * exp1_clocks.main_cycle_ns
            - 1.0,
            delay_ns=10**9,
        )
        assert not prediction_possibly_feasible(
            slow, tight, exp1_clocks, max_usable_area_mil2=10**9
        )

    def test_discards_slow_latency(self, exp1_predictor, ar_graph,
                                   exp1_clocks):
        preds = exp1_predictor.predict_partition(ar_graph)
        slow = max(preds, key=lambda p: p.latency_main)
        tight = FeasibilityCriteria(
            performance_ns=10**9,
            delay_ns=slow.latency_main * exp1_clocks.main_cycle_ns - 1.0,
        )
        assert not prediction_possibly_feasible(
            slow, tight, exp1_clocks, max_usable_area_mil2=10**9
        )

    def test_relaxed_area_confidence_uses_lower_bound(
        self, exp1_predictor, ar_graph, exp1_clocks
    ):
        preds = exp1_predictor.predict_partition(ar_graph)
        pred = preds[len(preds) // 2]
        relaxed = FeasibilityCriteria(
            performance_ns=10**9, delay_ns=10**9, area_confidence=0.5
        )
        # Between lb and ub, the relaxed criterion keeps what the strict
        # one would discard.
        between = (pred.area_total.lb + pred.area_total.ub) / 2
        strict = FeasibilityCriteria(
            performance_ns=10**9, delay_ns=10**9
        )
        assert prediction_possibly_feasible(
            pred, relaxed, exp1_clocks, between
        )
        assert not prediction_possibly_feasible(
            pred, strict, exp1_clocks, between
        )
