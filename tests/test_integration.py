"""Tests for system-integration prediction."""

from __future__ import annotations

import pytest

from repro.chips.chip import Chip
from repro.chips.presets import mosis_package
from repro.core.feasibility import FeasibilityCriteria, evaluate_system
from repro.core.integration import integrate
from repro.core.partitioning import Partitioning
from repro.core.schemes import horizontal_cut, single_partition
from repro.errors import InfeasibleError, PredictionError


def _chips(n, pkg=2):
    return [Chip(f"chip{i+1}", mosis_package(pkg)) for i in range(n)]


@pytest.fixture
def two_way(ar_graph):
    parts = horizontal_cut(ar_graph, 2)
    return Partitioning(
        ar_graph, parts, _chips(2), {"P1": "chip1", "P2": "chip2"}
    )


@pytest.fixture
def predictions(exp1_predictor, ar_graph, two_way):
    return {
        name: exp1_predictor.predict_partition(
            ar_graph, part.op_ids, name=name
        )
        for name, part in two_way.partitions.items()
    }


def _fastest_compatible(preds, l):
    for p in preds:
        if p.pipelined and p.ii_main == l:
            return p
        if not p.pipelined and p.ii_main <= l:
            return p
    return None


class TestIntegrate:
    def test_basic_integration(self, two_way, predictions, exp1_clocks,
                               library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        assert system.ii_main == ii
        assert system.delay_main > max(
            p.latency_main for p in selection.values()
        )
        assert set(system.chip_usage) == {"chip1", "chip2"}
        assert system.clock_cycle_ns.ml > exp1_clocks.main_cycle_ns

    def test_transfer_modules_on_both_sides(self, two_way, predictions,
                                            exp1_clocks, library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        xfer_modules = [
            m for m in system.transfer_modules
            if m.task_name == "xfer:P1->P2"
        ]
        assert {m.mode for m in xfer_modules} == {"input", "output"}
        assert {m.chip for m in xfer_modules} == {"chip1", "chip2"}

    def test_missing_partition_rejected(self, two_way, predictions,
                                        exp1_clocks, library):
        with pytest.raises(PredictionError, match="misses"):
            integrate(
                two_way, {"P1": predictions["P1"][0]}, 100, exp1_clocks,
                library,
            )

    def test_rate_mismatch_rejected(self, two_way, predictions,
                                    exp1_clocks, library):
        pipelined = {
            name: [p for p in preds if p.pipelined]
            for name, preds in predictions.items()
        }
        p1 = pipelined["P1"][0]
        p2 = next(
            (p for p in pipelined["P2"] if p.ii_main != p1.ii_main), None
        )
        if p2 is None:
            pytest.skip("no mismatched pipelined pair available")
        with pytest.raises(InfeasibleError, match="rate mismatch"):
            integrate(
                two_way, {"P1": p1, "P2": p2},
                max(p1.ii_main, p2.ii_main), exp1_clocks, library,
            )

    def test_interval_below_partition_rate_rejected(
        self, two_way, predictions, exp1_clocks, library
    ):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        with pytest.raises(InfeasibleError, match="cannot sustain"):
            integrate(two_way, selection, 1, exp1_clocks, library)

    def test_performance_and_delay_triplets(self, two_way, predictions,
                                            exp1_clocks, library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        assert system.performance_ns.ml == pytest.approx(
            ii * system.clock_cycle_ns.ml
        )
        assert system.delay_ns.ml == pytest.approx(
            system.delay_main * system.clock_cycle_ns.ml
        )
        assert system.performance_ns.lb <= system.performance_ns.ub

    def test_chip_usage_accounts_everything(self, two_way, predictions,
                                            exp1_clocks, library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        for chip, usage in system.chip_usage.items():
            expected = (
                usage.pu_area + usage.dtm_area + usage.pin_mux_area
                + usage.memory_area
            )
            assert usage.total_area.ml == pytest.approx(expected.ml)
            assert usage.usable_area_mil2 > 0
            assert usage.bonded_pins == 84

    def test_same_chip_needs_no_transfer_modules(self, ar_graph,
                                                 exp1_predictor,
                                                 exp1_clocks, library):
        parts = horizontal_cut(ar_graph, 2)
        pt = Partitioning(
            ar_graph, parts, _chips(1), {"P1": "chip1", "P2": "chip1"}
        )
        preds = {
            name: exp1_predictor.predict_partition(
                ar_graph, part.op_ids, name=name
            )
            for name, part in pt.partitions.items()
        }
        selection = {"P1": preds["P1"][-1], "P2": preds["P2"][-1]}
        ii = max(p.ii_main for p in selection.values())
        system = integrate(pt, selection, ii, exp1_clocks, library)
        assert all(
            m.task_name.startswith(("in:", "out:"))
            for m in system.transfer_modules
        )


class TestEvaluate:
    def test_relaxed_criteria_feasible(self, two_way, predictions,
                                       exp1_clocks, library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        generous = FeasibilityCriteria(
            performance_ns=10**9, delay_ns=10**9
        )
        report = evaluate_system(system, generous)
        # Serial implementations easily fit the chips.
        assert report.feasible, [str(c) for c in report.violations()]

    def test_impossible_criteria_infeasible(self, two_way, predictions,
                                            exp1_clocks, library):
        selection = {
            "P1": predictions["P1"][-1],
            "P2": predictions["P2"][-1],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        harsh = FeasibilityCriteria(performance_ns=1.0, delay_ns=1.0)
        report = evaluate_system(system, harsh)
        assert not report.feasible
        names = {c.name for c in report.violations()}
        assert "performance" in names and "delay" in names

    def test_violated_chips_listed(self, two_way, predictions,
                                   exp1_clocks, library):
        # The fastest (largest) implementations overflow the chips.
        selection = {
            "P1": predictions["P1"][0],
            "P2": predictions["P2"][0],
        }
        ii = max(p.ii_main for p in selection.values())
        system = integrate(two_way, selection, ii, exp1_clocks, library)
        criteria = FeasibilityCriteria(
            performance_ns=10**9, delay_ns=10**9
        )
        report = evaluate_system(system, criteria)
        if not report.feasible:
            assert set(report.violated_chips()) <= {"chip1", "chip2"}
