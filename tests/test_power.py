"""Tests for the power-prediction extension (paper section 5)."""

from __future__ import annotations

import pytest

from repro.bad.power import PowerParameters, power_estimate
from repro.core.feasibility import FeasibilityCriteria, evaluate_system
from repro.core.integration import integrate
from repro.errors import PredictionError
from repro.experiments import experiment1_session
from repro.stats import Triplet


class TestPowerModel:
    def test_more_activity_more_power(self):
        low = power_estimate(
            {"mul": 9800.0}, {"mul": 4}, ii_dp=10, dp_cycle_ns=300.0,
            register_bits=64, mux_count=32, controller_terms=12,
            active_area_mil2=20_000.0,
        )
        high = power_estimate(
            {"mul": 9800.0}, {"mul": 16}, ii_dp=10, dp_cycle_ns=300.0,
            register_bits=64, mux_count=32, controller_terms=12,
            active_area_mil2=20_000.0,
        )
        assert high.total_mw.ml > low.total_mw.ml

    def test_slower_rate_less_power(self):
        fast = power_estimate(
            {"mul": 9800.0}, {"mul": 8}, ii_dp=4, dp_cycle_ns=300.0,
            register_bits=64, mux_count=0, controller_terms=8,
            active_area_mil2=15_000.0,
        )
        slow = power_estimate(
            {"mul": 9800.0}, {"mul": 8}, ii_dp=16, dp_cycle_ns=300.0,
            register_bits=64, mux_count=0, controller_terms=8,
            active_area_mil2=15_000.0,
        )
        assert slow.dynamic_mw < fast.dynamic_mw

    def test_static_floor(self):
        estimate = power_estimate(
            {}, {}, ii_dp=10, dp_cycle_ns=300.0,
            register_bits=0, mux_count=0, controller_terms=1,
            active_area_mil2=50_000.0,
        )
        assert estimate.static_mw > 0
        assert estimate.total_mw.ml >= estimate.static_mw

    def test_bounds_ordered(self):
        estimate = power_estimate(
            {"add": 1200.0}, {"add": 3}, ii_dp=5, dp_cycle_ns=300.0,
            register_bits=32, mux_count=16, controller_terms=6,
            active_area_mil2=5_000.0,
        )
        t = estimate.total_mw
        assert t.lb <= t.ml <= t.ub

    def test_rejects_bad_inputs(self):
        with pytest.raises(PredictionError):
            power_estimate({}, {}, ii_dp=0, dp_cycle_ns=300.0,
                           register_bits=0, mux_count=0,
                           controller_terms=0, active_area_mil2=0.0)
        with pytest.raises(PredictionError):
            power_estimate({}, {}, ii_dp=1, dp_cycle_ns=300.0,
                           register_bits=-1, mux_count=0,
                           controller_terms=0, active_area_mil2=0.0)


class TestPredictionPower:
    def test_every_prediction_carries_power(self, exp1_predictor,
                                            ar_graph):
        for pred in exp1_predictor.predict_partition(ar_graph)[:20]:
            assert pred.power_mw.ml > 0

    def test_parallel_designs_burn_more(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        fastest = min(preds, key=lambda p: p.ii_main)
        slowest = max(preds, key=lambda p: p.ii_main)
        assert fastest.power_mw.ml > slowest.power_mw.ml


class TestSystemPower:
    @pytest.fixture(scope="class")
    def feasible_design(self):
        session = experiment1_session(2, 2)
        return session.check("iterative").best()

    def test_chip_and_system_power(self, feasible_design):
        system = feasible_design.system
        total = sum(
            u.power_mw.ml for u in system.chip_usage.values()
        )
        assert system.power_mw.ml == pytest.approx(total)
        assert system.power_mw.ml > 0

    def test_power_constraint_violation_detected(self, feasible_design):
        criteria = FeasibilityCriteria(
            performance_ns=1e9, delay_ns=1e9,
            system_power_mw=feasible_design.system.power_mw.lb / 2,
        )
        report = evaluate_system(feasible_design.system, criteria)
        assert not report.feasible
        assert any(c.name == "power" for c in report.violations())

    def test_chip_power_constraint(self, feasible_design):
        worst_chip = max(
            feasible_design.system.chip_usage.values(),
            key=lambda u: u.power_mw.ml,
        )
        criteria = FeasibilityCriteria(
            performance_ns=1e9, delay_ns=1e9,
            chip_power_mw=worst_chip.power_mw.lb / 2,
        )
        report = evaluate_system(feasible_design.system, criteria)
        assert not report.feasible
        assert any(
            c.name.startswith("power:") for c in report.violations()
        )

    def test_generous_power_constraint_passes(self, feasible_design):
        criteria = FeasibilityCriteria(
            performance_ns=1e9, delay_ns=1e9,
            system_power_mw=feasible_design.system.power_mw.ub * 2,
            chip_power_mw=feasible_design.system.power_mw.ub * 2,
        )
        report = evaluate_system(feasible_design.system, criteria)
        assert report.feasible

    def test_criteria_validation(self):
        with pytest.raises(PredictionError):
            FeasibilityCriteria(
                performance_ns=1, delay_ns=1, system_power_mw=0.0
            )
        with pytest.raises(PredictionError):
            FeasibilityCriteria(
                performance_ns=1, delay_ns=1, power_confidence=1.5
            )
