"""Tests for the graph builder and the random-DFG generators."""

from __future__ import annotations

import pytest

from repro.dfg.builders import (
    GENERATOR_KINDS,
    GraphBuilder,
    fft_butterflies,
    filter_chain,
    generate_dfg,
    random_layered_dag,
)
from repro.dfg.evaluate import evaluate_outputs
from repro.dfg.ops import OpType
from repro.errors import SpecificationError


class TestInputs:
    def test_duplicate_input_rejected(self):
        b = GraphBuilder("g")
        b.input("x")
        with pytest.raises(SpecificationError):
            b.input("x")

    def test_custom_width(self):
        b = GraphBuilder("g", default_width=16)
        b.input("x", width=8)
        y = b.add("x", "x", name="y")
        b.output(y)
        g = b.build()
        assert g.value("x").width == 8
        assert g.value("y").width == 16

    def test_rejects_non_positive_default_width(self):
        with pytest.raises(SpecificationError):
            GraphBuilder("g", default_width=0)


class TestOps:
    def test_undeclared_operand_rejected(self):
        b = GraphBuilder("g")
        with pytest.raises(SpecificationError):
            b.add("ghost", "ghost")

    def test_auto_names_are_unique(self):
        b = GraphBuilder("g")
        x = b.input("x")
        v1 = b.add(x, x)
        v2 = b.add(x, x)
        assert v1 != v2

    def test_named_output_value(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.mul(x, x, name="y")
        assert y == "y"

    def test_duplicate_value_name_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.mul(x, x, name="y")
        with pytest.raises(SpecificationError):
            b.add(x, x, name="y")

    def test_mem_ops(self):
        b = GraphBuilder("g")
        addr = b.input("addr")
        word = b.mem_read(addr, "M1")
        write_id = b.mem_write(word, "M1")
        y = b.add(word, word, name="y")
        b.output(y)
        g = b.build()
        read_op = [o for o in g if o.op_type is OpType.MEM_READ][0]
        write_op = [o for o in g if o.op_type is OpType.MEM_WRITE][0]
        assert read_op.memory_block == "M1"
        assert write_op.output is None
        assert write_op.id == write_id

    def test_sub_wrapper(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.sub(x, x, name="y")
        b.output(y)
        g = b.build()
        assert g.op_counts_by_type()[OpType.SUB] == 1


class TestFinalisation:
    def test_output_of_unknown_value_rejected(self):
        b = GraphBuilder("g")
        with pytest.raises(SpecificationError):
            b.output("ghost")

    def test_builder_single_use(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.add(x, x, name="y")
        b.output(y)
        b.build()
        with pytest.raises(SpecificationError):
            b.add(x, x)
        with pytest.raises(SpecificationError):
            b.build()

    def test_expression_composition(self):
        b = GraphBuilder("g")
        x = b.input("x")
        k = b.input("k")
        y = b.add(b.mul(x, k), b.mul(k, k), name="y")
        b.output(y)
        g = b.build()
        assert g.op_count() == 3
        assert g.depth() == 2


class TestGenerators:
    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    @pytest.mark.parametrize("ops", [100, 500])
    def test_op_counts_land_near_the_request(self, kind, ops):
        graph = generate_dfg(kind, ops, seed=1)
        # layered hits exactly; chain rounds to a multiple of 4;
        # butterfly picks the largest FFT mesh that fits
        assert 0 < graph.op_count() <= ops * 2
        if kind == "layered":
            assert graph.op_count() == ops
        if kind == "chain":
            assert graph.op_count() == (ops // 4) * 4
        if kind == "butterfly":
            assert graph.op_count() <= ops

    @pytest.mark.parametrize("kind", GENERATOR_KINDS)
    def test_generated_graphs_are_valid_and_evaluable(self, kind):
        graph = generate_dfg(kind, 120, seed=2)
        graph.topological_order()  # raises on a cycle
        assert graph.primary_outputs(), "graph must expose outputs"
        inputs = {
            v.id: 3 + i for i, v in enumerate(
                sorted(graph.primary_inputs(), key=lambda v: v.id)
            )
        }
        outputs = evaluate_outputs(graph, inputs)
        assert outputs

    def test_layered_is_deterministic_per_seed(self):
        a = random_layered_dag(200, seed=5)
        b = random_layered_dag(200, seed=5)
        assert sorted(a.operations) == sorted(b.operations)
        assert {
            (op.id, op.op_type, op.inputs) for op in a
        } == {(op.id, op.op_type, op.inputs) for op in b}

    def test_layered_seed_changes_the_wiring(self):
        a = random_layered_dag(200, seed=5)
        b = random_layered_dag(200, seed=6)
        assert {
            (op.id, op.inputs) for op in a
        } != {(op.id, op.inputs) for op in b}

    def test_chain_op_count_formula(self):
        assert filter_chain(7).op_count() == 28

    def test_butterfly_respects_the_budget(self):
        graph = fft_butterflies(1000)
        assert 10 <= graph.op_count() <= 1000

    def test_generators_reject_bad_requests(self):
        with pytest.raises(SpecificationError):
            generate_dfg("mystery", 100)
        with pytest.raises(SpecificationError):
            random_layered_dag(0)
        with pytest.raises(SpecificationError):
            filter_chain(0)
        with pytest.raises(SpecificationError):
            fft_butterflies(5)
