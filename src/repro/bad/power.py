"""Power prediction — the paper's first extension target.

"The partitioning methodology currently works with area, delay,
performance and pin count characteristics and needs to be extended to
include power consumption constraints" (paper section 5).  This module
supplies that extension with a 3-micron CMOS rate model:

* each functional unit burns energy per activation; its average power is
  the activation energy times its utilization (busy cycles per
  initiation interval over the cycle time);
* storage (registers, muxes) and the controller burn power proportional
  to their cell counts and the clock rate;
* a static leakage floor scales with active area.

Absolute milliwatts are synthetic (no power data is published for the
Table 1 library); the *orderings* — parallel implementations burn more
power at higher utilization, serial ones less — are what the extended
feasibility analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import PredictionError
from repro.stats import Triplet


@dataclass(frozen=True, slots=True)
class PowerParameters:
    """Technology constants for the power model (3-micron defaults)."""

    #: Switching energy per mil^2 of active component area per
    #: activation, in pJ/mil^2 (3-micron gates at 5 V).
    switching_pj_per_mil2: float = 2.4
    #: Register/mux cell switching energy per bit per cycle, pJ.
    storage_pj_per_bit: float = 0.35
    #: Controller switching energy per product term per cycle, pJ.
    pla_pj_per_term: float = 0.8
    #: Static (leakage + bias) power per mil^2 of active area, in uW.
    static_uw_per_mil2: float = 0.015
    #: Relative uncertainty bounds on the total.
    rel_lb: float = 0.80
    rel_ub: float = 1.30


@dataclass(frozen=True, slots=True)
class PowerEstimate:
    """Predicted average power of one design, in milliwatts."""

    dynamic_mw: float
    static_mw: float
    total_mw: Triplet

    @property
    def most_likely_mw(self) -> float:
        return self.total_mw.ml


def power_estimate(
    functional_area_by_class: Mapping[str, float],
    busy_cycles_by_class: Mapping[str, int],
    ii_dp: int,
    dp_cycle_ns: float,
    register_bits: int,
    mux_count: int,
    controller_terms: int,
    active_area_mil2: float,
    params: PowerParameters = PowerParameters(),
) -> PowerEstimate:
    """Average power of one predicted implementation.

    ``functional_area_by_class`` is the *per-unit* area of each resource
    class (one unit's area); ``busy_cycles_by_class`` the unit-cycles
    that class executes per iteration.  With one iteration every
    ``ii_dp`` datapath cycles of ``dp_cycle_ns``, the class's switching
    power is ``energy_per_activation * busy / (ii_dp * cycle)``.
    """
    if ii_dp <= 0 or dp_cycle_ns <= 0:
        raise PredictionError(
            "power model needs a positive interval and cycle time"
        )
    if register_bits < 0 or mux_count < 0 or controller_terms < 0:
        raise PredictionError("power model inputs must be non-negative")
    iteration_ns = ii_dp * dp_cycle_ns

    dynamic_pj_per_iteration = 0.0
    for cls, unit_area in functional_area_by_class.items():
        busy = busy_cycles_by_class.get(cls, 0)
        if unit_area < 0 or busy < 0:
            raise PredictionError(
                f"class {cls!r}: negative area or busy cycles"
            )
        # One activation per busy cycle of one unit.
        dynamic_pj_per_iteration += (
            params.switching_pj_per_mil2 * unit_area * busy
        )
    # Storage and control switch every datapath cycle of the iteration.
    dynamic_pj_per_iteration += (
        params.storage_pj_per_bit * (register_bits + mux_count) * ii_dp
    )
    dynamic_pj_per_iteration += (
        params.pla_pj_per_term * controller_terms * ii_dp
    )

    # pJ per ns = mW.
    dynamic_mw = dynamic_pj_per_iteration / iteration_ns
    static_mw = params.static_uw_per_mil2 * active_area_mil2 / 1000.0
    total = Triplet.spread(
        dynamic_mw + static_mw, params.rel_lb, params.rel_ub
    )
    return PowerEstimate(
        dynamic_mw=dynamic_mw, static_mw=static_mw, total_mw=total
    )
