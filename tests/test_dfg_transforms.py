"""Tests for validation and loop unrolling."""

from __future__ import annotations

import pytest

from repro.dfg.builders import GraphBuilder
from repro.dfg.transforms import unroll_loop, validate_graph
from repro.errors import SpecificationError


class TestUnrollLoop:
    def test_unrolls_requested_count(self):
        b = GraphBuilder("acc")
        x = b.input("x")
        acc0 = b.input("acc0")

        def body(bld, i, carried):
            return {"acc": bld.add(carried["acc"], x)}

        final = unroll_loop(b, 5, {"acc": acc0}, body)
        b.output(final["acc"])
        g = b.build()
        assert g.op_count() == 5
        assert g.depth() == 5

    def test_zero_iterations_is_identity(self):
        b = GraphBuilder("acc")
        x = b.input("x")
        final = unroll_loop(b, 0, {"acc": x}, lambda *_: {})
        assert final == {"acc": x}

    def test_rejects_negative_count(self):
        b = GraphBuilder("acc")
        x = b.input("x")
        with pytest.raises(SpecificationError):
            unroll_loop(b, -1, {"acc": x}, lambda *_: {})

    def test_rejects_changed_variable_set(self):
        b = GraphBuilder("acc")
        x = b.input("x")

        def bad_body(bld, i, carried):
            return {"other": x}

        with pytest.raises(SpecificationError, match="carried-variable"):
            unroll_loop(b, 2, {"acc": x}, bad_body)

    def test_body_sees_iteration_index(self):
        b = GraphBuilder("acc")
        x = b.input("x")
        seen = []

        def body(bld, i, carried):
            seen.append(i)
            return {"acc": bld.add(carried["acc"], x)}

        unroll_loop(b, 3, {"acc": x}, body)
        assert seen == [0, 1, 2]

    def test_multiple_carried_variables(self):
        b = GraphBuilder("fib-ish")
        a0 = b.input("a0")
        b0 = b.input("b0")

        def body(bld, i, carried):
            return {
                "a": carried["b"],
                "b": bld.add(carried["a"], carried["b"]),
            }

        final = unroll_loop(b, 4, {"a": a0, "b": b0}, body)
        b.output(final["b"])
        g = b.build()
        assert g.op_count() == 4


class TestValidateGraph:
    def test_clean_benchmarks_validate(self, ar_graph, ewf_graph,
                                        fir_graph, diffeq_graph):
        for g in (ar_graph, ewf_graph, fir_graph, diffeq_graph):
            assert validate_graph(g) == []

    def test_dangling_input_reported(self):
        b = GraphBuilder("g")
        b.input("unused")
        x = b.input("x")
        y = b.add(x, x, name="y")
        b.output(y)
        problems = validate_graph(b.build())
        assert any("unused" in p for p in problems)

    def test_dead_value_reported(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.add(x, x, name="dead")
        y = b.mul(x, x, name="y")
        b.output(y)
        problems = validate_graph(b.build())
        assert any("dead" in p for p in problems)

    def test_missing_outputs_reported(self):
        b = GraphBuilder("g")
        x = b.input("x")
        v = b.add(x, x)
        b2 = GraphBuilder("consume")
        # Build a graph where the only value is consumed internally and
        # nothing is an output.
        y = b.mul(v, x)  # y unconsumed and not marked output
        g = b.build()
        problems = validate_graph(g)
        assert any("no primary outputs" in p for p in problems)
