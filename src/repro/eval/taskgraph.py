"""Incremental task-graph construction.

:func:`repro.core.tasks.build_task_graph` derives a task graph from a
partitioning by walking every value of the data-flow graph (cut
detection), every primary input/output, and every partition's memory
operations.  Inside the designer loop that walk is almost entirely
wasted: a single ``migrate_operations`` between two partitions changes
only the tasks incident to those two partitions.

This module splits the derivation into *ingredients* — per-partition
input/output bit totals and the per-pair cut-bit map — that can be
updated for a dirty subset of partitions in O(ops in dirty partitions),
plus a cheap :func:`assemble_task_graph` that turns ingredients into a
:class:`~repro.core.tasks.TaskGraph` byte-identically to the from-scratch
builder (same task dict order, same edge list order, same pin loads).
The identity is load-bearing — search results must not depend on whether
the graph came from the incremental or the full path — and is enforced
by the property tests in ``tests/test_eval_taskgraph.py``.

Chip assignments and memory placement are deliberately *not* part of the
ingredients: ``input_bits``/``output_bits``/``pair_bits`` depend only on
partition membership, while the task-vs-precedence-edge decision and the
per-chip memory pin loads are recomputed during assembly (which is
O(partitions + pairs), not O(values)).  A ``move_partition`` or
``assign_memory`` therefore costs one assembly, never a re-walk of the
data-flow graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Set, Tuple

from repro.core.partitioning import Partitioning
from repro.core.tasks import TaskGraph, TaskKind, TransferTask
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError
from repro.memory.access import MemoryAccessProfile


@dataclass
class TaskGraphIngredients:
    """Membership-derived inputs of a task graph, updatable per partition.

    ``input_bits``/``output_bits`` hold only partitions with non-zero
    totals (matching the builder, which never creates empty IO tasks);
    ``pair_bits`` maps (producer partition, consumer partition) to the
    cut bit width, for distinct partitions only.
    """

    input_bits: Dict[str, int] = field(default_factory=dict)
    output_bits: Dict[str, int] = field(default_factory=dict)
    pair_bits: Dict[Tuple[str, str], int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# per-partition ingredient computation
# ----------------------------------------------------------------------
def _partition_input_bits(graph: DataFlowGraph, op_ids: Iterable[str]) -> int:
    """Bits of distinct primary-input values consumed by these ops."""
    seen: Set[str] = set()
    total = 0
    operations = graph.operations
    values = graph.values
    for op_id in op_ids:
        for vid in operations[op_id].inputs:
            if vid in seen:
                continue
            value = values[vid]
            if value.producer is None:
                seen.add(vid)
                total += value.width
    return total


def _partition_output_bits(graph: DataFlowGraph, op_ids: Iterable[str]) -> int:
    """Bits of primary-output values produced by these ops."""
    total = 0
    operations = graph.operations
    values = graph.values
    for op_id in op_ids:
        out = operations[op_id].output
        if out is None:
            continue
        value = values[out]
        if value.is_output:
            total += value.width
    return total


def _add_pairs_from_source(
    graph: DataFlowGraph,
    partition_of: Dict[str, str],
    name: str,
    op_ids: Iterable[str],
    pair_bits: Dict[Tuple[str, str], int],
) -> None:
    """Credit every cut value produced inside partition ``name``.

    Mirrors :meth:`DataFlowGraph.cut_values` semantics exactly: each
    value counts its width once per *distinct* consuming partition.
    """
    operations = graph.operations
    values = graph.values
    for op_id in op_ids:
        out = operations[op_id].output
        if out is None:
            continue
        dests: Set[str] = set()
        for consumer in graph.consumers(out):
            dst = partition_of[consumer]
            if dst != name:
                dests.add(dst)
        if not dests:
            continue
        width = values[out].width
        for dst in dests:
            key = (name, dst)
            pair_bits[key] = pair_bits.get(key, 0) + width


def _add_pairs_into_destination(
    graph: DataFlowGraph,
    partition_of: Dict[str, str],
    name: str,
    op_ids: Iterable[str],
    skip_sources: Set[str],
    pair_bits: Dict[Tuple[str, str], int],
) -> None:
    """Credit cut values flowing *into* partition ``name``.

    ``skip_sources`` are partitions whose outgoing pairs were already
    recomputed by :func:`_add_pairs_from_source` — crediting them here
    would double count.  A value consumed by several ops of the same
    destination partition still counts once (the ``seen`` guard plays
    the role of the distinct-destination set on the producing side).
    """
    operations = graph.operations
    values = graph.values
    seen: Set[str] = set()
    for op_id in op_ids:
        for vid in operations[op_id].inputs:
            if vid in seen:
                continue
            value = values[vid]
            if value.producer is None:
                continue
            src = partition_of[value.producer]
            if src == name or src in skip_sources:
                continue
            seen.add(vid)
            key = (src, name)
            pair_bits[key] = pair_bits.get(key, 0) + value.width


# ----------------------------------------------------------------------
# full build and incremental update
# ----------------------------------------------------------------------
def full_ingredients(partitioning: Partitioning) -> TaskGraphIngredients:
    """Compute every ingredient from scratch (the cold path)."""
    graph = partitioning.graph
    partition_of = partitioning.partition_map()
    ingredients = TaskGraphIngredients()
    for name, partition in partitioning.partitions.items():
        in_bits = _partition_input_bits(graph, partition.op_ids)
        if in_bits:
            ingredients.input_bits[name] = in_bits
        out_bits = _partition_output_bits(graph, partition.op_ids)
        if out_bits:
            ingredients.output_bits[name] = out_bits
        _add_pairs_from_source(
            graph, partition_of, name, partition.op_ids,
            ingredients.pair_bits,
        )
    return ingredients


def update_ingredients(
    partitioning: Partitioning,
    old: TaskGraphIngredients,
    dirty: Set[str],
    removed: Set[str],
) -> Tuple[TaskGraphIngredients, int, int]:
    """Rebuild only the entries incident to ``dirty`` partitions.

    ``dirty`` are partitions whose *membership* changed (or that are
    new); ``removed`` are partitions that no longer exist.  Any pair with
    both endpoints clean is reused untouched — a value whose producer
    and consumers all kept their partitions cannot change its cut
    contribution.  Returns ``(ingredients, pairs_reused, pairs_rebuilt)``
    for the trace span's delta counters.
    """
    graph = partitioning.graph
    partition_of = partitioning.partition_map()
    drop = dirty | removed
    fresh = TaskGraphIngredients(
        input_bits={
            k: v for k, v in old.input_bits.items() if k not in drop
        },
        output_bits={
            k: v for k, v in old.output_bits.items() if k not in drop
        },
        pair_bits={
            k: v
            for k, v in old.pair_bits.items()
            if k[0] not in drop and k[1] not in drop
        },
    )
    pairs_reused = len(fresh.pair_bits)
    for name in sorted(dirty):
        partition = partitioning.partitions.get(name)
        if partition is None:
            continue  # marked dirty but also gone: nothing to rebuild
        in_bits = _partition_input_bits(graph, partition.op_ids)
        if in_bits:
            fresh.input_bits[name] = in_bits
        out_bits = _partition_output_bits(graph, partition.op_ids)
        if out_bits:
            fresh.output_bits[name] = out_bits
        _add_pairs_from_source(
            graph, partition_of, name, partition.op_ids, fresh.pair_bits
        )
    for name in sorted(dirty):
        partition = partitioning.partitions.get(name)
        if partition is None:
            continue
        _add_pairs_into_destination(
            graph, partition_of, name, partition.op_ids, dirty,
            fresh.pair_bits,
        )
    pairs_rebuilt = len(fresh.pair_bits) - pairs_reused
    return fresh, pairs_reused, pairs_rebuilt


# ----------------------------------------------------------------------
# assembly
# ----------------------------------------------------------------------
def assemble_task_graph(
    partitioning: Partitioning,
    ingredients: TaskGraphIngredients,
    profile_for: Callable[[str], MemoryAccessProfile],
) -> TaskGraph:
    """Turn ingredients into a :class:`TaskGraph`.

    Replicates :func:`repro.core.tasks.build_task_graph` construction
    order exactly — PU tasks in partition insertion order, then input /
    transfer / output tasks each in sorted key order — so the resulting
    graph (task dict order, edge list order, pin loads) is
    indistinguishable from a from-scratch build.  ``profile_for``
    supplies each partition's (cached) memory access profile.
    """
    tasks: Dict[str, TransferTask] = {}
    edges = []

    for name in partitioning.partitions:
        tasks[f"pu:{name}"] = TransferTask(
            name=f"pu:{name}",
            kind=TaskKind.PROCESS,
            bits=0,
            chips=(),
            partition=name,
        )

    for partition, bits in sorted(ingredients.input_bits.items()):
        name = f"in:{partition}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.INPUT,
            bits=bits,
            chips=(partitioning.chip_of(partition),),
            partition=partition,
        )
        edges.append((name, f"pu:{partition}"))

    for (src, dst), bits in sorted(ingredients.pair_bits.items()):
        src_chip = partitioning.chip_of(src)
        dst_chip = partitioning.chip_of(dst)
        if src_chip == dst_chip:
            edges.append((f"pu:{src}", f"pu:{dst}"))
            continue
        name = f"xfer:{src}->{dst}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.TRANSFER,
            bits=bits,
            chips=(src_chip, dst_chip),
            partition=src,
        )
        edges.append((f"pu:{src}", name))
        edges.append((name, f"pu:{dst}"))

    for partition, bits in sorted(ingredients.output_bits.items()):
        name = f"out:{partition}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.OUTPUT,
            bits=bits,
            chips=(partitioning.chip_of(partition),),
            partition=partition,
        )
        edges.append((f"pu:{partition}", name))

    memory_pin_loads = _memory_pin_loads_from_profiles(
        partitioning, profile_for
    )
    return TaskGraph(
        tasks=tasks, edges=edges, memory_pin_loads=memory_pin_loads
    )


def _memory_pin_loads_from_profiles(
    partitioning: Partitioning,
    profile_for: Callable[[str], MemoryAccessProfile],
) -> Dict[str, int]:
    """Per-chip memory pin loads from cached access profiles.

    Semantically identical to
    :func:`repro.core.tasks._memory_pin_loads` but with the per-op
    profile walk replaced by a lookup — both sides of an off-chip access
    to a non-off-the-shelf block still pay the interface.
    """
    interfaces: Dict[str, Set[str]] = {
        chip: set() for chip in partitioning.chips
    }
    for name in partitioning.partitions:
        chip = partitioning.chip_of(name)
        profile = profile_for(name)
        if not profile.blocks:
            continue
        resident = set(partitioning.memories_on_chip(chip))
        for block in profile.blocks:
            if block in resident:
                continue
            if block not in partitioning.memories:
                raise PartitioningError(
                    f"operations access undeclared memory block {block!r}"
                )
            interfaces[chip].add(block)
            module = partitioning.memories[block]
            host = partitioning.memory_chip.get(block)
            if host is not None and not module.off_the_shelf:
                interfaces[host].add(block)
    loads: Dict[str, int] = {chip: 0 for chip in partitioning.chips}
    for chip, blocks in interfaces.items():
        loads[chip] = sum(
            partitioning.memories[block].interface_pins()
            for block in blocks
        )
    return loads
