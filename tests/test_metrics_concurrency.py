"""Concurrency and percentile tests for the service metrics."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.metrics import (
    OVERFLOW_ROUTE,
    Metrics,
    percentile,
    status_class,
)


class TestPercentile:
    def test_interpolates_between_ranks(self):
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.75

    def test_endpoints_and_single_sample(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0
        assert percentile(samples, 50) == 3.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 95) == 7.0

    def test_out_of_range_q_clamps(self):
        assert percentile([1.0, 2.0], -10) == 1.0
        assert percentile([1.0, 2.0], 500) == 2.0

    def test_unsorted_input(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5


class TestMetricsConcurrency:
    def test_concurrent_observe_and_snapshot_stay_consistent(self):
        """8 threads hammer observe() while snapshots run concurrently;
        totals must be exact and snapshots internally consistent."""
        metrics = Metrics()
        threads_n, per_thread = 8, 500
        barrier = threading.Barrier(threads_n + 1)
        errors = []

        def writer(index):
            try:
                barrier.wait(10)
                for i in range(per_thread):
                    metrics.observe(
                        f"GET /route{index % 2}", 0.001 * (i + 1), 200
                    )
            except Exception as exc:  # noqa: BLE001 — collect for assert
                errors.append(exc)

        def reader():
            try:
                barrier.wait(10)
                for _ in range(50):
                    snap = metrics.snapshot()
                    # A snapshot must always be internally consistent:
                    # the route counts sum to the grand total.
                    total = sum(
                        doc["count"] for doc in snap["routes"].values()
                    )
                    assert total == snap["requests_total"]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads_n)
        ]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)

        assert not errors
        snap = metrics.snapshot()
        assert snap["requests_total"] == threads_n * per_thread
        assert snap["responses_by_status"] == {
            "200": threads_n * per_thread
        }
        assert sum(
            doc["count"] for doc in snap["routes"].values()
        ) == threads_n * per_thread
        for doc in snap["routes"].values():
            assert doc["latency_ms"]["p95"] >= doc["latency_ms"]["p50"]

    def test_gauge_suppliers_run_outside_the_metrics_lock(self):
        """A supplier that takes the metrics lock itself must not
        deadlock — snapshot() promises to call suppliers unlocked."""
        metrics = Metrics()
        acquired = []

        def supplier():
            # Would time out if snapshot() held the (non-reentrant)
            # lock while invoking us.
            got = metrics._lock.acquire(timeout=2)
            acquired.append(got)
            if got:
                metrics._lock.release()
            # The canonical re-entrancy hazard: a supplier recording a
            # metric of its own.
            metrics.observe("supplier /self", 0.001, 200)
            return {"ok": True}

        metrics.register_gauges("probe", supplier)
        snap = metrics.snapshot()
        assert acquired == [True]
        assert snap["probe"] == {"ok": True}
        # The supplier's own observe landed for the next snapshot.
        assert metrics.snapshot()["requests_total"] == 1


class TestBoundedRetention:
    def test_sample_window_is_bounded_per_route(self):
        metrics = Metrics(
            registry=MetricsRegistry(), max_samples=16
        )
        for i in range(100):
            metrics.observe("GET /x", float(i), 200)
        assert len(metrics._latencies["GET /x"]) == 16
        snap = metrics.snapshot()
        # Counts keep the full total; percentiles use the window.
        assert snap["routes"]["GET /x"]["count"] == 100
        assert snap["routes"]["GET /x"]["latency_ms"]["p50"] >= 84000

    def test_route_cardinality_capped_with_overflow_label(self):
        metrics = Metrics(registry=MetricsRegistry(), max_routes=4)
        for i in range(10):
            metrics.observe(f"GET /junk{i}", 0.001, 404)
        snap = metrics.snapshot()
        # max_routes distinct labels plus the overflow bucket.
        assert len(snap["routes"]) == 5
        assert OVERFLOW_ROUTE in snap["routes"]
        assert snap["routes"][OVERFLOW_ROUTE]["count"] == 6
        assert snap["requests_total"] == 10
        # A known route keeps its own label even at the cap.
        metrics.observe("GET /junk0", 0.001, 404)
        assert metrics.snapshot()["routes"]["GET /junk0"]["count"] == 2

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Metrics(registry=MetricsRegistry(), max_samples=0)
        with pytest.raises(ValueError):
            Metrics(registry=MetricsRegistry(), max_routes=0)


class TestRegistryMirror:
    def test_observe_lands_in_registry_families(self):
        registry = MetricsRegistry()
        metrics = Metrics(registry=registry)
        metrics.observe("GET /x", 0.02, 200, trace_id="t-1")
        metrics.observe("GET /x", 0.04, 500)
        assert registry.get("requests_total").value == 2
        responses = {
            s["labels"]["status"]: s["value"]
            for s in registry.get("responses_total").samples()
        }
        assert responses == {"200": 1, "500": 1}
        latency = registry.get("request_latency_seconds")
        counts, total, _ = latency.aggregate(
            where={"route": "GET /x"}
        )
        assert total == 2
        ok_sample = next(
            s
            for s in latency.samples()
            if s["labels"]["class"] == "2xx"
        )
        assert ok_sample["exemplar"]["trace_id"] == "t-1"

    def test_status_class(self):
        assert status_class(200) == "2xx"
        assert status_class(404) == "4xx"
        assert status_class(503) == "5xx"

    def test_register_gauges_mirrors_to_registry_stats(self):
        registry = MetricsRegistry()
        metrics = Metrics(registry=registry)
        metrics.register_gauges("cache", lambda: {"hits": 5})
        docs = {d["name"]: d for d in registry.collect()}
        assert docs["cache_hits"]["samples"][0]["value"] == 5.0
