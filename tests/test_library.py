"""Tests for components, cells and libraries."""

from __future__ import annotations

import pytest

from repro.dfg.ops import OpType
from repro.errors import LibraryError
from repro.library.component import Cell, Component
from repro.library.library import ComponentLibrary, ModuleSet
from repro.library.presets import extended_library, table1_library


class TestComponent:
    def test_area_scaling(self):
        c = Component("add1", OpType.ADD, 16, 4200.0, 34.0)
        assert c.area_for_width(8) == pytest.approx(2100.0)
        assert c.area_for_width(32) == pytest.approx(8400.0)

    def test_rejects_bad_values(self):
        with pytest.raises(LibraryError):
            Component("x", OpType.ADD, 0, 1.0, 1.0)
        with pytest.raises(LibraryError):
            Component("x", OpType.ADD, 16, -1.0, 1.0)
        with pytest.raises(LibraryError):
            Component("x", OpType.ADD, 16, 1.0, 0.0)

    def test_rejects_bad_width_request(self):
        c = Component("add1", OpType.ADD, 16, 4200.0, 34.0)
        with pytest.raises(LibraryError):
            c.area_for_width(0)


class TestCell:
    def test_area_for_bits(self):
        register = Cell("register", 31.0, 5.0)
        assert register.area_for_bits(104) == pytest.approx(3224.0)
        assert register.area_for_bits(0) == 0.0

    def test_rejects_negative_bits(self):
        with pytest.raises(LibraryError):
            Cell("register", 31.0, 5.0).area_for_bits(-1)

    def test_rejects_bad_cell(self):
        with pytest.raises(LibraryError):
            Cell("bad", 0.0, 5.0)


class TestTable1Library:
    def test_exact_paper_values(self, library):
        assert library.component_named("add1").area_mil2 == 4200.0
        assert library.component_named("add2").delay_ns == 53.0
        assert library.component_named("add3").area_mil2 == 1200.0
        assert library.component_named("mul1").area_mil2 == 49000.0
        assert library.component_named("mul2").delay_ns == 2950.0
        assert library.component_named("mul3").delay_ns == 7370.0
        assert library.register.area_mil2 == 31.0
        assert library.register.delay_ns == 5.0
        assert library.mux.area_mil2 == 18.0
        assert library.mux.delay_ns == 4.0

    def test_components_sorted_fastest_first(self, library):
        adders = library.components_for(OpType.ADD)
        delays = [c.delay_ns for c in adders]
        assert delays == sorted(delays)

    def test_unknown_type_raises(self, library):
        with pytest.raises(LibraryError):
            library.components_for(OpType.DIV)

    def test_unknown_name_raises(self, library):
        with pytest.raises(LibraryError):
            library.component_named("add99")

    def test_len(self, library):
        assert len(library) == 6


class TestModuleSets:
    def test_nine_sets_for_add_and_mul(self, library):
        sets = library.module_sets([OpType.ADD, OpType.MUL])
        assert len(sets) == 9  # the paper's "up to 9 module-set configs"

    def test_delay_filter_excludes_slow_modules(self, library):
        # At a 3000 ns datapath cycle, mul3 (7370 ns) cannot be used
        # single-cycle.
        sets = library.module_sets(
            [OpType.ADD, OpType.MUL], max_delay_ns=3000.0
        )
        assert len(sets) == 6
        assert all(
            s.component(OpType.MUL).name != "mul3" for s in sets
        )

    def test_delay_filter_all_excluded_raises(self, library):
        with pytest.raises(LibraryError):
            library.module_sets([OpType.MUL], max_delay_ns=100.0)

    def test_module_set_label(self, library):
        sets = library.module_sets([OpType.ADD])
        assert {s.label for s in sets} == {"add1", "add2", "add3"}

    def test_module_set_missing_type(self, library):
        (s,) = library.module_sets([OpType.ADD], max_delay_ns=40.0)
        with pytest.raises(LibraryError):
            s.component(OpType.MUL)

    def test_max_delay_property(self, library):
        sets = library.module_sets([OpType.ADD, OpType.MUL])
        for s in sets:
            assert s.max_delay_ns() == max(
                s.component(OpType.ADD).delay_ns,
                s.component(OpType.MUL).delay_ns,
            )


class TestExtendedLibrary:
    def test_has_all_table1_components(self, big_library, library):
        for name in ("add1", "add2", "add3", "mul1", "mul2", "mul3"):
            assert (
                big_library.component_named(name)
                == library.component_named(name)
            )

    def test_supports_benchmark_types(self, big_library):
        for op_type in (OpType.SUB, OpType.COMPARE, OpType.SHIFT,
                        OpType.AND, OpType.OR, OpType.DIV):
            assert big_library.components_for(op_type)

    def test_duplicate_name_rejected(self, library):
        c = library.component_named("add1")
        with pytest.raises(LibraryError):
            ComponentLibrary(
                "dup", [c, c], library.register, library.mux
            )

    def test_non_compute_component_rejected(self, library):
        from repro.library.component import Component

        bad = Component("rd", OpType.MEM_READ, 16, 10.0, 10.0)
        with pytest.raises(LibraryError):
            ComponentLibrary(
                "bad", [bad], library.register, library.mux
            )
