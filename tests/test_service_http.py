"""End-to-end tests of the HTTP/JSON server over a real socket."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import experiment1_session
from repro.io.project import session_to_dict
from repro.service import ChopService, make_server


@pytest.fixture(scope="module")
def project_doc():
    return session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )


@pytest.fixture()
def server():
    service = ChopService(workers=1, job_timeout_s=60.0)
    httpd = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, httpd.server_address[1]
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
        thread.join(5)


def request(port, method, path, payload=None, timeout=60):
    body = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def poll_job(port, job_id, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, job = request(port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} did not finish")


class TestRoundTrip:
    def test_upload_check_enumerate_poll(self, server, project_doc):
        service, port = server

        status, project = request(port, "POST", "/projects", project_doc)
        assert status == 201
        assert project["created"] is True
        assert project["partitions"] == ["P1", "P2"]
        pid = project["project_id"]

        # Idempotent re-upload finds the resident session.
        status, again = request(port, "POST", "/projects", project_doc)
        assert status == 200
        assert again["created"] is False
        assert again["project_id"] == pid

        status, described = request(port, "GET", f"/projects/{pid}")
        assert status == 200
        assert described["fingerprint"].startswith(pid)

        status, check = request(
            port, "POST", f"/projects/{pid}/check",
            {"heuristic": "iterative"},
        )
        assert status == 200
        assert check["cache_hit"] is False
        assert check["result"]["feasible"] is True
        assert check["result"]["best"]["initiation_interval"] > 0

        status, job = request(
            port, "POST", f"/projects/{pid}/enumerate",
            {"heuristic": "enumeration"},
        )
        assert status == 202
        finished = poll_job(port, job["job_id"])
        assert finished["state"] == "done"
        assert finished["result"]["heuristic"] == "enumeration"
        assert finished["result"]["feasible"] is True
        assert finished["result"]["trials"] > 0

    def test_health_and_errors(self, server, project_doc):
        service, port = server
        status, health = request(port, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"

        status, err = request(port, "GET", "/projects/unknown")
        assert status == 404 and "unknown project" in err["error"]

        status, err = request(port, "GET", "/jobs/job-99")
        assert status == 404

        status, err = request(port, "POST", "/projects", ["not", "a", "doc"])
        assert status == 400

        broken = dict(project_doc)
        broken["partitions"] = [
            {**p} for p in project_doc["partitions"]
        ]
        del broken["partitions"][0]["chip"]
        status, err = request(port, "POST", "/projects", broken)
        assert status == 400
        assert "malformed project document" in err["error"]

        # Raw bytes that are not JSON at all.
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects",
            data=b"{nope",
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                status = resp.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400

        status, pid_doc = request(port, "POST", "/projects", project_doc)
        pid = pid_doc["project_id"]
        status, err = request(
            port, "POST", f"/projects/{pid}/check",
            {"heuristic": "simulated-annealing"},
        )
        assert status == 400 and "unknown heuristic" in err["error"]


class TestConcurrencyAndCache:
    def test_eight_concurrent_checks_and_warm_cache(
        self, server, project_doc
    ):
        """The acceptance scenario: >= 8 concurrent checks answer
        correctly, and the warm path is measurably faster than cold."""
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        barrier = threading.Barrier(8)
        results = []
        errors = []

        def check():
            try:
                barrier.wait(10)
                results.append(
                    request(
                        port, "POST", f"/projects/{pid}/check",
                        {"heuristic": "iterative"},
                    )
                )
            except Exception as exc:  # noqa: BLE001 — collect for assert
                errors.append(exc)

        cold_started = time.perf_counter()
        threads = [threading.Thread(target=check) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        cold_elapsed = time.perf_counter() - cold_started

        assert not errors
        assert len(results) == 8
        assert all(status == 200 for status, _ in results)
        bodies = [body["result"] for _, body in results]
        assert all(body == bodies[0] for body in bodies)
        assert bodies[0]["feasible"] is True
        # Single-flight: the 8 racing identical requests computed once.
        hit_flags = sorted(body["cache_hit"] for _, body in results)
        assert hit_flags == [False] + [True] * 7

        _, metrics = request(port, "GET", "/metrics")
        assert metrics["cache"]["misses"] == 1
        assert metrics["cache"]["hits"] == 7

        # A later identical check is a pure cache hit — and fast.
        warm_started = time.perf_counter()
        status, warm = request(
            port, "POST", f"/projects/{pid}/check",
            {"heuristic": "iterative"},
        )
        warm_elapsed = time.perf_counter() - warm_started
        assert status == 200 and warm["cache_hit"] is True
        _, metrics = request(port, "GET", "/metrics")
        assert metrics["cache"]["hits"] == 8
        assert metrics["cache"]["misses"] == 1
        assert warm_elapsed < cold_elapsed

        # The /metrics snapshot carries per-route latency percentiles.
        route = metrics["routes"]["POST /projects/{id}/check"]
        assert route["count"] == 9
        assert route["latency_ms"]["p95"] >= route["latency_ms"]["p50"]

    def test_distinct_options_do_not_share_cache(
        self, server, project_doc
    ):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        _, first = request(
            port, "POST", f"/projects/{pid}/check",
            {"heuristic": "iterative"},
        )
        _, second = request(
            port, "POST", f"/projects/{pid}/check",
            {"heuristic": "enumeration"},
        )
        assert first["cache_hit"] is False
        assert second["cache_hit"] is False
        assert first["result"]["heuristic"] == "iterative"
        assert second["result"]["heuristic"] == "enumeration"


class TestObservability:
    def test_traced_job_serves_trace_and_explain(
        self, server, project_doc
    ):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        # Propagate a client trace id through the X-Trace-Id header.
        body = json.dumps(
            {"heuristic": "enumeration", "explain": True}
        ).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects/{pid}/enumerate",
            data=body,
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": "client-trace-42",
            },
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            assert resp.status == 202
            job = json.loads(resp.read())
        assert job["trace_id"] == "client-trace-42"

        finished = poll_job(port, job["job_id"])
        assert finished["state"] == "done"
        assert finished["trace_id"] == "client-trace-42"

        status, trace = request(
            port, "GET", f"/jobs/{job['job_id']}/trace"
        )
        assert status == 200
        assert trace["trace_id"] == "client-trace-42"
        names = {span["name"] for span in trace["spans"]}
        assert {
            "service.job", "session.check", "search.enumeration",
        } <= names
        assert all(
            span["trace_id"] == "client-trace-42"
            for span in trace["spans"]
        )
        job_span = next(
            s for s in trace["spans"] if s["name"] == "service.job"
        )
        assert job_span["attrs"]["job_id"] == job["job_id"]

        status, explain = request(
            port, "GET", f"/jobs/{job['job_id']}/explain"
        )
        assert status == 200
        doc = explain["explain"]
        assert doc["evaluated"] == finished["result"]["trials"]
        assert doc["feasible"] + doc["infeasible"] == doc["evaluated"]
        assert isinstance(doc["constraints"], dict)

    def test_untraced_explain_404_and_invalid_trace_id_400(
        self, server, project_doc
    ):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        # Default enumerate: traced but no explain collection.
        status, job = request(
            port, "POST", f"/projects/{pid}/enumerate", {}
        )
        assert status == 202
        assert job["trace_id"]  # server-assigned
        poll_job(port, job["job_id"])
        status, trace = request(
            port, "GET", f"/jobs/{job['job_id']}/trace"
        )
        assert status == 200 and trace["spans"]
        status, err = request(
            port, "GET", f"/jobs/{job['job_id']}/explain"
        )
        assert status == 404 and "explain" in err["error"]

        # Malformed client trace id is rejected up front.
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects/{pid}/enumerate",
            data=b"{}",
            method="POST",
            headers={"X-Trace-Id": "!!bad id!!"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                status = resp.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400

        # Explain only rides the enumeration heuristic.
        status, err = request(
            port, "POST", f"/projects/{pid}/enumerate",
            {"heuristic": "iterative", "explain": True},
        )
        assert status == 400

    def test_trace_of_running_job_conflicts(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        # Pin the single job worker so the enumerate stays queued.
        release = threading.Event()
        blocker = service.jobs.submit(
            lambda should_stop: release.wait(30)
        )
        try:
            status, job = request(
                port, "POST", f"/projects/{pid}/enumerate", {}
            )
            assert status == 202
            status, err = request(
                port, "GET", f"/jobs/{job['job_id']}/trace"
            )
            assert status == 409
            status, err = request(
                port, "GET", f"/jobs/{job['job_id']}/explain"
            )
            assert status == 409
        finally:
            release.set()
        poll_job(port, job["job_id"])
        service.jobs.wait(blocker.id)

    def test_metrics_process_block_and_prometheus_format(
        self, server, project_doc
    ):
        service, port = server
        _, _ = request(port, "GET", "/healthz")

        status, metrics = request(port, "GET", "/metrics")
        assert status == 200
        process = metrics["process"]
        assert process["uptime_seconds"] >= 0
        # ISO-8601 UTC timestamp.
        assert process["started_at"].endswith("+00:00")
        assert "T" in process["started_at"]
        if "peak_rss_bytes" in process:  # absent on odd platforms
            assert process["peak_rss_bytes"] > 0

        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/metrics?format=prometheus"
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        assert "# TYPE chop_requests_total counter" in text
        assert "chop_requests_total " in text
        assert "chop_process_uptime_seconds " in text
        # Route labels are escaped strings.
        assert 'chop_route_requests_total{route="GET /healthz"}' in text

    def test_prometheus_histogram_and_slo_lines(
        self, server, project_doc
    ):
        service, port = server
        for _ in range(3):
            request(port, "GET", "/healthz")

        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/metrics?format=prometheus"
        )
        with urllib.request.urlopen(req, timeout=10) as resp:
            text = resp.read().decode()
        # The request-latency histogram renders the standard triplet
        # with route and status-class labels.
        assert "# TYPE chop_request_latency_seconds histogram" in text
        assert (
            'chop_request_latency_seconds_bucket{class="2xx",le="+Inf"'
            ',route="GET /healthz"}' in text
        )
        assert (
            'chop_request_latency_seconds_count{class="2xx"'
            ',route="GET /healthz"}' in text
        )
        assert (
            'chop_request_latency_seconds_sum{class="2xx"'
            ',route="GET /healthz"}' in text
        )
        # SLO burn gauges ride along in the same exposition.
        assert 'chop_slo_burn_ratio{slo="latency_p95"}' in text
        assert 'chop_slo_ok{slo="error_rate"} 1' in text
        # Flight-recorder gauges come from its stats supplier.
        assert "chop_flight_resident " in text

    def test_slo_endpoint(self, server, project_doc):
        service, port = server
        request(port, "GET", "/healthz")
        status, doc = request(port, "GET", "/slo")
        assert status == 200
        assert doc["ok"] is True
        kinds = {o["kind"] for o in doc["objectives"]}
        assert kinds == {"latency", "error_rate"}
        latency = next(
            o for o in doc["objectives"] if o["kind"] == "latency"
        )
        assert latency["measured_s"] is not None
        assert latency["burn"] <= 1.0

    def test_debug_recent_records_requests_and_jobs(
        self, server, project_doc
    ):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        status, job = request(
            port, "POST", f"/projects/{pid}/enumerate", {}
        )
        assert status == 202
        poll_job(port, job["job_id"])

        status, doc = request(port, "GET", "/debug/recent")
        assert status == 200
        assert doc["stats"]["recorded"] >= 2
        kinds = {r["kind"] for r in doc["records"]}
        assert "request" in kinds
        assert "job" in kinds
        job_record = next(
            r for r in doc["records"] if r["kind"] == "job"
        )
        assert job_record["job_id"] == job["job_id"]
        assert job_record["top_spans"]
        # ?limit=N truncates to the newest N records.
        status, limited = request(
            port, "GET", "/debug/recent?limit=1"
        )
        assert len(limited["records"]) == 1
        assert (
            limited["records"][0]["seq"]
            == max(r["seq"] for r in doc["records"] + limited["records"])
        )

    def test_flight_dump_written_on_5xx(self, project_doc, tmp_path):
        service = ChopService(
            workers=1, flight_dir=str(tmp_path / "flights")
        )
        try:
            # A 503 (draining) is backpressure, not a failure: no dump.
            service.note_request("GET /readyz", 0.001, 503)
            assert not list(tmp_path.glob("flights/*.json"))
            service.note_request("POST /projects", 0.002, 500)
            dumps = list(tmp_path.glob("flights/*-5xx.json"))
            assert len(dumps) == 1
            doc = json.loads(dumps[0].read_text())
            routes = [r.get("route") for r in doc["records"]]
            assert "POST /projects" in routes
        finally:
            service.close()


class TestJobControl:
    def test_job_timeout_over_http(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        # A microscopic budget expires before the first combination.
        status, job = request(
            port, "POST", f"/projects/{pid}/enumerate",
            {"timeout_s": 1e-6},
        )
        assert status == 202
        finished = poll_job(port, job["job_id"])
        assert finished["state"] == "failed"
        assert "timed out" in finished["error"]

    def test_cancel_queued_job_over_http(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        # Pin the single worker so the HTTP-submitted job stays queued.
        release = threading.Event()
        blocker = service.jobs.submit(
            lambda should_stop: release.wait(30)
        )
        status, job = request(
            port, "POST", f"/projects/{pid}/enumerate", {}
        )
        assert status == 202
        status, cancelled = request(
            port, "POST", f"/jobs/{job['job_id']}/cancel"
        )
        assert status == 202
        release.set()
        finished = poll_job(port, job["job_id"])
        assert finished["state"] == "cancelled"
        service.jobs.wait(blocker.id)
