"""HTTP/JSON front end for CHOP designer sessions.

Stdlib-only (``http.server`` + threads): the point of the paper's system
is that feasibility *prediction* is fast enough to sit inside a human
iteration loop, so the server's job is to keep that loop interactive
across many concurrent designers — checks answer on the request thread
through a memoization cache, while design-space enumerations go to a
background job queue.

Endpoints::

    POST /projects                  upload a project document -> id
    GET  /projects/{id}             describe a resident session
    POST /projects/{id}/check       synchronous feasibility check
    POST /projects/{id}/enumerate   background search -> job id
    POST /projects/{id}/auto        background auto-partitioning -> job id
    POST /projects/{id}/explore     background design-space sweep -> job id
    GET  /jobs/{id}                 poll job state / result
    POST /jobs/{id}/cancel          cooperative cancellation
    GET  /jobs/{id}/trace           the job's finished span records
    GET  /jobs/{id}/explain         per-constraint feasibility breakdown
    GET  /healthz                   liveness (200 while the process runs)
    GET  /readyz                    readiness (503 while draining)
    GET  /metrics                   counters, latencies, cache, queue
                                    (?format=prometheus for text format)
    GET  /slo                       objective burn ratios (latency p95,
                                    error rate) evaluated on demand
    GET  /debug/recent              the flight recorder's newest records
                                    (?limit=N to truncate)

All request and response bodies are JSON (``/metrics`` can also render
the Prometheus text exposition format).  Errors come back as
``{"error": msg, "type": kind}`` with 400 (malformed input), 404
(unknown id), 409 (right route, wrong job state), 413 (body over the
size cap), 422 (well-formed but un-servable, e.g. no feasible
prediction survives pruning), 429 (queue or per-session quota full —
with a ``Retry-After`` header) or 503 (draining; also ``Retry-After``).
The failure-mode contract — which fault produces which status, metric
and recovery — is documented in ``docs/resilience.md``.

Every background job is traced: the whole search runs under a
``service.job`` span, the finished span tree (including the engine's
per-shard spans) is kept on the job and served by ``/jobs/{id}/trace``.
Clients propagate their own trace ids by sending an ``X-Trace-Id``
header on ``POST .../enumerate``; passing ``{"explain": true}`` in the
enumerate options additionally collects the per-constraint failure
breakdown for ``/jobs/{id}/explain``.

:class:`ChopService` is pure request->response logic; :func:`make_server`
binds it to a ``ThreadingHTTPServer`` socket.
"""

from __future__ import annotations

import datetime
import json
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cache import PredictionCacheBase, create_backend
from repro.engine import EvaluationEngine
from repro.errors import (
    ChopError,
    DrainingError,
    PartitioningError,
    QueueFullError,
    SpecificationError,
)
from repro.obs.explain import ExplainCollector
from repro.obs.flight import FlightRecorder
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.profiling import peak_rss_bytes
from repro.obs.prometheus import render_registry
from repro.obs.slo import SLOTracker, default_objectives
from repro.obs.tracing import Tracer, activate
from repro.resilience.retry import RetryPolicy, RetryStats
from repro.service.cache import LRUCache, check_cache_key
from repro.service.jobs import DONE, FAILED, CANCELLED, JobQueue
from repro.service.metrics import Metrics
from repro.service.sessions import SessionEntry, SessionRegistry

HEURISTICS = ("iterative", "enumeration")

#: Accepted shape of a client-supplied ``X-Trace-Id`` header.
_TRACE_ID_RE = re.compile(r"^[0-9A-Za-z][0-9A-Za-z._-]{3,127}$")

#: ``(status, payload, route label, extra headers)``.  The payload is a
#: JSON document, or pre-rendered text (Prometheus); extra headers carry
#: backpressure hints (``Retry-After`` on 429/503).
Response = Tuple[int, Any, str, Dict[str, str]]

#: Internal routing result, before headers are attached.
_Routed = Tuple[int, Any, str]


class ServiceError(Exception):
    """An error with a definite HTTP status (and optional headers).

    ``kind`` becomes the payload's ``type`` field so clients can branch
    on the failure mode without parsing messages.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Mapping[str, str]] = None,
        kind: str = "service",
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})
        self.kind = kind


class ChopService:
    """The serving-layer facade: sessions + cache + jobs + metrics."""

    def __init__(
        self,
        cache_size: int = 256,
        max_sessions: int = 32,
        workers: int = 2,
        job_timeout_s: Optional[float] = 300.0,
        search_workers: int = 0,
        disk_cache_dir: Optional[str] = None,
        cache_backend: str = "auto",
        start_method: Optional[str] = None,
        engine_kernel: str = "scalar",
        max_queued: Optional[int] = 64,
        max_jobs_per_session: Optional[int] = 4,
        max_body_bytes: int = 1_000_000,
        job_retry: Optional[RetryPolicy] = None,
        drain_timeout_s: float = 10.0,
        slo_latency_ms: float = 500.0,
        slo_error_rate: float = 0.01,
        flight_capacity: int = 256,
        flight_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        fleet: Optional[Any] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self.max_body_bytes = max_body_bytes
        self.drain_timeout_s = drain_timeout_s
        self.registry = registry if registry is not None else get_registry()
        self.log = get_logger("service")
        self.retry_stats = RetryStats()
        self._draining = threading.Event()
        #: The fleet router when this service is one worker of a
        #: multi-process front (see :mod:`repro.service.fleet`); None
        #: in the classic single-process deployment.
        self.fleet = fleet
        self.sessions = SessionRegistry(capacity=max_sessions)
        self.cache = LRUCache(capacity=cache_size)
        self.jobs = JobQueue(
            workers=workers,
            default_timeout_s=job_timeout_s,
            max_queued=max_queued,
            max_per_session=max_jobs_per_session,
            id_prefix=(fleet.job_prefix if fleet is not None else ""),
            retry_policy=(
                job_retry
                if job_retry is not None
                else RetryPolicy(max_attempts=3, base_delay_s=0.05)
            ),
            retry_stats=self.retry_stats,
        )
        # ``workers`` threads drain the job queue; ``search_workers``
        # processes shard each enumeration's combination walk.
        if engine_kernel not in ("scalar", "vectorized"):
            raise ValueError(
                f"engine_kernel must be 'scalar' or 'vectorized', got "
                f"{engine_kernel!r}"
            )
        self.engine_kernel = engine_kernel
        self.engine: Optional[EvaluationEngine] = (
            EvaluationEngine(
                workers=search_workers, start_method=start_method,
                kernel=engine_kernel,
            )
            if search_workers > 1
            else None
        )
        # The prediction cache is backend-pluggable (repro.cache):
        # "auto" resolves to the multi-writer shared backend whenever
        # this service is one worker of a fleet, the single-writer disk
        # backend otherwise.
        writers = fleet.workers if fleet is not None else 1
        self.disk_cache: Optional[PredictionCacheBase] = (
            create_backend(cache_backend, disk_cache_dir, writers=writers)
            if disk_cache_dir
            else None
        )
        self.metrics = Metrics(registry=self.registry)
        self.slo = SLOTracker(
            self.registry,
            default_objectives(
                latency_ms=slo_latency_ms, error_rate=slo_error_rate
            ),
        )
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.flight_dir = flight_dir
        self.metrics.register_gauges("flight", self.flight.stats)
        self.metrics.register_gauges("cache", self.cache.stats)
        self.metrics.register_gauges("jobs", self.jobs.depth)
        self.metrics.register_gauges("sessions", self.sessions.stats)
        self.metrics.register_gauges("eval", self.sessions.eval_stats)
        if self.engine is not None:
            self.metrics.register_gauges("engine", self.engine.stats)
        if self.disk_cache is not None:
            self.metrics.register_gauges(
                "disk_cache", self.disk_cache.stats
            )
        if fleet is not None:
            self.metrics.register_gauges("fleet", fleet.stats)
        self._auto_lock = threading.Lock()
        self._auto_stats: Dict[str, int] = {
            "jobs": 0, "feasible": 0, "infeasible": 0, "clones": 0,
            "repair_moves": 0,
        }
        self.metrics.register_gauges("auto", self._auto_snapshot)
        self._explore_lock = threading.Lock()
        self._explore_stats: Dict[str, int] = {
            "jobs": 0, "candidates": 0, "feasible": 0,
            "front_points": 0, "cache_seeded": 0,
        }
        self.metrics.register_gauges("explore", self._explore_snapshot)
        self.started_at = time.time()
        self.metrics.register_gauges("process", self._process_stats)
        self.metrics.register_gauges("retries", self.retry_stats.stats)

    def close(self) -> None:
        self._draining.set()
        self.jobs.shutdown()

    @property
    def draining(self) -> bool:
        """Whether the service has stopped admitting new work."""
        return self._draining.is_set() or self.jobs.draining

    def drain(self, timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown: refuse admissions, settle jobs, release.

        From the first moment ``/readyz`` answers 503 and every POST is
        refused with 503; in-flight jobs get ``timeout_s`` (default:
        the configured ``drain_timeout_s``) to finish before they are
        cancelled cooperatively.  Returns the job-queue drain summary.
        """
        self._draining.set()
        return self.jobs.drain(
            timeout_s=(
                self.drain_timeout_s if timeout_s is None else timeout_s
            )
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        trace_id: Optional[str] = None,
        internal: bool = False,
    ) -> Response:
        """Serve one request; returns (status, payload, route, headers).

        The route label is the metrics key — the path template with ids
        elided, so per-endpoint latencies aggregate across tenants.
        ``trace_id`` is the client's ``X-Trace-Id`` header, adopted by
        traced background jobs so a caller can correlate its own trace
        with the server-side span tree.  The headers dict carries
        backpressure hints — ``Retry-After`` on 429 (queue or session
        quota) and 503 (draining).

        In a fleet, a sticky request owned by another worker is
        forwarded to that worker's internal listener; ``internal``
        marks requests arriving *on* the internal listener, which are
        always served locally (forwarding never chains).
        """
        fallback = f"{method} {path}"
        try:
            if (
                body is not None
                and len(body) > self.max_body_bytes
            ):
                raise ServiceError(
                    413,
                    f"request body of {len(body)} bytes exceeds the "
                    f"{self.max_body_bytes}-byte cap",
                    kind="body_too_large",
                )
            if self.fleet is not None and not internal:
                owner = self.fleet.owner_for(method, path, body)
                if owner is not None and owner != self.fleet.index:
                    return self.fleet.forward(
                        owner, method, path, body, trace_id
                    )
            status, payload, route = self._route(
                method, path, body, trace_id, internal=internal
            )
            return status, payload, route, {}
        except ServiceError as exc:
            return (
                exc.status,
                {"error": str(exc), "type": exc.kind},
                fallback,
                dict(exc.headers),
            )
        except SpecificationError as exc:
            return (
                400,
                {"error": str(exc), "type": "specification"},
                fallback,
                {},
            )
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "type": "queue_full"},
                fallback,
                {"Retry-After": str(int(round(exc.retry_after_s)))},
            )
        except DrainingError as exc:
            return (
                503,
                {"error": str(exc), "type": "draining"},
                fallback,
                {"Retry-After": str(int(round(self.drain_timeout_s)))},
            )
        except ChopError as exc:
            payload: Dict[str, Any] = {
                "error": str(exc),
                "type": type(exc).__name__,
            }
            detail = getattr(exc, "detail", None)
            if callable(detail):
                # Structured errors (e.g. CombinationExplosionError)
                # carry actionable data — ship it with the 4xx.
                payload["detail"] = detail()
            return 422, payload, fallback, {}

    def _route(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        trace_id: Optional[str] = None,
        internal: bool = False,
    ) -> _Routed:
        path, _, query = path.partition("?")
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return 200, self._healthz(), "GET /healthz"
        if method == "GET" and parts == ["readyz"]:
            return self._readyz() + ("GET /readyz",)
        if method == "GET" and parts == ["metrics"]:
            return 200, self._metrics(query, internal), "GET /metrics"
        if method == "GET" and parts == ["slo"]:
            return 200, self.slo.evaluate(), "GET /slo"
        if method == "GET" and parts == ["debug", "recent"]:
            return 200, self._recent(query), "GET /debug/recent"
        if method == "POST" and self.draining and parts[:1] != ["jobs"]:
            # Liveness, readiness, metrics, job polling and cancellation
            # stay up during a drain; anything that admits work does not.
            raise DrainingError(
                "service is draining; no new work is admitted"
            )
        if method == "POST" and parts == ["projects"]:
            status, payload = self._upload(self._json_body(body))
            return status, payload, "POST /projects"
        if len(parts) == 2 and parts[0] == "projects" and method == "GET":
            entry = self._entry(parts[1])
            return 200, entry.to_dict(), "GET /projects/{id}"
        if len(parts) == 3 and parts[0] == "projects":
            entry = self._entry(parts[1])
            if method == "POST" and parts[2] == "check":
                payload = self._check(entry, self._json_body(body, {}))
                return 200, payload, "POST /projects/{id}/check"
            if method == "POST" and parts[2] == "enumerate":
                payload = self._enumerate(
                    entry, self._json_body(body, {}), trace_id
                )
                return 202, payload, "POST /projects/{id}/enumerate"
            if method == "POST" and parts[2] == "auto":
                payload = self._auto(
                    entry, self._json_body(body, {}), trace_id
                )
                return 202, payload, "POST /projects/{id}/auto"
            if method == "POST" and parts[2] == "explore":
                payload = self._explore(
                    entry, self._json_body(body, {}), trace_id
                )
                return 202, payload, "POST /projects/{id}/explore"
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return 200, self._job(parts[1]).to_dict(), "GET /jobs/{id}"
        if len(parts) == 3 and parts[0] == "jobs":
            job = self._job(parts[1])
            if method == "POST" and parts[2] == "cancel":
                self.jobs.cancel(job.id)
                return 202, job.to_dict(), "POST /jobs/{id}/cancel"
            if method == "GET" and parts[2] == "trace":
                return (
                    200, self._job_trace(job), "GET /jobs/{id}/trace",
                )
            if method == "GET" and parts[2] == "explain":
                return (
                    200,
                    self._job_explain(job),
                    "GET /jobs/{id}/explain",
                )
        raise ServiceError(404, f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # endpoint bodies
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        """Liveness: 200 for as long as the process can answer at all."""
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    def _readyz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness: 503 once draining so balancers stop routing here."""
        if self.draining:
            return 503, {"status": "draining"}
        return 200, {"status": "ready"}

    def _metrics(self, query: str = "", internal: bool = False) -> Any:
        # Refresh the SLO burn gauges so every scrape (either format)
        # carries the current objective state.
        self.slo.evaluate()
        # In a fleet, any worker serves the whole fleet's metrics by
        # scraping its peers' internal listeners and merging; the
        # internal scrape itself (and an explicit ?scope=local) stays
        # single-worker so the recursion bottoms out.
        aggregate = (
            self.fleet is not None
            and not internal
            and "scope=local" not in query
        )
        if "format=prometheus" in query:
            # The text exposition renders the shared registry directly;
            # subsystem stats() suppliers are registered pull-gauges.
            text = render_registry(self.registry)
            if aggregate:
                return self.fleet.aggregate_prometheus(text)
            return text
        # Legacy JSON shape: per-route sample percentiles plus the
        # registered subsystem gauge suppliers.
        snapshot = self.metrics.snapshot()
        if aggregate:
            return self.fleet.aggregate_json(snapshot)
        return snapshot

    def _recent(self, query: str = "") -> Dict[str, Any]:
        """The flight recorder's newest records, for ``/debug/recent``."""
        limit: Optional[int] = None
        match = re.search(r"(?:^|&)limit=(\d+)", query)
        if match:
            limit = int(match.group(1))
        records = self.flight.recent(limit=limit)
        return {
            "stats": self.flight.stats(),
            "records": records,
        }

    def note_request(
        self,
        route: str,
        seconds: float,
        status: int,
        trace_id: Optional[str] = None,
    ) -> None:
        """Account one finished HTTP request everywhere it belongs.

        Updates the metrics registry and the legacy snapshot, appends a
        flight-recorder entry, and — on any 5xx — logs the failure and
        snapshots the flight buffer to ``flight_dir`` so the context
        around the error survives the process.
        """
        self.metrics.observe(route, seconds, status, trace_id=trace_id)
        self.flight.record(
            "request",
            route=route,
            status=status,
            latency_ms=seconds * 1000.0,
            trace_id=trace_id,
        )
        if status >= 500 and status != 503:
            # 503 is the drain/backpressure contract, not a failure.
            self.log.error(
                "request failed",
                route=route,
                status=status,
                latency_ms=round(seconds * 1000.0, 3),
                trace_id=trace_id,
            )
            self._dump_flight(reason="5xx")

    def _dump_flight(self, reason: str = "manual") -> Optional[str]:
        """Best-effort flight dump into ``flight_dir`` (None if unset)."""
        if not self.flight_dir:
            return None
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        path = (
            f"{self.flight_dir}/flight-{stamp}-"
            f"{self.flight.stats()['recorded']}-{reason}.json"
        )
        try:
            return self.flight.dump_to(path)
        except OSError as exc:
            self.log.warning(
                "flight dump failed", path=path, error=str(exc)
            )
            return None

    def _process_stats(self) -> Dict[str, Any]:
        """Uptime and memory gauges for the ``process`` metrics block."""
        started = datetime.datetime.fromtimestamp(
            self.started_at, tz=datetime.timezone.utc
        )
        doc: Dict[str, Any] = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "started_at": started.isoformat(timespec="seconds"),
        }
        rss = peak_rss_bytes()
        if rss is not None:
            doc["peak_rss_bytes"] = rss
        return doc

    def _upload(
        self, document: Any
    ) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(document, dict):
            raise ServiceError(
                400, "project upload must be a JSON object"
            )
        entry, created = self.sessions.put(document)
        payload = entry.to_dict()
        payload["created"] = created
        return (201 if created else 200), payload

    def _parse_kernel(self, options: Dict[str, Any]) -> str:
        """The request's evaluation-kernel choice (``engine`` option).

        Falls back to the service-wide default; anything but the two
        known kernels is an immediate 400 ``invalid_option``.
        """
        kernel = options.get("engine", self.engine_kernel)
        if kernel not in ("scalar", "vectorized"):
            raise ServiceError(
                400,
                f"unknown engine {kernel!r}; use 'scalar' or "
                f"'vectorized'",
                kind="invalid_option",
            )
        return kernel

    def _check(
        self, entry: SessionEntry, options: Dict[str, Any]
    ) -> Dict[str, Any]:
        heuristic = options.get("heuristic", "iterative")
        prune = bool(options.get("prune", True))
        kernel = self._parse_kernel(options)
        soft_deadline_s = options.get("soft_deadline_s")
        if heuristic not in HEURISTICS:
            raise ServiceError(
                400,
                f"unknown heuristic {heuristic!r}; use one of "
                f"{list(HEURISTICS)}",
            )
        if soft_deadline_s is not None:
            try:
                soft_deadline_s = float(soft_deadline_s)
            except (TypeError, ValueError):
                raise ServiceError(
                    400,
                    f"soft_deadline_s must be a number, "
                    f"got {soft_deadline_s!r}",
                ) from None
            if soft_deadline_s <= 0:
                raise ServiceError(
                    400, "soft_deadline_s must be positive"
                )
            # A soft-deadlined check may return a *partial* verdict;
            # partial verdicts are never memoized (a later full check
            # must not inherit them) so this path bypasses the cache.
            with entry.lock:
                result = self._checked(
                    entry,
                    heuristic=heuristic,
                    prune=prune,
                    soft_deadline_s=soft_deadline_s,
                    kernel=kernel,
                ).to_dict()
            return {
                "project_id": entry.project_id,
                "cache_hit": False,
                "result": result,
            }
        # The kernel is deliberately NOT part of the verdict cache key:
        # both kernels return byte-identical results (the property the
        # identity suite enforces), so a verdict computed by either
        # serves requests asking for the other.
        key = check_cache_key(entry.fingerprint, heuristic, prune)

        def compute() -> Dict[str, Any]:
            with entry.lock:
                return self._checked(
                    entry, heuristic=heuristic, prune=prune,
                    kernel=kernel,
                ).to_dict()

        result, hit = self.cache.get_or_compute(key, compute)
        return {
            "project_id": entry.project_id,
            "cache_hit": hit,
            "result": result,
        }

    def _checked(self, entry: SessionEntry, **options: Any):
        """Run one check under the disk prediction cache, if configured.

        Seeds the session's prediction cache from disk before the check
        and persists the (possibly freshly computed) predictions after a
        miss — so an identical project checked after a restart skips BAD
        prediction entirely.  Callers must hold ``entry.lock``.
        """
        options.setdefault("engine", self.engine)
        options.setdefault("kernel", self.engine_kernel)
        if self.disk_cache is None:
            return entry.session.check(**options)
        session = entry.session
        disk_key = self.disk_cache.key_for(
            entry.fingerprint, session.library, session.clocks
        )
        cached = self.disk_cache.load(disk_key)
        if cached is not None:
            session.seed_predictions(cached)
        result = session.check(**options)
        if cached is None:
            # Best-effort: a sick cache disk degrades persistence to a
            # no-op (counted in disk_cache.store_failures), it never
            # fails the check that just succeeded.
            self.disk_cache.store_safely(
                disk_key, session.export_predictions()
            )
        return result

    def _enumerate(
        self,
        entry: SessionEntry,
        options: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        heuristic = options.get("heuristic", "enumeration")
        prune = bool(options.get("prune", True))
        explain = bool(options.get("explain", False))
        kernel = self._parse_kernel(options)
        if heuristic not in HEURISTICS:
            raise ServiceError(
                400,
                f"unknown heuristic {heuristic!r}; use one of "
                f"{list(HEURISTICS)}",
                kind="invalid_option",
            )
        if explain and heuristic != "enumeration":
            raise ServiceError(
                400,
                "explain collection requires the enumeration heuristic",
                kind="invalid_option",
            )
        self._require_valid_trace_id(trace_id)
        timeout_s = self._parse_timeout(options)

        tracer = Tracer(trace_id=trace_id)

        def run(job) -> Dict[str, Any]:
            collector = ExplainCollector() if explain else None
            started = time.perf_counter()
            try:
                with entry.lock, activate(tracer):
                    with tracer.span(
                        "service.job", job_id=job.id, kind=job.kind,
                    ):
                        result = self._checked(
                            entry,
                            heuristic=heuristic,
                            prune=prune,
                            cancel=job.should_stop,
                            progress=job.report_progress,
                            collector=collector,
                            kernel=kernel,
                        ).to_dict()
            finally:
                # Keep the trace (and explain, once collected) even
                # when the search failed or was cancelled — that is
                # when the designer needs them most.
                job.artifacts["trace"] = tracer.spans()
                if collector is not None and collector.evaluated:
                    job.artifacts["explain"] = collector.report(
                        heuristic=heuristic
                    ).to_dict()
                self._flight_job(
                    job, tracer, started, engine_kernel=kernel
                )
            return result

        job = self.jobs.submit(
            run,
            kind=f"{heuristic}:{entry.project_id}",
            timeout_s=timeout_s,
            pass_job=True,
            session_key=entry.project_id,
        )
        job.trace_id = tracer.trace_id
        return job.to_dict()

    def _auto_snapshot(self) -> Dict[str, int]:
        with self._auto_lock:
            return dict(self._auto_stats)

    def _auto(
        self,
        entry: SessionEntry,
        options: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a background auto-partitioning of one project's graph.

        Options: ``chips`` (default 4), ``replicate`` (bool),
        ``max_clones``, ``balance_tolerance``, ``feasibility_moves``,
        ``heuristic``, ``timeout_s``, ``include_assignment`` (ship the
        full op-to-partition map in the result — off by default, the
        map is graph-sized).  The job result is the auto summary; the
        span tree (``auto.coarsen`` / ``auto.refine`` /
        ``auto.replicate`` / ...) is served by ``/jobs/{id}/trace``.
        """
        from repro.auto import AutoPartitionConfig, auto_partition
        from repro.auto.partitioner import session_like_factory

        heuristic = options.get("heuristic", "iterative")
        if heuristic not in HEURISTICS:
            raise ServiceError(
                400,
                f"unknown heuristic {heuristic!r}; use one of "
                f"{list(HEURISTICS)}",
                kind="invalid_option",
            )
        self._require_valid_trace_id(trace_id)
        timeout_s = self._parse_timeout(options)
        try:
            config = AutoPartitionConfig(
                chips=int(options.get("chips", 4)),
                replicate=bool(options.get("replicate", False)),
                max_clones=int(options.get("max_clones", 0)),
                balance_tolerance=float(
                    options.get("balance_tolerance", 0.3)
                ),
                feasibility_moves=int(
                    options.get("feasibility_moves", 32)
                ),
                heuristic=heuristic,
            )
            config.validate()
            if config.chips > entry.session.graph.op_count():
                # auto_partition would raise the same PartitioningError
                # inside the job; validating here turns a failed job
                # into an immediate, typed 400.
                raise PartitioningError(
                    f"cannot spread "
                    f"{entry.session.graph.op_count()} operations over "
                    f"{config.chips} chips"
                )
        except (TypeError, ValueError, PartitioningError) as exc:
            raise ServiceError(
                400, f"invalid auto option: {exc}", kind="invalid_option"
            ) from None
        include_assignment = bool(options.get("include_assignment", False))

        tracer = Tracer(trace_id=trace_id)

        def run(job) -> Dict[str, Any]:
            started = time.perf_counter()
            try:
                with entry.lock, activate(tracer):
                    with tracer.span(
                        "service.job", job_id=job.id, kind=job.kind,
                    ):
                        outcome = auto_partition(
                            entry.session.graph,
                            config,
                            session_factory=session_like_factory(
                                entry.session
                            ),
                            engine=self.engine,
                            progress=job.report_progress,
                        )
            finally:
                job.artifacts["trace"] = tracer.spans()
                self._flight_job(job, tracer, started)
            payload = outcome.to_dict()
            if include_assignment:
                payload["assignment"] = dict(outcome.assignment)
            with self._auto_lock:
                self._auto_stats["jobs"] += 1
                key = "feasible" if outcome.feasible else "infeasible"
                self._auto_stats[key] += 1
                self._auto_stats["clones"] += payload["clones"]
                self._auto_stats["repair_moves"] += payload[
                    "repair_moves"
                ]
            return payload

        job = self.jobs.submit(
            run,
            kind=f"auto:{entry.project_id}",
            timeout_s=timeout_s,
            pass_job=True,
            session_key=entry.project_id,
        )
        job.trace_id = tracer.trace_id
        return job.to_dict()

    def _explore_snapshot(self) -> Dict[str, int]:
        with self._explore_lock:
            return dict(self._explore_stats)

    def _explore(
        self,
        entry: SessionEntry,
        options: Dict[str, Any],
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a background design-space sweep of one project.

        Options: ``k_min``/``k_max`` (or an explicit ``chip_counts``
        list), ``package_scales``, ``objectives``, ``seeding``
        (``heuristic`` | ``auto``), ``heuristic``, ``timeout_s``,
        ``include_projects`` (embed each front point's full project
        document — off by default, the documents are graph-sized).
        Candidate sessions inherit the project's designer inputs via
        :func:`repro.explore.project_session_factory`; the sweep runs
        under the service engine and disk prediction cache, so repeated
        sweeps of the same project are warm.  Every bad option is an
        immediate 400 with ``type: invalid_option`` — the same contract
        as ``/auto`` — never a failed background job.
        """
        from repro.explore import (
            ExploreConfig,
            explore,
            project_session_factory,
        )

        self._require_valid_trace_id(trace_id)
        timeout_s = self._parse_timeout(options)
        try:
            if "chip_counts" in options:
                chip_counts = tuple(
                    int(k) for k in options["chip_counts"]
                )
            else:
                k_min = int(options.get("k_min", 1))
                k_max = int(options.get("k_max", 4))
                if k_min > k_max:
                    raise ValueError(
                        f"k_min {k_min} exceeds k_max {k_max}"
                    )
                chip_counts = tuple(range(k_min, k_max + 1))
            config = ExploreConfig(
                chip_counts=chip_counts,
                package_scales=tuple(
                    float(s)
                    for s in options.get("package_scales", (1.0,))
                ),
                objectives=tuple(
                    options.get(
                        "objectives",
                        ("cost", "performance", "delay", "chips"),
                    )
                ),
                seeding=options.get("seeding", "heuristic"),
                heuristic=options.get("heuristic", "iterative"),
            )
            # op_count bounds the k axis: a sweep that cannot seed any
            # candidate is a client error, not a job failure.
            config.validate(op_count=entry.session.graph.op_count())
        except (TypeError, ValueError, ChopError) as exc:
            raise ServiceError(
                400,
                f"invalid explore option: {exc}",
                kind="invalid_option",
            ) from None
        include_projects = bool(options.get("include_projects", False))

        tracer = Tracer(trace_id=trace_id)

        def run(job) -> Dict[str, Any]:
            factory = project_session_factory(entry.session)
            started = time.perf_counter()
            try:
                with entry.lock, activate(tracer):
                    with tracer.span(
                        "service.job", job_id=job.id, kind=job.kind,
                    ):
                        result = explore(
                            entry.session.graph,
                            config,
                            session_factory=factory,
                            engine=self.engine,
                            disk_cache=self.disk_cache,
                            progress=job.report_progress,
                            cancel=job.should_stop,
                        )
            finally:
                job.artifacts["trace"] = tracer.spans()
                self._flight_job(job, tracer, started)
            payload = result.to_dict(include_projects=include_projects)
            payload["project_id"] = entry.project_id
            with self._explore_lock:
                self._explore_stats["jobs"] += 1
                self._explore_stats["candidates"] += result.evaluated
                self._explore_stats["feasible"] += result.feasible
                self._explore_stats["front_points"] += len(result.front)
                self._explore_stats["cache_seeded"] += (
                    result.cache_seeded
                )
            return payload

        job = self.jobs.submit(
            run,
            kind=f"explore:{entry.project_id}",
            timeout_s=timeout_s,
            pass_job=True,
            session_key=entry.project_id,
        )
        job.trace_id = tracer.trace_id
        return job.to_dict()

    def _flight_job(
        self,
        job,
        tracer: Tracer,
        started: float,
        engine_kernel: Optional[str] = None,
    ) -> None:
        """Flight-record one finished background job (any outcome)."""
        self.flight.record(
            "job",
            latency_ms=(time.perf_counter() - started) * 1000.0,
            trace_id=tracer.trace_id,
            spans=tracer.spans(),
            job_id=job.id,
            job_kind=job.kind,
            engine_kernel=engine_kernel or self.engine_kernel,
        )

    def _job_trace(self, job) -> Dict[str, Any]:
        """The finished span records of one background job."""
        if job.state not in (DONE, FAILED, CANCELLED):
            raise ServiceError(
                409,
                f"job {job.id!r} is {job.state}; its trace is available "
                "once it finishes",
            )
        spans = job.artifacts.get("trace")
        if spans is None:
            raise ServiceError(
                404, f"job {job.id!r} recorded no trace"
            )
        return {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "state": job.state,
            "spans": spans,
        }

    def _job_explain(self, job) -> Dict[str, Any]:
        """The per-constraint feasibility breakdown of one job."""
        if job.state not in (DONE, FAILED, CANCELLED):
            raise ServiceError(
                409,
                f"job {job.id!r} is {job.state}; explain data is "
                "available once it finishes",
            )
        explain = job.artifacts.get("explain")
        if explain is None:
            raise ServiceError(
                404,
                f"job {job.id!r} collected no explain data; submit the "
                'enumeration with {"explain": true} to collect it',
            )
        return {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "state": job.state,
            "explain": explain,
        }

    # ------------------------------------------------------------------
    # lookups and parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _require_valid_trace_id(trace_id: Optional[str]) -> None:
        if trace_id is not None and not _TRACE_ID_RE.match(trace_id):
            raise ServiceError(
                400,
                "X-Trace-Id must be 4-128 characters of "
                "[0-9A-Za-z._-] starting with an alphanumeric",
            )

    @staticmethod
    def _parse_timeout(options: Dict[str, Any]) -> Optional[float]:
        timeout_s = options.get("timeout_s")
        if timeout_s is None:
            return None
        try:
            return float(timeout_s)
        except (TypeError, ValueError):
            raise ServiceError(
                400,
                f"timeout_s must be a number, got {timeout_s!r}",
                kind="invalid_option",
            ) from None

    def _entry(self, project_id: str) -> SessionEntry:
        entry = self.sessions.get(project_id)
        if entry is None:
            raise ServiceError(
                404,
                f"unknown project {project_id!r}; upload it via "
                "POST /projects (ids expire under the LRU policy)",
            )
        return entry

    def _job(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _json_body(body: Optional[bytes], default: Any = None) -> Any:
        if not body:
            if default is not None:
                return default
            raise ServiceError(400, "request body required")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, f"invalid JSON body: {exc}"
            ) from None


# ----------------------------------------------------------------------
# socket binding
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    service: ChopService  # injected by make_server
    quiet = True
    protocol_version = "HTTP/1.1"
    #: True on a fleet worker's internal (forwarding) listener — those
    #: requests are always served locally, never re-forwarded.
    internal = False

    # Route through one dispatcher per method.
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.service.max_body_bytes:
            # Reject from the declared length alone — never buffer an
            # oversized body into memory.  The unread body makes the
            # connection unusable for keep-alive, so close it.
            status, payload, route, extra = (
                413,
                {
                    "error": (
                        f"request body of {length} bytes exceeds the "
                        f"{self.service.max_body_bytes} byte cap"
                    ),
                    "type": "body_too_large",
                },
                "(oversized)",
                {},
            )
            self.close_connection = True
        else:
            body = self.rfile.read(length) if length else None
            status, payload, route, extra = self.service.handle(
                method, self.path, body,
                trace_id=self.headers.get("X-Trace-Id"),
                internal=self.internal,
            )
        if self.service.fleet is not None:
            # Which worker *answered* — forwarded responses keep the
            # owner's stamp; locally served ones get this worker's.
            extra.setdefault(
                "X-Chop-Worker", str(self.service.fleet.index)
            )
        if isinstance(payload, str):
            # Pre-rendered text (the Prometheus exposition format).
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        self.service.note_request(
            route,
            time.perf_counter() - started,
            status,
            trace_id=self.headers.get("X-Trace-Id"),
        )

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:
            super().log_message(format, *args)


def make_server(
    service: ChopService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Bind the service to a threading HTTP server (not yet serving)."""
    handler = type("ChopHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: ChopService,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_timeout_s: Optional[float] = None,
) -> None:
    """Run the server until interrupted (the CLI entry point).

    ``SIGTERM`` triggers a graceful drain: admissions stop immediately
    (``/readyz`` flips to 503, new ``POST`` s get the same), running
    jobs get up to the drain timeout to finish, stragglers are
    cancelled cooperatively, and only then does the socket close.
    ``KeyboardInterrupt`` (Ctrl-C) takes the same path.  ``SIGUSR2``
    dumps the flight recorder to the service's flight directory (the
    working directory when unset) without interrupting traffic.
    """
    server = make_server(service, host, port)
    drained = threading.Event()

    def _on_sigusr2(signum: Any, frame: Any) -> None:
        # Black-box pull from a live process; write from a helper
        # thread so the handler returns immediately.
        def _dump() -> None:
            if service.flight_dir:
                service._dump_flight(reason="sigusr2")
            else:
                service.flight.dump_to(
                    f"flight-{int(time.time())}-sigusr2.json"
                )

        threading.Thread(target=_dump, daemon=True).start()

    if hasattr(signal, "SIGUSR2"):
        try:
            signal.signal(signal.SIGUSR2, _on_sigusr2)
        except ValueError:
            pass  # not the main thread; embedders dump directly

    def _drain_and_stop() -> None:
        if drained.is_set():
            return
        drained.set()
        service.drain(timeout_s=drain_timeout_s)
        server.shutdown()

    def _on_sigterm(signum: Any, frame: Any) -> None:
        # serve_forever holds the main thread; drain from a helper so
        # the signal handler returns immediately.
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread (embedded/test use) — SIGTERM handling
        # is the embedder's job; drain() is still callable directly.
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _drain_and_stop()
    finally:
        server.shutdown()
        server.server_close()
        service.close()
