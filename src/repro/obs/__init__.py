"""repro.obs — end-to-end observability for the CHOP stack.

The paper's whole argument is iteration speed: prediction replaces
synthesis so the designer can see *why* a partitioning fails and react.
This package gives the grown system the same property about itself:

* :mod:`repro.obs.tracing` — thread-/process-safe span tracing with
  context-propagated trace ids, a JSONL sink, and deterministic
  re-parenting of worker-process shard spans;
* :mod:`repro.obs.profiling` — an opt-in sampling wall-clock profiler
  for the hot evaluation loop, plus process resource probes;
* :mod:`repro.obs.explain` — per-constraint feasibility breakdowns
  ("chip area on chip2 killed 81% of combinations, worst margin
  -312 mil²");
* :mod:`repro.obs.metrics` — the process-wide metrics registry
  (counters, gauges, labeled histograms with exemplars) every subsystem
  registers into;
* :mod:`repro.obs.prometheus` — text exposition of the registry for
  ``GET /metrics?format=prometheus``;
* :mod:`repro.obs.logging` — structured JSONL logging with trace-id
  correlation, level-filtered via ``$CHOP_LOG``;
* :mod:`repro.obs.slo` — latency/error-rate objectives evaluated from
  the registry, exported as burn gauges and ``GET /slo``;
* :mod:`repro.obs.flight` — the flight recorder: a bounded ring buffer
  of recent completed requests/jobs (``GET /debug/recent``, ``SIGUSR2``
  and automatic 5xx dumps);
* :mod:`repro.obs.render` / :mod:`repro.obs.schema` — the ``repro
  trace show`` tree renderer and the JSONL schema validator CI runs.

Everything is stdlib-only and import-light: ``repro.obs`` never imports
the model packages, so any layer can instrument itself without cycles.
See ``docs/observability.md`` for the span schema and naming.
"""

from repro.obs.explain import (
    ConstraintTally,
    ExplainCollector,
    ExplainReport,
)
from repro.obs.flight import FlightRecorder
from repro.obs.logging import (
    StructuredLogger,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
)
from repro.obs.profiling import SamplingProfiler, peak_rss_bytes
from repro.obs.prometheus import render_prometheus, render_registry
from repro.obs.render import render_trace
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOTracker,
    default_objectives,
)
from repro.obs.schema import validate_span, validate_trace
from repro.obs.tracing import (
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    Span,
    Tracer,
    activate,
    current_span_id,
    current_tracer,
    deterministic_span_id,
    load_trace_file,
    make_span_record,
    new_trace_id,
    span,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "ConstraintTally",
    "Counter",
    "ErrorRateObjective",
    "ExplainCollector",
    "ExplainReport",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LatencyObjective",
    "MetricsRegistry",
    "SLOTracker",
    "SamplingProfiler",
    "Span",
    "StructuredLogger",
    "Tracer",
    "activate",
    "configure_logging",
    "current_span_id",
    "current_tracer",
    "default_objectives",
    "deterministic_span_id",
    "exponential_buckets",
    "get_logger",
    "get_registry",
    "load_trace_file",
    "make_span_record",
    "new_trace_id",
    "peak_rss_bytes",
    "render_prometheus",
    "render_registry",
    "render_trace",
    "span",
    "validate_span",
    "validate_trace",
]
