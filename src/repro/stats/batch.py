"""Vectorized triangular-distribution kernels (numpy).

The closed forms here are element-for-element the same arithmetic as
:func:`repro.stats.distributions.triangular_cdf` — same branch
structure, same ratio-product factorisation, same operation order — so
for identical ``(x, lb, ml, ub)`` inputs the float64 results are
**bitwise equal** to the scalar path.  That is the property the
vectorized search kernels (:mod:`repro.kernels`) build their soundness
argument on, and ``tests/test_kernels.py`` asserts it at every branch
breakpoint (``x`` at/inside/outside the support, mode at either edge,
degenerate ``lb == ml == ub`` supports).

numpy is an optional dependency of the repository; this module imports
it eagerly, so import it lazily from code that must run without numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["triangular_cdf_array"]


def triangular_cdf_array(
    x: "np.ndarray | float",
    lb: np.ndarray,
    ml: np.ndarray,
    ub: np.ndarray,
) -> np.ndarray:
    """Elementwise CDF of triangular distributions with mode ``ml``.

    ``x`` may be a scalar (one limit checked against many supports) or
    an array broadcastable against the parameter arrays.  Parameters
    must satisfy ``lb <= ml <= ub`` elementwise (the :class:`Triplet`
    invariant); this is not re-validated here — the packing layer only
    ever sums valid triplets, which preserves the ordering.

    Degenerate supports (``lb == ub``) give a step function at the
    point mass, exactly as the scalar form.
    """
    lb = np.asarray(lb, dtype=np.float64)
    ml = np.asarray(ml, dtype=np.float64)
    ub = np.asarray(ub, dtype=np.float64)
    x_arr = np.asarray(x, dtype=np.float64)

    span = ub - lb
    left = ml - lb
    right = ub - ml
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        # Rising branch (x < ml): ((x-lb)/span) * ((x-lb)/left); with the
        # mode at the upper edge (right == 0) it covers the whole support.
        rise_num = x_arr - lb
        rising = (rise_num / span) * (rise_num / left)
        # Falling branch (x >= ml): 1 - ((ub-x)/span) * ((ub-x)/right);
        # with the mode at the lower edge (left == 0) it covers the whole
        # support.
        fall_num = ub - x_arr
        falling = 1.0 - (fall_num / span) * (fall_num / right)

    below_mode = x_arr < ml
    out = np.where(
        below_mode,
        np.where(left == 0.0, falling, rising),
        np.where(right == 0.0, rising, falling),
    )
    # Outside the support the CDF saturates; these overwrite any NaN the
    # masked-off branches produced (e.g. 0/0 on degenerate supports).
    out = np.where(x_arr <= lb, 0.0, out)
    out = np.where(x_arr >= ub, 1.0, out)
    # Degenerate point mass: a step at lb (== ub).
    out = np.where(
        span == 0.0, np.where(x_arr >= lb, 1.0, 0.0), out
    )
    return out
