"""Tests for chip packages, chips and pin budgets."""

from __future__ import annotations

import pytest

from repro.chips.chip import (
    CONTROL_PINS_PER_LINK,
    DEDICATED_PINS_PER_MEMORY,
    POWER_GROUND_PINS,
    Chip,
    PinBudget,
    pin_budget,
)
from repro.chips.package import ChipPackage
from repro.chips.presets import mosis_package, mosis_packages
from repro.errors import ChipError


class TestChipPackage:
    def test_paper_table2_values(self):
        packages = mosis_packages()
        assert packages[1].pin_count == 64
        assert packages[2].pin_count == 84
        for pkg in packages.values():
            assert pkg.width_mil == 311.02
            assert pkg.height_mil == 362.20
            assert pkg.pad_delay_ns == 25.0
            assert pkg.pad_area_mil2 == 297.60

    def test_project_area(self):
        pkg = mosis_package(2)
        assert pkg.project_area_mil2 == pytest.approx(112651.444)

    def test_usable_area_subtracts_pads(self):
        pkg = mosis_package(2)
        assert pkg.usable_area_mil2(84) == pytest.approx(
            112651.444 - 84 * 297.60
        )

    def test_more_pins_less_area(self):
        assert mosis_package(1).usable_area_mil2(64) > mosis_package(
            2
        ).usable_area_mil2(84)

    def test_rejects_overbonding(self):
        with pytest.raises(ChipError):
            mosis_package(1).usable_area_mil2(65)

    def test_rejects_negative_bonding(self):
        with pytest.raises(ChipError):
            mosis_package(1).usable_area_mil2(-1)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ChipError):
            ChipPackage("bad", 0.0, 10.0, 10, 1.0, 1.0)
        with pytest.raises(ChipError):
            ChipPackage("bad", 10.0, 10.0, 0, 1.0, 1.0)
        with pytest.raises(ChipError):
            ChipPackage("bad", 10.0, 10.0, 10, -1.0, 1.0)

    def test_pads_consuming_die_rejected(self):
        tiny = ChipPackage("tiny", 10.0, 10.0, 10, 1.0, 50.0)
        with pytest.raises(ChipError):
            tiny.usable_area_mil2(10)

    def test_unknown_package_number(self):
        with pytest.raises(ChipError):
            mosis_package(3)


class TestPinBudget:
    def test_reservation_classes(self, package84):
        budget = pin_budget(package84, communication_links=2,
                            memory_blocks=1)
        assert budget.power_ground == POWER_GROUND_PINS
        assert budget.control == 2 * CONTROL_PINS_PER_LINK
        assert budget.memory_dedicated == DEDICATED_PINS_PER_MEMORY
        assert budget.data == 84 - 4 - 4 - 2

    def test_no_links_no_memory(self, package64):
        budget = pin_budget(package64, 0, 0)
        assert budget.data == 64 - POWER_GROUND_PINS

    def test_overreservation_rejected(self, package64):
        with pytest.raises(ChipError):
            pin_budget(package64, communication_links=40, memory_blocks=0)

    def test_negative_counts_rejected(self, package64):
        with pytest.raises(ChipError):
            pin_budget(package64, -1, 0)
        with pytest.raises(ChipError):
            pin_budget(package64, 0, -1)

    def test_direct_construction_validates(self):
        with pytest.raises(ChipError):
            PinBudget(total=10, power_ground=8, control=4,
                      memory_dedicated=0)

    def test_chip_str(self, package84):
        chip = Chip("chip1", package84)
        assert "chip1" in str(chip)
        assert "MOSIS-84" in str(chip)
