"""Exhaustive bipartition enumeration for small graphs.

Used by tests and ablation benches to verify that heuristic cuts are
close to optimal on graphs small enough to enumerate.
:func:`exhaustive_bipartition_search` turns the generator into a batch
evaluation: every valid cut is pushed through a full CHOP check, with
the inner combination walk optionally parallelised by a shared
:class:`repro.engine.EvaluationEngine`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.partition import Partition
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError, PredictionError
from repro.obs.tracing import span as trace_span
from repro.search.results import SearchResult

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.chop import ChopSession
    from repro.engine.workers import EvaluationEngine

#: Enumeration is 2^(n-1); refuse beyond this many operations.
MAX_OPS = 18


def exhaustive_bipartitions(
    graph: DataFlowGraph,
    acyclic_only: bool = True,
) -> Iterator[Tuple[Set[str], Set[str]]]:
    """Yield every proper bipartition (A, B) of the operations.

    With ``acyclic_only`` (the default) only CHOP-valid cuts — where no
    data flows from B back to A — are yielded.  The first operation in id
    order is pinned to side A to break the A/B symmetry.
    """
    ops = sorted(graph.operations)
    if len(ops) < 2:
        raise PartitioningError("need at least two operations")
    if len(ops) > MAX_OPS:
        raise PartitioningError(
            f"{len(ops)} operations exceed the exhaustive limit of "
            f"{MAX_OPS}"
        )
    first, rest = ops[0], ops[1:]
    for size in range(0, len(rest) + 1):
        for chosen in itertools.combinations(rest, size):
            side_a = {first, *chosen}
            side_b = set(ops) - side_a
            if not side_b:
                continue
            if acyclic_only and not _one_way(graph, side_a, side_b):
                continue
            yield side_a, side_b


def _one_way(
    graph: DataFlowGraph, side_a: Set[str], side_b: Set[str]
) -> bool:
    """True when no value flows from side B into side A."""
    for op_id in side_a:
        for pred in graph.predecessors(op_id):
            if pred in side_b:
                return False
    return True


# ----------------------------------------------------------------------
# batch evaluation of every cut
# ----------------------------------------------------------------------
@dataclass(slots=True)
class PartitionSearchOutcome:
    """Result of evaluating a batch of candidate partitionings."""

    candidates: int = 0
    infeasible: int = 0
    cpu_seconds: float = 0.0
    best_result: Optional[SearchResult] = None
    best_partitions: List[Partition] = field(default_factory=list)

    def better(self, result: SearchResult) -> bool:
        """Whether ``result`` beats the current best (II, then delay)."""
        design = result.best()
        if design is None:
            return False
        incumbent = (
            self.best_result.best() if self.best_result else None
        )
        if incumbent is None:
            return True
        return (design.ii_main, design.delay_main) < (
            incumbent.ii_main, incumbent.delay_main
        )


def exhaustive_bipartition_search(
    session: "ChopSession",
    chip_a: str,
    chip_b: str,
    heuristic: str = "enumeration",
    engine: Optional["EvaluationEngine"] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> PartitionSearchOutcome:
    """Evaluate *every* valid bipartition of the session's graph.

    Each cut is installed on ``(chip_a, chip_b)`` and checked end to
    end; the per-cut combination walk runs on ``engine`` when one is
    supplied, which is where the wall-clock goes on graphs near
    :data:`MAX_OPS`.  Cuts whose predictions are pruned to nothing count
    as ``infeasible``.  The session's original partitioning is restored
    before returning.  BAD predictions are memoized per operation set
    inside the session, so cuts sharing a side never re-predict it.
    """
    outcome = PartitionSearchOutcome()
    original = session.partitioning()
    started = time.perf_counter()
    with trace_span(
        "baseline.exhaustive", heuristic=heuristic,
        chips=f"{chip_a},{chip_b}",
    ) as sp:
        eval_before = session.eval_stats()
        try:
            for side_a, side_b in exhaustive_bipartitions(session.graph):
                outcome.candidates += 1
                session.set_partitions(
                    [
                        Partition.of("A", side_a),
                        Partition.of("B", side_b),
                    ],
                    {"A": chip_a, "B": chip_b},
                )
                try:
                    result = session.check(
                        heuristic=heuristic, engine=engine, cancel=cancel
                    )
                except PredictionError:
                    outcome.infeasible += 1
                    continue
                if result.best() is None:
                    outcome.infeasible += 1
                    continue
                if outcome.better(result):
                    outcome.best_result = result
                    outcome.best_partitions = [
                        Partition.of("A", side_a),
                        Partition.of("B", side_b),
                    ]
        finally:
            session.set_partitions(
                list(original.partitions.values()),
                {
                    name: original.chip_of(name)
                    for name in original.partitions
                },
            )
            outcome.cpu_seconds = time.perf_counter() - started
            sp.add("candidates", outcome.candidates)
            sp.add("infeasible", outcome.infeasible)
            eval_after = session.eval_stats()
            # How much of the sweep the shared evaluation context
            # absorbed: cuts re-using a side hit instead of re-predict.
            sp.add(
                "context_hits",
                eval_after["hits"] - eval_before["hits"],
            )
            sp.add(
                "context_misses",
                eval_after["misses"] - eval_before["misses"],
            )
    return outcome
