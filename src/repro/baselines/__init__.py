"""Baseline partitioning algorithms for comparison experiments.

The paper's related-work section singles out Kernighan & Lin's min-cut
heuristic [4] and argues it "is not directly applicable for partitioning
of behavioral specifications": minimising cut bits does not track pin
counts or chip areas once behavioral synthesis introduces sequential
behaviour.  This package implements KL (and simple random / exhaustive
generators) so that claim can be measured: the benchmark harness runs
KL's min-cut partitions through CHOP's feasibility analysis and compares
them with the constraint-driven cuts.
"""

from repro.baselines.kernighan_lin import (
    cut_bits,
    edge_weights,
    filter_weights,
    kl_bipartition,
    recursive_bisection,
)
from repro.baselines.random_search import (
    random_level_partitions,
    random_partition_search,
)
from repro.baselines.exhaustive import (
    PartitionSearchOutcome,
    exhaustive_bipartition_search,
    exhaustive_bipartitions,
)
from repro.baselines.repair import make_acyclic

__all__ = [
    "PartitionSearchOutcome",
    "cut_bits",
    "edge_weights",
    "filter_weights",
    "kl_bipartition",
    "recursive_bisection",
    "random_level_partitions",
    "random_partition_search",
    "exhaustive_bipartition_search",
    "exhaustive_bipartitions",
    "make_acyclic",
]
