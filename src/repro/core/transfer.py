"""Data-transfer bandwidth, timing, buffers and transfer modules.

Implements section 2.5 of the paper:

* "the maximum possible bandwidth is used for each data transfer"; the
  bandwidth of a transfer task is "the minimum bandwidth of all chips
  involved", after memory I/O pin effects are deducted;
* the transfer time is the data volume over that bandwidth, and "cannot
  be longer than the initiation interval of the system in order not to
  cause data clashes" (pin counts are hard constraints);
* the buffer requirement is ``B = D * (ceil(W / l) + X / l)``;
* one data-transfer module (DTM) sits on every chip involved in a
  transfer (output mode at the source, input mode elsewhere), each a
  buffer plus a PLA controller sized from the wait and transfer times
  "by the same methods used in BAD".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.bad.controller import PlaEstimate, PlaParameters, pla_estimate
from repro.bad.styles import ClockScheme
from repro.chips.chip import PinBudget
from repro.core.tasks import TransferTask
from repro.errors import InfeasibleError, PredictionError
from repro.library.component import Cell
from repro.stats import Triplet
from repro.units import ceil_div


@dataclass(frozen=True, slots=True)
class TransferEstimate:
    """Bandwidth and duration of one data-transfer task."""

    task: TransferTask
    #: Data pins granted on each involved chip (the shared-bus width).
    pins: int
    #: Transfer duration in transfer-clock cycles.
    transfer_cycles: int
    #: The same duration in main-clock cycles.
    duration_main: int


def transfer_bandwidth_pins(
    task: TransferTask,
    budgets: Mapping[str, PinBudget],
    memory_pin_loads: Mapping[str, int],
) -> int:
    """Pins available to the transfer: the minimum across involved chips.

    Raises :class:`InfeasibleError` when any involved chip has no data
    pin left after reservations and memory I/O — pin counts are hard
    constraints CHOP cannot change.
    """
    pins = None
    for chip in task.chips:
        budget = budgets.get(chip)
        if budget is None:
            raise PredictionError(f"no pin budget for chip {chip!r}")
        free = budget.data - memory_pin_loads.get(chip, 0)
        pins = free if pins is None else min(pins, free)
    if pins is None:
        raise PredictionError(f"task {task.name!r} involves no chips")
    if pins <= 0:
        raise InfeasibleError(
            f"task {task.name!r}: no data pins available on "
            f"{'/'.join(task.chips)} after reservations and memory I/O"
        )
    return pins


def estimate_transfer(
    task: TransferTask,
    budgets: Mapping[str, PinBudget],
    memory_pin_loads: Mapping[str, int],
    clocks: ClockScheme,
) -> TransferEstimate:
    """Duration of one transfer at maximum available bandwidth."""
    pins = transfer_bandwidth_pins(task, budgets, memory_pin_loads)
    transfer_cycles = ceil_div(task.bits, pins)
    return TransferEstimate(
        task=task,
        pins=pins,
        transfer_cycles=transfer_cycles,
        duration_main=clocks.transfer_cycles_to_main(transfer_cycles),
    )


def buffer_bits(
    data_bits: int, wait_main: int, transfer_main: int, ii_main: int
) -> int:
    """The paper's buffer formula ``B = D * (ceil(W/l) + X/l)``.

    ``D`` is the transfer's data size, ``W`` the wait time, ``X`` the
    transfer time and ``l`` the initiation interval, all in main-clock
    cycles.  The second term is fractional because of the "stair-like
    nature of the storage requirements" during the transfer itself.
    """
    if ii_main <= 0:
        raise PredictionError(
            f"initiation interval must be positive, got {ii_main}"
        )
    if data_bits < 0 or wait_main < 0 or transfer_main < 0:
        raise PredictionError("buffer terms must be non-negative")
    raw = data_bits * (
        ceil_div(wait_main, ii_main) + transfer_main / ii_main
    )
    return int(math.ceil(raw - 1e-9))


@dataclass(frozen=True, slots=True)
class DataTransferModule:
    """One DTM instance on one chip.

    ``mode`` is ``"output"`` on the data's source chip and ``"input"``
    elsewhere.  ``always_active`` reflects the paper's observation that a
    DTM whose wait exceeds the initiation interval never goes idle.
    """

    task_name: str
    chip: str
    mode: str
    buffer_bits: int
    controller: PlaEstimate
    area_mil2: Triplet
    always_active: bool

    @property
    def control_delay_ns(self) -> float:
        return self.controller.delay_ns


def data_transfer_module(
    task: TransferTask,
    chip: str,
    mode: str,
    estimate: TransferEstimate,
    wait_main: int,
    ii_main: int,
    clocks: ClockScheme,
    register: Cell,
    pla_params: PlaParameters = PlaParameters(),
) -> DataTransferModule:
    """Predict one data-transfer module's buffer, controller and area."""
    if mode not in ("input", "output"):
        raise PredictionError(f"invalid DTM mode {mode!r}")
    bits = buffer_bits(task.bits, wait_main, estimate.duration_main, ii_main)
    # Controller steps count wait + transfer in transfer-clock cycles.
    steps = max(
        1,
        ceil_div(wait_main, clocks.transfer_multiplier)
        + estimate.transfer_cycles,
    )
    inputs = max(1, math.ceil(math.log2(steps + 1))) + 2
    outputs = max(1, ceil_div(estimate.pins, 8)) + 2
    terms = steps + max(1, outputs // 2)
    controller = pla_estimate(inputs, outputs, terms, pla_params)
    buffer_area = Triplet.spread(
        register.area_for_bits(bits), 0.95, 1.10
    ) if bits else Triplet.zero()
    return DataTransferModule(
        task_name=task.name,
        chip=chip,
        mode=mode,
        buffer_bits=bits,
        controller=controller,
        area_mil2=buffer_area + controller.area_mil2,
        always_active=wait_main > ii_main,
    )
