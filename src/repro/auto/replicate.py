"""Logic replication of cut operations (the RePart idea).

A value produced in partition ``i`` and consumed in partition ``j``
costs a transfer task: pins on both chips, transfer-clock cycles on
both schedules.  When the producing operation is cheap relative to the
transfer, *duplicating it into the consuming partition* deletes the
transfer entirely — the consumer computes the value locally from inputs
it (often) already receives.

The pass is deliberately conservative so its semantics guarantee is
easy to state and test:

* only pure compute operations are cloned (never ``MEM_READ`` /
  ``MEM_WRITE`` — the interpreter's memory blocks have order-dependent
  stream semantics, so duplicating an access would change program
  behaviour);
* a clone consumes exactly the original's input values and produces a
  fresh value of identical width; consumers inside the target partition
  are rewired to the clone's value, everything else is untouched;
* clone outputs are never primary outputs.

Since the clone computes the same function of the same values, every
rewired consumer sees bit-identical operands, and
:func:`repro.dfg.evaluate.evaluate_outputs` is byte-identical before
and after the pass (the hypothesis property in the test suite).

Acyclicity is also structural: under the chain invariant
(:mod:`repro.auto.initial`) a cut value runs from part ``i`` to part
``j > i`` and the original's inputs are produced at parts ``<= i``, so
a clone placed in ``j`` only consumes from strictly earlier parts.

A replication is applied only when profitable in transfer bits: the cut
value's width, minus the widths of clone inputs that do not already
enter the target partition.  The caller then re-checks CHOP feasibility
of the replicated partitioning — bit gain is the filter, the session's
verdict is the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.ops import MEMORY_OP_TYPES
from repro.errors import PartitioningError


@dataclass(frozen=True)
class Clone:
    """One applied replication."""

    op_id: str
    clone_id: str
    from_part: int
    to_part: int
    saved_bits: int
    added_bits: int


@dataclass
class ReplicationReport:
    """What the pass did, in transfer bits.

    ``transfer_bits_*`` count every (value, consuming partition)
    crossing once — the multiway generalisation of the KL cut metric
    that matches how CHOP materialises transfer tasks.
    """

    clones: List[Clone] = field(default_factory=list)
    transfer_bits_before: int = 0
    transfer_bits_after: int = 0
    candidates_seen: int = 0

    @property
    def saved_bits(self) -> int:
        return self.transfer_bits_before - self.transfer_bits_after


def transfer_bits(graph: DataFlowGraph, part_of: Dict[str, int]) -> int:
    """Total width of (value, consuming-partition) crossings."""
    total = 0
    for value in graph.values.values():
        if value.producer is None:
            continue
        home = part_of[value.producer]
        consumer_parts = {
            part_of[c] for c in graph.consumers(value.id)
        }
        total += value.width * len(consumer_parts - {home})
    return total


def replicate_cut_ops(
    graph: DataFlowGraph,
    part_of: Dict[str, int],
    max_clones: int = 0,
) -> Tuple[DataFlowGraph, Dict[str, int], ReplicationReport]:
    """Greedy profitable replication; returns (new graph, new parts, report).

    ``part_of`` maps operation id to part index and must satisfy the
    chain invariant (every value flows to an equal-or-later part).
    ``max_clones`` bounds the number of applied replications (0: no
    bound).  The inputs are not mutated.
    """
    report = ReplicationReport(
        transfer_bits_before=transfer_bits(graph, part_of)
    )
    report.transfer_bits_after = report.transfer_bits_before

    # Values entering each part: consumed there, produced elsewhere.
    incoming: Dict[int, Set[str]] = {}
    for op_id, op in graph.operations.items():
        part = part_of[op_id]
        for vid in op.inputs:
            producer = graph.value(vid).producer
            if producer is not None and part_of[producer] != part:
                incoming.setdefault(part, set()).add(vid)

    # Mutable working copies; Operation/Value are frozen, so rewires
    # accumulate in plain dicts and objects are rebuilt at the end.
    op_inputs: Dict[str, List[str]] = {
        op_id: list(op.inputs) for op_id, op in graph.operations.items()
    }
    new_ops: Dict[str, Operation] = {}
    new_values: Dict[str, Value] = dict(graph.values)
    new_parts: Dict[str, int] = dict(part_of)

    def enters(part: int, vid: str) -> bool:
        return vid in incoming.get(part, set())

    # Deterministic scan: producers in topological order, target parts
    # ascending.  Single-level: clones are never themselves candidates.
    for op_id in graph.topological_order():
        op = graph.operation(op_id)
        if op.op_type in MEMORY_OP_TYPES or op.output is None:
            continue
        value = graph.value(op.output)
        home = part_of[op_id]
        consumer_parts = sorted(
            {part_of[c] for c in graph.consumers(value.id)} - {home}
        )
        for target in consumer_parts:
            if target < home:
                raise PartitioningError(
                    f"value {value.id!r} flows backwards from part "
                    f"{home} to part {target}; replication requires a "
                    "chain partitioning"
                )
            report.candidates_seen += 1
            added = sum(
                graph.value(vid).width
                for vid in op.inputs
                if graph.value(vid).producer is not None
                and part_of[graph.value(vid).producer] != target
                and not enters(target, vid)
            )
            if added >= value.width:
                continue  # not profitable
            if max_clones and len(report.clones) >= max_clones:
                break
            clone_id = f"{op_id}__r{target}"
            clone_value_id = f"{value.id}__r{target}"
            if clone_id in graph.operations or clone_value_id in graph.values:
                raise PartitioningError(
                    f"replication id collision on {clone_id!r}"
                )
            new_ops[clone_id] = Operation(
                id=clone_id,
                op_type=op.op_type,
                inputs=tuple(op.inputs),
                output=clone_value_id,
            )
            new_values[clone_value_id] = Value(
                id=clone_value_id,
                width=value.width,
                producer=clone_id,
                is_output=False,
            )
            new_parts[clone_id] = target
            # Rewire the target part's consumers to the local copy.
            for consumer in graph.consumers(value.id):
                if part_of[consumer] != target:
                    continue
                op_inputs[consumer] = [
                    clone_value_id if vid == value.id else vid
                    for vid in op_inputs[consumer]
                ]
            # Update availability: the cut value no longer enters the
            # target; the clone's external inputs now do.
            incoming.setdefault(target, set()).discard(value.id)
            for vid in op.inputs:
                producer = graph.value(vid).producer
                if producer is not None and part_of[producer] != target:
                    incoming.setdefault(target, set()).add(vid)
            report.clones.append(
                Clone(
                    op_id=op_id,
                    clone_id=clone_id,
                    from_part=home,
                    to_part=target,
                    saved_bits=value.width,
                    added_bits=added,
                )
            )

    if not report.clones:
        return graph, new_parts, report

    for op_id, op in graph.operations.items():
        new_ops[op_id] = Operation(
            id=op.id,
            op_type=op.op_type,
            inputs=tuple(op_inputs[op_id]),
            output=op.output,
            memory_block=op.memory_block,
        )
    replicated = DataFlowGraph(graph.name, new_ops, new_values)
    report.transfer_bits_after = transfer_bits(replicated, new_parts)
    return replicated, new_parts, report
