"""The iterative heuristic (paper Figure 5, heuristic I).

"The second heuristic tries to find the minimum system delay for each
feasible performance value (each feasible initiation interval ...).  For
each feasible initiation interval, the heuristic starts with the fastest
predicted implementation for each partition and iteratively considers
more serial implementations of partitions residing on chips whose area
constraint is violated.  Selection of more serial implementations is done
in such a way that the incremental system delay caused by serialization
is minimized" — generally serializing off-critical-path partitions.

Implementation notes mapping to the pseudocode:

* predictions are sorted "first for the initiation interval and then for
  the circuit delay" — :meth:`DesignPrediction.sort_key`;
* ``W_i`` advances to the first implementation *compatible* with the
  trial interval ``l``: a nonpipelined design with interval at most ``l``,
  or a pipelined design running exactly at ``l`` (any other pipelined
  rate is a data-rate mismatch);
* the candidate set ``Q`` is read off the feasibility report's violated
  chip-area checks;
* the expected system delay of each tentative serialization is found by
  a full integration (whose heart is the urgency scheduling the paper
  names).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import FeasibilityCriteria, evaluate_system
from repro.core.integration import integrate
from repro.core.partitioning import Partitioning
from repro.core.tasks import TaskGraph, build_task_graph
from repro.errors import InfeasibleError, PredictionError, SearchCancelled
from repro.library.library import ComponentLibrary
from repro.obs.tracing import span as trace_span
from repro.resilience.degrade import SoftDeadline
from repro.search.results import FeasibleDesign, SearchResult
from repro.search.space import DesignPoint, DesignSpace

#: Bound on serialization rounds per interval; each round either makes
#: progress through some partition's finite prediction list or stops, so
#: this is defensive only.
_MAX_ROUNDS_FACTOR = 4


def iterative_search(
    partitioning: Partitioning,
    predictions: Mapping[str, Sequence[DesignPrediction]],
    clocks: ClockScheme,
    library: ComponentLibrary,
    criteria: FeasibilityCriteria,
    keep_all: bool = False,
    cancel: Optional[Callable[[], bool]] = None,
    soft_deadline_s: Optional[float] = None,
    task_graph: Optional[TaskGraph] = None,
) -> SearchResult:
    """Run the Figure 5 algorithm over every feasible initiation interval.

    ``cancel`` is a cooperative cancellation hook polled between
    serialization rounds; when it returns ``True`` the search raises
    :class:`repro.errors.SearchCancelled`.

    ``soft_deadline_s`` degrades instead of cancelling: once the budget
    elapses the search stops after the current round and returns the
    intervals explored so far with ``degraded=True``.  At least one
    integration trial always runs, so a degraded verdict is never empty
    of evidence.

    ``task_graph`` accepts a pre-built graph for ``partitioning`` (the
    incremental one from :class:`repro.eval.EvaluationContext`); when
    omitted the graph is built from scratch.
    """
    names = sorted(partitioning.partitions)
    missing = [n for n in names if not predictions.get(n)]
    if missing:
        raise PredictionError(f"no predictions for partitions: {missing}")
    sorted_preds: Dict[str, List[DesignPrediction]] = {
        name: sorted(predictions[name], key=DesignPrediction.sort_key)
        for name in names
    }

    if task_graph is None:
        task_graph = build_task_graph(partitioning)
    space = DesignSpace() if keep_all else None
    feasible: List[FeasibleDesign] = []
    trials = 0
    degraded = False
    soft_stop = (
        SoftDeadline(soft_deadline_s)
        if soft_deadline_s is not None else None
    )
    started = time.perf_counter()

    intervals = _feasible_intervals(sorted_preds, criteria, clocks)
    with trace_span(
        "search.iterative", partitions=len(names),
        intervals=len(intervals),
    ) as sp:
        try:
            for l in intervals:
                if degraded:
                    break
                indices = _initial_indices(sorted_preds, names, l)
                if indices is None:
                    continue
                max_rounds = _MAX_ROUNDS_FACTOR * sum(
                    len(sorted_preds[name]) for name in names
                )
                for _round in range(max_rounds):
                    if cancel is not None and cancel():
                        raise SearchCancelled(
                            f"iterative search cancelled after {trials} "
                            f"trials"
                        )
                    if (
                        soft_stop is not None and trials > 0
                        and soft_stop()
                    ):
                        degraded = True
                        break
                    selection = {
                        name: sorted_preds[name][indices[name]]
                        for name in names
                    }
                    trials += 1
                    system, report = _try_integration(
                        partitioning, selection, l, clocks, library,
                        task_graph, criteria, space,
                    )
                    if (
                        system is not None
                        and report is not None
                        and report.feasible
                    ):
                        feasible.append(
                            FeasibleDesign(
                                selection=selection, system=system,
                                report=report,
                            )
                        )
                        break
                    violated = (
                        report.violated_chips()
                        if report is not None else []
                    )
                    candidates = _serialization_candidates(
                        partitioning, violated, names
                    )
                    if not candidates:
                        break  # not an area problem; cannot serialize out
                    choice = _pick_serialization(
                        partitioning, sorted_preds, indices, candidates,
                        l, clocks, library, task_graph, names,
                    )
                    trials += choice.tentative_trials
                    if choice.partition is None:
                        break  # every candidate's list is exhausted
                    indices[choice.partition] = choice.next_index
        finally:
            sp.add("combinations", trials)
            sp.add("feasible", len(feasible))
            if degraded:
                sp.put("degraded", True)

    return SearchResult(
        heuristic="iterative",
        trials=trials,
        feasible=feasible,
        cpu_seconds=time.perf_counter() - started,
        space=space,
        degraded=degraded,
    )


# ----------------------------------------------------------------------
# interval and index management
# ----------------------------------------------------------------------
def _feasible_intervals(
    sorted_preds: Mapping[str, List[DesignPrediction]],
    criteria: FeasibilityCriteria,
    clocks: ClockScheme,
) -> List[int]:
    """Candidate initiation intervals, fastest first.

    Every achievable system interval is the interval of some selected
    implementation (the system rate is set by the slowest partition), so
    the distinct prediction intervals within the performance bound form
    the candidate set.
    """
    limit = int(criteria.performance_ns // clocks.main_cycle_ns)
    intervals = {
        pred.ii_main
        for preds in sorted_preds.values()
        for pred in preds
        if pred.ii_main <= limit
    }
    return sorted(intervals)


def _compatible(pred: DesignPrediction, l: int) -> bool:
    """Whether an implementation can run inside a system of interval l."""
    if pred.pipelined:
        return pred.ii_main == l
    return pred.ii_main <= l


def _first_compatible(
    preds: List[DesignPrediction], start: int, l: int
) -> Optional[int]:
    for index in range(start, len(preds)):
        if _compatible(preds[index], l):
            return index
    return None


def _initial_indices(
    sorted_preds: Mapping[str, List[DesignPrediction]],
    names: List[str],
    l: int,
) -> Optional[Dict[str, int]]:
    indices: Dict[str, int] = {}
    for name in names:
        index = _first_compatible(sorted_preds[name], 0, l)
        if index is None:
            return None
        indices[name] = index
    return indices


# ----------------------------------------------------------------------
# integration and serialization steps
# ----------------------------------------------------------------------
def _try_integration(
    partitioning: Partitioning,
    selection: Mapping[str, DesignPrediction],
    l: int,
    clocks: ClockScheme,
    library: ComponentLibrary,
    task_graph: TaskGraph,
    criteria: FeasibilityCriteria,
    space: Optional[DesignSpace],
):
    try:
        system = integrate(
            partitioning, selection, l, clocks, library,
            task_graph=task_graph,
        )
    except InfeasibleError:
        if space is not None:
            space.record(
                DesignPoint(
                    kind="system",
                    area_mil2=sum(
                        p.area_total.ml for p in selection.values()
                    ),
                    delay_cycles=max(
                        p.latency_main for p in selection.values()
                    ),
                    ii_cycles=l,
                    feasible=False,
                )
            )
        return None, None
    report = evaluate_system(system, criteria)
    if space is not None:
        space.record(
            DesignPoint(
                kind="system",
                area_mil2=sum(
                    u.total_area.ml for u in system.chip_usage.values()
                ),
                delay_cycles=system.delay_main,
                ii_cycles=system.ii_main,
                feasible=report.feasible,
            )
        )
    return system, report


def _serialization_candidates(
    partitioning: Partitioning,
    violated_chips: List[str],
    names: List[str],
) -> List[str]:
    """Partitions on chips whose area constraint is violated (set Q)."""
    candidates: List[str] = []
    for chip in violated_chips:
        candidates.extend(partitioning.partitions_on_chip(chip))
    return sorted(set(candidates) & set(names))


class _SerializationChoice:
    """Result of probing every candidate's next-more-serial design."""

    def __init__(self) -> None:
        self.partition: Optional[str] = None
        self.next_index: int = -1
        self.best_delay: Optional[Tuple[int, int]] = None
        self.tentative_trials: int = 0


def _pick_serialization(
    partitioning: Partitioning,
    sorted_preds: Mapping[str, List[DesignPrediction]],
    indices: Mapping[str, int],
    candidates: List[str],
    l: int,
    clocks: ClockScheme,
    library: ComponentLibrary,
    task_graph: TaskGraph,
    names: List[str],
) -> _SerializationChoice:
    """Tentatively serialize each candidate; keep the min-delay choice.

    Mirrors Figure 5's inner loop: advance W_i, "find the expected system
    delay using the urgency scheduling", restore, and finally commit the
    partition with the minimum expected delay.  A tentative integration
    that fails hard still counts as explored but cannot be chosen.
    """
    choice = _SerializationChoice()
    for candidate in candidates:
        next_index = _first_compatible(
            sorted_preds[candidate], indices[candidate] + 1, l
        )
        if next_index is None:
            continue
        tentative = {
            name: sorted_preds[name][
                next_index if name == candidate else indices[name]
            ]
            for name in names
        }
        choice.tentative_trials += 1
        try:
            system = integrate(
                partitioning, tentative, l, clocks, library,
                task_graph=task_graph,
            )
        except InfeasibleError:
            continue
        # Minimise expected system delay; tie-break on total area then
        # name for determinism.
        delay_key = (
            system.delay_main,
            int(
                sum(u.total_area.ml for u in system.chip_usage.values())
            ),
        )
        if choice.best_delay is None or delay_key < choice.best_delay:
            choice.best_delay = delay_key
            choice.partition = candidate
            choice.next_index = next_index
    return choice
