"""Tests for memory modules and access profiling."""

from __future__ import annotations

import pytest

from repro.dfg.builders import GraphBuilder
from repro.errors import ChipError, PartitioningError
from repro.memory.access import (
    memory_access_profile,
    memory_pin_load,
)
from repro.memory.module import MemoryModule


@pytest.fixture
def memory_graph():
    """Read two words from M_A, combine, write the result to M_B."""
    b = GraphBuilder("mem")
    a0 = b.input("a0")
    a1 = b.input("a1")
    r0 = b.mem_read(a0, "M_A")
    r1 = b.mem_read(a1, "M_A")
    s = b.add(r0, r1, name="s")
    b.mem_write(s, "M_B")
    b.output(s)
    return b.build()


@pytest.fixture
def modules():
    return {
        "M_A": MemoryModule("M_A", words=256, width_bits=16),
        "M_B": MemoryModule("M_B", words=1024, width_bits=16, ports=2),
    }


class TestMemoryModule:
    def test_capacity(self):
        m = MemoryModule("M", words=256, width_bits=16)
        assert m.capacity_bits == 4096

    def test_address_bits(self):
        assert MemoryModule("M", 256, 16).address_bits == 8
        assert MemoryModule("M", 1000, 16).address_bits == 10
        assert MemoryModule("M", 1, 16).address_bits == 1

    def test_interface_pins(self):
        m = MemoryModule("M", words=256, width_bits=16)
        assert m.interface_pins() == 16 + 8

    def test_on_chip_area(self):
        m = MemoryModule("M", 256, 16, area_per_bit_mil2=4.0)
        assert m.on_chip_area_mil2() == 4096 * 4.0

    def test_off_the_shelf_has_no_design_area(self):
        m = MemoryModule("M", 256, 16, off_the_shelf=True)
        assert m.on_chip_area_mil2() == 0.0

    def test_bandwidth(self):
        m = MemoryModule("M", 256, 16, ports=2)
        assert m.bandwidth_bits_per_cycle() == 32

    def test_validation(self):
        with pytest.raises(ChipError):
            MemoryModule("M", 0, 16)
        with pytest.raises(ChipError):
            MemoryModule("M", 16, 16, ports=0)
        with pytest.raises(ChipError):
            MemoryModule("M", 16, 16, access_time_ns=0.0)


class TestAccessProfile:
    def test_counts(self, memory_graph):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        assert profile.reads == {"M_A": 2}
        assert profile.writes == {"M_B": 1}
        assert profile.blocks == ("M_A", "M_B")
        assert profile.accesses("M_A") == 2
        assert profile.total_accesses == 3

    def test_bandwidth_bits(self, memory_graph, modules):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        bandwidth = profile.bandwidth_bits(modules)
        assert bandwidth == {"M_A": 32, "M_B": 16}

    def test_unknown_block_raises(self, memory_graph):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        with pytest.raises(PartitioningError):
            profile.bandwidth_bits({})

    def test_empty_profile_for_compute_ops(self, tiny_graph):
        profile = memory_access_profile(tiny_graph, tiny_graph.operations)
        assert profile.blocks == ()
        assert profile.total_accesses == 0


class TestPinLoad:
    def test_non_resident_blocks_cost_pins(self, memory_graph, modules):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        load = memory_pin_load(profile, modules, resident_blocks=())
        assert load == modules["M_A"].interface_pins() + modules[
            "M_B"
        ].interface_pins()

    def test_resident_blocks_are_free(self, memory_graph, modules):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        load = memory_pin_load(
            profile, modules, resident_blocks=("M_A", "M_B")
        )
        assert load == 0

    def test_unknown_block_raises(self, memory_graph):
        profile = memory_access_profile(
            memory_graph, memory_graph.operations
        )
        with pytest.raises(PartitioningError):
            memory_pin_load(profile, {}, resident_blocks=())
