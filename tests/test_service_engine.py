"""Service-layer integration of the engine and the disk cache.

Drives :class:`ChopService.handle` directly (no socket) — the HTTP
plumbing has its own tests; here the interesting seams are the engine
gauges in ``/metrics``, per-shard job progress, the disk prediction
cache surviving across service instances, and structured 4xx detail for
combination explosions.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import experiment1_session, experiment2_session
from repro.io.project import session_to_dict
from repro.service import ChopService


@pytest.fixture(scope="module")
def project_doc():
    return session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )


@pytest.fixture(scope="module")
def big_project_doc():
    return session_to_dict(experiment2_session(partition_count=3))


def call(service, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    status, doc, _route, _headers = service.handle(method, path, body)
    return status, doc


def upload(service, doc):
    status, payload = call(service, "POST", "/projects", doc)
    assert status in (200, 201)
    return payload["project_id"]


class TestEngineWiring:
    def test_metrics_expose_engine_and_disk_cache(
        self, tmp_path, project_doc
    ):
        service = ChopService(
            workers=1, search_workers=2,
            disk_cache_dir=str(tmp_path / "cache"),
        )
        try:
            pid = upload(service, project_doc)
            status, _ = call(
                service, "POST", f"/projects/{pid}/check",
                {"heuristic": "enumeration"},
            )
            assert status == 200
            status, metrics = call(service, "GET", "/metrics")
            assert status == 200
            assert metrics["engine"]["workers"] == 2
            assert (
                metrics["engine"]["searches_parallel"]
                + metrics["engine"]["searches_serial"]
            ) >= 1
            assert metrics["disk_cache"]["stores"] == 1
            assert metrics["disk_cache"]["misses"] == 1
        finally:
            service.close()

    def test_no_engine_without_search_workers(self, project_doc):
        service = ChopService(workers=1)
        try:
            assert service.engine is None
            assert service.disk_cache is None
            _, metrics = call(service, "GET", "/metrics")
            assert "engine" not in metrics
            assert "disk_cache" not in metrics
        finally:
            service.close()

    def test_enumerate_job_reports_progress(self, big_project_doc):
        service = ChopService(workers=1, search_workers=2)
        try:
            pid = upload(service, big_project_doc)
            status, job_doc = call(
                service, "POST", f"/projects/{pid}/enumerate", {}
            )
            assert status == 202
            job = service.jobs.wait(job_doc["job_id"], timeout=120)
            assert job.state == "done"
            doc = job.to_dict()
            assert "progress" in doc
            assert (
                doc["progress"]["shards_done"]
                == doc["progress"]["shards_total"]
            )
        finally:
            service.close()


class TestDiskCacheAcrossRestarts:
    def test_second_instance_hits_the_shared_cache(
        self, tmp_path, project_doc
    ):
        cache_dir = str(tmp_path / "predictions")
        first = ChopService(workers=1, disk_cache_dir=cache_dir)
        try:
            pid = upload(first, project_doc)
            status, cold = call(
                first, "POST", f"/projects/{pid}/check", {}
            )
            assert status == 200
            assert first.disk_cache.stats()["misses"] == 1
            assert first.disk_cache.stats()["stores"] == 1
        finally:
            first.close()

        second = ChopService(workers=1, disk_cache_dir=cache_dir)
        try:
            pid = upload(second, project_doc)
            status, warm = call(
                second, "POST", f"/projects/{pid}/check", {}
            )
            assert status == 200
            stats = second.disk_cache.stats()
            assert stats["hits"] == 1
            assert stats["stores"] == 0
            warm_doc = dict(warm["result"])
            cold_doc = dict(cold["result"])
            warm_doc.pop("cpu_seconds", None)
            cold_doc.pop("cpu_seconds", None)
            assert warm_doc == cold_doc
        finally:
            second.close()


class TestCombinationExplosionDetail:
    def test_422_with_structured_detail(
        self, monkeypatch, big_project_doc
    ):
        import repro.search.enumeration as enumeration_module

        monkeypatch.setattr(enumeration_module, "MAX_COMBINATIONS", 10)
        service = ChopService(workers=1)
        try:
            pid = upload(service, big_project_doc)
            status, payload = call(
                service, "POST", f"/projects/{pid}/check",
                {"heuristic": "enumeration"},
            )
            assert status == 422
            assert payload["type"] == "CombinationExplosionError"
            detail = payload["detail"]
            assert detail["limit"] == 10
            assert detail["combinations"] > 10
            assert set(detail["list_sizes"]) == {"P1", "P2", "P3"}
        finally:
            service.close()
