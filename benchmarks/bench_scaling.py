"""Scaling of the prediction and search machinery with problem size.

The paper's fast-feedback claim rests on prediction being cheap; these
benches chart how BAD and the search scale with graph size (FFT sweeps)
and library richness, guarding against regressions that would break the
interactive-use story.
"""

from __future__ import annotations

import pytest

from repro.bad.predictor import BADPredictor
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.dfg.benchmarks import fir_filter
from repro.dfg.benchmarks_ext import fft_graph
from repro.library.presets import extended_library


@pytest.mark.parametrize("points", [4, 8, 16])
def test_predictor_scaling_fft(benchmark, points):
    graph = fft_graph(points)
    predictor = BADPredictor(
        extended_library(),
        ClockScheme(300.0),
        ArchitectureStyle(OperationTiming.MULTI_CYCLE),
    )
    preds = benchmark.pedantic(
        lambda: predictor.predict_partition(graph),
        rounds=1, iterations=1,
    )
    assert preds


@pytest.mark.parametrize("taps", [8, 16, 32])
def test_predictor_scaling_fir(benchmark, taps):
    graph = fir_filter(taps)
    predictor = BADPredictor(
        extended_library(),
        ClockScheme(300.0, dp_multiplier=10),
        ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
    )
    preds = benchmark.pedantic(
        lambda: predictor.predict_partition(graph),
        rounds=1, iterations=1,
    )
    assert preds


def test_scaling_summary(benchmark, save_artifact):
    """One artifact charting prediction cost against operation count."""
    import time

    rows = []

    def run():
        rows.clear()
        predictor = BADPredictor(
            extended_library(),
            ClockScheme(300.0),
            ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        )
        for points in (2, 4, 8, 16):
            graph = fft_graph(points)
            started = time.perf_counter()
            preds = predictor.predict_partition(graph)
            elapsed = time.perf_counter() - started
            rows.append((graph.op_count(), len(preds), elapsed))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ops   predictions  seconds"]
    for ops, count, seconds in rows:
        lines.append(f"{ops:>4}  {count:>11}  {seconds:>7.3f}")
    save_artifact("scaling_predictor.txt", "\n".join(lines))
    # Largest graph still predicts in interactive time.
    assert rows[-1][2] < 60.0
