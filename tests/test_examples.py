"""Smoke tests: every example script runs to completion.

The examples are documentation; these tests keep them honest against
API drift.  Each main() is executed in-process with stdout captured.
"""

from __future__ import annotations

import importlib
import sys

import pytest

sys.path.insert(0, "examples")

EXAMPLES = [
    "quickstart",
    "design_space_exploration",
    "chip_set_tradeoff",
    "memory_partitioning",
    "auto_partition_kl",
    "advisor_and_power",
    "figure2_scenario",
]


@pytest.mark.parametrize("module_name", EXAMPLES)
def test_example_runs(module_name, capsys):
    module = importlib.import_module(module_name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{module_name} printed nothing"


def test_quickstart_reports_feasible_design(capsys):
    module = importlib.import_module("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "Feasible, non-inferior designs" in out
    assert "CHOP has reached this prediction" in out


def test_figure2_scenario_builds_task_graph(capsys):
    module = importlib.import_module("figure2_scenario")
    module.main()
    out = capsys.readouterr().out
    assert "xfer:P1->P2" in out
    assert "Feasible" in out


def test_memory_example_shows_pin_effect(capsys):
    module = importlib.import_module("memory_partitioning")
    module.main()
    out = capsys.readouterr().out
    assert "memory pin load" in out
