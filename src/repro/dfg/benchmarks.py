"""Classic HLS benchmark graphs, including the paper's AR lattice filter.

The paper's experiments use "an AR lattice filter element shown in Figure
6" — a 28-operation graph with 16 multiplications and 12 additions, the
standard AR-filter benchmark of the USC/ADAM group.  The figure is a
drawing, not a netlist, so :func:`ar_lattice_filter` reconstructs the
lattice topology: four cascaded lattice sections of four multiplications
and two additions each, followed by a four-addition combining tree.  The
op mix (16 mul / 12 add), bit width (16) and alternating mul-add critical
path match the published benchmark; the experiments depend only on these.

The other generators (elliptic wave filter, FIR, HAL differential
equation) are the usual companions in the scheduling literature and feed
the extra examples and tests.
"""

from __future__ import annotations

from typing import List

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import SpecificationError


def ar_lattice_filter(width: int = 16) -> DataFlowGraph:
    """The AR lattice filter element of the paper's Figure 6.

    28 operations: 16 multiplications and 12 additions over ``width``-bit
    values.  Two sample inputs and sixteen coefficient inputs; two outputs.
    """
    b = GraphBuilder("ar-lattice-filter", default_width=width)
    u = b.input("u")
    v = b.input("v")
    coefficients = [b.input(f"k{i}") for i in range(1, 17)]

    section_outputs: List[tuple] = []
    top, bottom = u, v
    for section in range(4):
        k = coefficients[section * 4 : section * 4 + 4]
        m1 = b.mul(top, k[0])
        m2 = b.mul(bottom, k[1])
        m3 = b.mul(top, k[2])
        m4 = b.mul(bottom, k[3])
        top = b.add(m1, m2)
        bottom = b.add(m3, m4)
        section_outputs.append((top, bottom))

    # Combining tree: blend the last three sections' outputs (4 additions),
    # completing the 12-addition lattice.
    t1 = b.add(section_outputs[1][0], section_outputs[3][0])
    t2 = b.add(section_outputs[1][1], section_outputs[3][1])
    y1 = b.add(t1, section_outputs[2][0], name="y1")
    y2 = b.add(t2, section_outputs[2][1], name="y2")
    b.output(y1)
    b.output(y2)
    return b.build()


def elliptic_wave_filter(width: int = 16) -> DataFlowGraph:
    """A fifth-order elliptic wave filter in the style of the classic
    34-operation benchmark: 26 additions and 8 multiplications.

    The exact published netlist is not reproduced; this generator builds a
    wave-digital-filter-shaped graph — long addition chains with
    coefficient multiplications on the adaptor ports — with the benchmark's
    op mix and a deep (≈14-level) critical path.
    """
    b = GraphBuilder("elliptic-wave-filter", default_width=width)
    x = b.input("x")
    states = [b.input(f"s{i}") for i in range(1, 8)]
    coeffs = [b.input(f"c{i}") for i in range(1, 9)]

    # Input adaptor chain.
    a1 = b.add(x, states[0])
    a2 = b.add(a1, states[1])
    m1 = b.mul(a2, coeffs[0])
    a3 = b.add(m1, states[0])
    a4 = b.add(m1, states[1])

    # First two-port adaptor pair.
    a5 = b.add(a3, states[2])
    m2 = b.mul(a5, coeffs[1])
    a6 = b.add(m2, a3)
    a7 = b.add(m2, states[2])
    a8 = b.add(a6, a4)

    # Central section.
    a9 = b.add(a8, states[3])
    m3 = b.mul(a9, coeffs[2])
    a10 = b.add(m3, a8)
    a11 = b.add(m3, states[3])
    a12 = b.add(a10, a7)
    m4 = b.mul(a12, coeffs[3])
    a13 = b.add(m4, a12)

    # Second adaptor pair.
    a14 = b.add(a13, states[4])
    m5 = b.mul(a14, coeffs[4])
    a15 = b.add(m5, a13)
    a16 = b.add(m5, states[4])
    a17 = b.add(a15, a11)

    # Output section.
    a18 = b.add(a17, states[5])
    m6 = b.mul(a18, coeffs[5])
    a19 = b.add(m6, a17)
    a20 = b.add(m6, states[5])
    a21 = b.add(a19, a16)
    m7 = b.mul(a21, coeffs[6])
    a22 = b.add(m7, a21)
    a23 = b.add(a22, states[6])
    m8 = b.mul(a23, coeffs[7])
    a24 = b.add(m8, a22)
    a25 = b.add(a24, a20)
    y = b.add(a25, a23, name="y")

    b.output(y)
    b.output(a16)
    b.output(a20)
    graph = b.build()
    counts = graph.op_counts_by_type()
    assert counts[OpType.ADD] == 26 and counts[OpType.MUL] == 8
    return graph


def fir_filter(taps: int = 8, width: int = 16) -> DataFlowGraph:
    """An N-tap FIR filter: N multiplications and an (N-1)-addition tree.

    The addition tree is balanced, giving a critical path of
    ``1 + ceil(log2(N))`` operations — the shallow, multiplier-dominated
    shape that stresses operator allocation rather than scheduling depth.
    """
    if taps < 2:
        raise SpecificationError(f"FIR filter needs at least 2 taps, got {taps}")
    b = GraphBuilder(f"fir-{taps}", default_width=width)
    samples = [b.input(f"x{i}") for i in range(taps)]
    coeffs = [b.input(f"h{i}") for i in range(taps)]
    products = [b.mul(samples[i], coeffs[i]) for i in range(taps)]
    level = products
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(b.add(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
    b.output(level[0])
    return b.build()


def differential_equation(width: int = 16) -> DataFlowGraph:
    """The HAL differential-equation benchmark (Paulin & Knight).

    One Euler step of ``y'' + 3xy' + 3y = 0``: six multiplications, two
    subtractions, two additions and one comparison (11 operations).
    """
    b = GraphBuilder("diffeq", default_width=width)
    x = b.input("x")
    y = b.input("y")
    u = b.input("u")
    dx = b.input("dx")
    a = b.input("a")
    three = b.input("three")

    m1 = b.mul(three, x)          # 3x
    m2 = b.mul(m1, u)             # 3xu
    m3 = b.mul(m2, dx)            # 3xu*dx
    m4 = b.mul(three, y)          # 3y
    m5 = b.mul(m4, dx)            # 3y*dx
    m6 = b.mul(u, dx)             # u*dx

    s1 = b.sub(u, m3)
    u1 = b.sub(s1, m5, name="u1")
    y1 = b.add(y, m6, name="y1")
    x1 = b.add(x, dx, name="x1")
    c = b.op(OpType.COMPARE, x1, a, name="c")

    b.output(u1)
    b.output(y1)
    b.output(x1)
    b.output(c)
    return b.build()
