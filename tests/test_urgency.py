"""Tests for urgency scheduling of tasks over shared pins."""

from __future__ import annotations

import pytest

from repro.core.tasks import TaskGraph, TaskKind, TransferTask
from repro.core.urgency import urgency_schedule
from repro.errors import InfeasibleError, PredictionError


def _pu(name, partition):
    return TransferTask(
        name=name, kind=TaskKind.PROCESS, bits=0, chips=(),
        partition=partition,
    )


def _xfer(name, bits, chips):
    return TransferTask(
        name=name, kind=TaskKind.TRANSFER, bits=bits, chips=chips,
        partition=None,
    )


def _io(name, kind, bits, chip):
    return TransferTask(
        name=name, kind=kind, bits=bits, chips=(chip,), partition=None
    )


@pytest.fixture
def linear_graph():
    """in -> pu:A -> xfer -> pu:B -> out across two chips."""
    tasks = {
        "in:A": _io("in:A", TaskKind.INPUT, 64, "chip1"),
        "pu:A": _pu("pu:A", "A"),
        "xfer:A->B": _xfer("xfer:A->B", 64, ("chip1", "chip2")),
        "pu:B": _pu("pu:B", "B"),
        "out:B": _io("out:B", TaskKind.OUTPUT, 32, "chip2"),
    }
    edges = [
        ("in:A", "pu:A"),
        ("pu:A", "xfer:A->B"),
        ("xfer:A->B", "pu:B"),
        ("pu:B", "out:B"),
    ]
    return TaskGraph(tasks, edges, {"chip1": 0, "chip2": 0})


class TestBasicScheduling:
    def test_chain_makespan(self, linear_graph):
        durations = {"in:A": 2, "pu:A": 10, "xfer:A->B": 2, "pu:B": 8,
                     "out:B": 1}
        pins = {"in:A": 32, "xfer:A->B": 32, "out:B": 32}
        schedule = urgency_schedule(
            linear_graph, durations, pins,
            {"chip1": 64, "chip2": 64}, ii_main=30,
        )
        assert schedule.makespan == 23
        assert schedule.start["in:A"] == 0
        assert schedule.finish["out:B"] == 23

    def test_precedence_respected(self, linear_graph):
        durations = {"in:A": 2, "pu:A": 10, "xfer:A->B": 2, "pu:B": 8,
                     "out:B": 1}
        pins = {"in:A": 32, "xfer:A->B": 32, "out:B": 32}
        schedule = urgency_schedule(
            linear_graph, durations, pins,
            {"chip1": 64, "chip2": 64}, ii_main=30,
        )
        for src, dst in linear_graph.edges:
            assert schedule.finish[src] <= schedule.start[dst]

    def test_waits_zero_in_unconstrained_chain(self, linear_graph):
        durations = {"in:A": 2, "pu:A": 10, "xfer:A->B": 2, "pu:B": 8,
                     "out:B": 1}
        pins = {"in:A": 1, "xfer:A->B": 1, "out:B": 1}
        schedule = urgency_schedule(
            linear_graph, durations, pins,
            {"chip1": 64, "chip2": 64}, ii_main=30,
        )
        assert schedule.wait["xfer:A->B"] == 0
        assert schedule.hold["xfer:A->B"] == 0


class TestPinContention:
    @pytest.fixture
    def contended_graph(self):
        """Two transfers out of the same chip competing for pins."""
        tasks = {
            "pu:A": _pu("pu:A", "A"),
            "xfer:A->B": _xfer("xfer:A->B", 64, ("chip1", "chip2")),
            "xfer:A->C": _xfer("xfer:A->C", 64, ("chip1", "chip3")),
            "pu:B": _pu("pu:B", "B"),
            "pu:C": _pu("pu:C", "C"),
        }
        edges = [
            ("pu:A", "xfer:A->B"),
            ("pu:A", "xfer:A->C"),
            ("xfer:A->B", "pu:B"),
            ("xfer:A->C", "pu:C"),
        ]
        return TaskGraph(
            tasks, edges, {"chip1": 0, "chip2": 0, "chip3": 0}
        )

    def test_contention_serializes_transfers(self, contended_graph):
        durations = {"pu:A": 4, "xfer:A->B": 3, "xfer:A->C": 3,
                     "pu:B": 4, "pu:C": 4}
        pins = {"xfer:A->B": 40, "xfer:A->C": 40}
        schedule = urgency_schedule(
            contended_graph, durations, pins,
            {"chip1": 60, "chip2": 60, "chip3": 60}, ii_main=20,
        )
        # Both transfers need 40 of chip1's 60 pins: they cannot overlap.
        b, c = schedule.start["xfer:A->B"], schedule.start["xfer:A->C"]
        assert abs(b - c) >= 3
        # The later one waited.
        assert max(
            schedule.wait["xfer:A->B"], schedule.wait["xfer:A->C"]
        ) >= 3

    def test_enough_pins_allows_overlap(self, contended_graph):
        durations = {"pu:A": 4, "xfer:A->B": 3, "xfer:A->C": 3,
                     "pu:B": 4, "pu:C": 4}
        pins = {"xfer:A->B": 20, "xfer:A->C": 20}
        schedule = urgency_schedule(
            contended_graph, durations, pins,
            {"chip1": 60, "chip2": 60, "chip3": 60}, ii_main=20,
        )
        assert schedule.start["xfer:A->B"] == schedule.start["xfer:A->C"]

    def test_modulo_occupancy_with_tight_interval(self, contended_graph):
        # With ii=6 and two 3-cycle transfers each needing all pins,
        # the modulo window is exactly full -> still schedulable.
        durations = {"pu:A": 4, "xfer:A->B": 3, "xfer:A->C": 3,
                     "pu:B": 4, "pu:C": 4}
        pins = {"xfer:A->B": 60, "xfer:A->C": 60}
        schedule = urgency_schedule(
            contended_graph, durations, pins,
            {"chip1": 60, "chip2": 60, "chip3": 60}, ii_main=6,
        )
        assert schedule.makespan >= 10

    def test_oversubscribed_interval_infeasible(self, contended_graph):
        # ii=5 cannot hold 2 x 3 cycles of full-pin transfers.
        durations = {"pu:A": 4, "xfer:A->B": 3, "xfer:A->C": 3,
                     "pu:B": 4, "pu:C": 4}
        pins = {"xfer:A->B": 60, "xfer:A->C": 60}
        with pytest.raises(InfeasibleError, match="oversubscribed"):
            urgency_schedule(
                contended_graph, durations, pins,
                {"chip1": 60, "chip2": 60, "chip3": 60}, ii_main=5,
            )


class TestHardRules:
    def test_transfer_longer_than_interval_rejected(self, linear_graph):
        durations = {"in:A": 2, "pu:A": 10, "xfer:A->B": 31, "pu:B": 8,
                     "out:B": 1}
        pins = {"in:A": 1, "xfer:A->B": 1, "out:B": 1}
        with pytest.raises(InfeasibleError, match="data clash"):
            urgency_schedule(
                linear_graph, durations, pins,
                {"chip1": 64, "chip2": 64}, ii_main=30,
            )

    def test_process_task_may_exceed_interval(self, linear_graph):
        # A pipelined PU with latency above the interval is fine.
        durations = {"in:A": 2, "pu:A": 50, "xfer:A->B": 2, "pu:B": 8,
                     "out:B": 1}
        pins = {"in:A": 1, "xfer:A->B": 1, "out:B": 1}
        schedule = urgency_schedule(
            linear_graph, durations, pins,
            {"chip1": 64, "chip2": 64}, ii_main=30,
        )
        assert schedule.makespan == 63

    def test_bad_interval_rejected(self, linear_graph):
        with pytest.raises(PredictionError):
            urgency_schedule(linear_graph, {}, {}, {}, ii_main=0)

    def test_missing_duration_rejected(self, linear_graph):
        with pytest.raises(PredictionError):
            urgency_schedule(
                linear_graph, {"pu:A": 1}, {}, {"chip1": 64, "chip2": 64},
                ii_main=10,
            )


class TestUrgencyOrdering:
    def test_critical_chain_scheduled_first(self):
        """Two transfers compete; the one feeding the longer chain wins."""
        tasks = {
            "pu:A": _pu("pu:A", "A"),
            "xfer:A->B": _xfer("xfer:A->B", 64, ("chip1", "chip2")),
            "xfer:A->C": _xfer("xfer:A->C", 64, ("chip1", "chip3")),
            "pu:B": _pu("pu:B", "B"),      # long downstream work
            "pu:C": _pu("pu:C", "C"),      # short downstream work
        }
        edges = [
            ("pu:A", "xfer:A->B"),
            ("pu:A", "xfer:A->C"),
            ("xfer:A->B", "pu:B"),
            ("xfer:A->C", "pu:C"),
        ]
        tg = TaskGraph(tasks, edges, {})
        durations = {"pu:A": 2, "xfer:A->B": 3, "xfer:A->C": 3,
                     "pu:B": 30, "pu:C": 2}
        pins = {"xfer:A->B": 50, "xfer:A->C": 50}
        schedule = urgency_schedule(
            tg, durations, pins,
            {"chip1": 60, "chip2": 60, "chip3": 60}, ii_main=20,
        )
        # The urgent (long-chain) transfer goes first.
        assert schedule.start["xfer:A->B"] < schedule.start["xfer:A->C"]
