"""Random level-respecting partition generation.

Random baselines sample *downward-closed* cuts — partitions formed by
splitting the ASAP level sequence at random boundaries — so every sample
is a valid CHOP partitioning (acyclic between partitions) and the
comparison against the horizontal-cut scheme isolates the effect of
boundary placement rather than validity repair.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError


def random_level_partitions(
    graph: DataFlowGraph,
    count: int,
    rng: random.Random,
) -> List[Set[str]]:
    """``count`` partitions from random level-boundary placement.

    ``rng`` must be supplied by the caller: experiments stay reproducible
    by seeding it.
    """
    if count < 1:
        raise PartitioningError(f"count must be >= 1, got {count}")
    levels: Dict[str, int] = {}
    for op_id in graph.topological_order():
        preds = graph.predecessors(op_id)
        levels[op_id] = 1 + max((levels[p] for p in preds), default=0)
    max_level = max(levels.values(), default=0)
    if max_level < count:
        raise PartitioningError(
            f"graph has {max_level} levels; cannot make {count} partitions"
        )
    boundaries = sorted(rng.sample(range(1, max_level), count - 1))
    edges = [0] + boundaries + [max_level]
    parts: List[Set[str]] = []
    for index in range(count):
        low, high = edges[index], edges[index + 1]
        parts.append(
            {op for op, level in levels.items() if low < level <= high}
        )
    if any(not part for part in parts):
        raise PartitioningError("random boundaries produced an empty part")
    return parts
