"""Chip packages, chips and pin budgeting.

The paper's chip-set information "is in the form of actual chip packages
to be used", each with project-area dimensions, pin count, pad delay and
I/O pad area (section 2.2, Table 2).  This package models those packages,
the chips instantiated from them, and the pin budget available for data
transfer after power/ground, distributed-controller control signals and
dedicated memory lines are reserved (section 2.4).
"""

from repro.chips.package import ChipPackage
from repro.chips.chip import Chip, PinBudget, pin_budget
from repro.chips.cost import (
    ChipCost,
    CostParameters,
    CostReport,
    die_cost,
    die_yield,
    gross_dies_per_wafer,
    partition_cost,
)
from repro.chips.presets import mosis_packages, mosis_package

__all__ = [
    "ChipPackage",
    "Chip",
    "ChipCost",
    "CostParameters",
    "CostReport",
    "PinBudget",
    "die_cost",
    "die_yield",
    "gross_dies_per_wafer",
    "partition_cost",
    "pin_budget",
    "mosis_packages",
    "mosis_package",
]
