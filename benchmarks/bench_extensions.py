"""Benches for the section-5 extensions: power, scan design, advising.

The paper names these as future work; DESIGN.md tracks them as part of
the reproduction's extended scope, so each gets a regenerable artifact.
"""

from __future__ import annotations

from repro.bad.predictor import BADPredictor, PredictorParameters
from repro.core.feasibility import FeasibilityCriteria
from repro.dfg.benchmarks import ar_lattice_filter
from repro.experiments import experiment1_session
from repro.library.presets import table1_library
from repro.search.advisor import advise_partition_count


def test_power_performance_frontier(benchmark, save_artifact):
    """Power versus performance across one partition's design frontier:
    faster designs burn more milliwatts."""
    rows = []

    def run():
        rows.clear()
        session = experiment1_session(2, 1)
        preds = session.pruned_predictions()["P1"]
        for pred in preds:
            rows.append(
                (pred.ii_main, pred.latency_main,
                 round(pred.power_mw.ml, 1))
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["II    delay  power mW"]
    for ii, delay, power in rows:
        lines.append(f"{ii:>4}  {delay:>5}  {power:>8}")
    save_artifact("extension_power_frontier.txt", "\n".join(lines))
    # Monotone trend along the pruned Pareto frontier.
    powers = [p for _ii, _d, p in rows]
    assert powers == sorted(powers, reverse=True)


def test_power_constraint_prunes_fast_designs(benchmark, save_artifact):
    """A binding power budget removes the fast end of the frontier."""
    outcome = {}

    def run():
        free = experiment1_session(2, 2)
        free_result = free.check("iterative")
        capped = experiment1_session(2, 2)
        capped.criteria = FeasibilityCriteria(
            performance_ns=30_000.0,
            delay_ns=30_000.0,
            system_power_mw=free_result.best().system.power_mw.ml * 0.8,
        )
        try:
            capped_result = capped.check("iterative")
            capped_best = capped_result.best()
        except Exception:
            capped_best = None
        outcome["free"] = free_result.best()
        outcome["capped"] = capped_best
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    free = outcome["free"]
    capped = outcome["capped"]
    lines = [
        f"unconstrained: II {free.ii_main}, power "
        f"{free.system.power_mw.ml:.1f} mW"
    ]
    if capped is None:
        lines.append("with 80% power cap: no feasible implementation")
    else:
        lines.append(
            f"with 80% power cap: II {capped.ii_main}, power "
            f"{capped.system.power_mw.ml:.1f} mW"
        )
        assert capped.system.power_mw.ml < free.system.power_mw.ml
        assert capped.ii_main >= free.ii_main
    save_artifact("extension_power_constraint.txt", "\n".join(lines))


def test_scan_design_overhead(benchmark, save_artifact):
    """Design-for-test overhead on area and clock (section-5 testability
    extension)."""
    outcome = {}

    def run():
        graph = ar_lattice_filter()
        session_args = dict(
            library=table1_library(),
        )
        from repro.bad.styles import (
            ArchitectureStyle, ClockScheme, OperationTiming,
        )

        clocks = ClockScheme(300.0, dp_multiplier=10)
        style = ArchitectureStyle(OperationTiming.SINGLE_CYCLE)
        plain = BADPredictor(
            session_args["library"], clocks, style,
        ).predict_partition(graph)
        scan = BADPredictor(
            session_args["library"], clocks, style,
            params=PredictorParameters(scan_design=True),
        ).predict_partition(graph)
        outcome["plain"] = plain
        outcome["scan"] = scan
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    plain_area = sum(p.area_total.ml for p in outcome["plain"])
    scan_area = sum(p.area_total.ml for p in outcome["scan"])
    overhead_pct = 100.0 * (scan_area / plain_area - 1.0)
    text = (
        f"mean predicted area without scan: "
        f"{plain_area / len(outcome['plain']):.0f} mil^2\n"
        f"mean predicted area with scan:    "
        f"{scan_area / len(outcome['scan']):.0f} mil^2\n"
        f"scan overhead: {overhead_pct:.1f}% of area"
    )
    save_artifact("extension_scan_overhead.txt", text)
    assert 0.0 < overhead_pct < 25.0  # real but modest overhead


def test_partition_advisor(benchmark, save_artifact):
    """The system-level-advisor sweep over partition counts."""
    outcome = {}

    def run():
        outcome["advice"] = advise_partition_count(
            lambda count: experiment1_session(2, count),
            max_partitions=4,
        )
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["rank  option         feasible  II    delay  trials"]
    for rank, advice in enumerate(outcome["advice"], start=1):
        lines.append(
            f"{rank:>4}  {advice.label:<13}  {str(advice.feasible):<8}"
            f"  {advice.ii_main if advice.feasible else '-':>4}"
            f"  {advice.delay_main if advice.feasible else '-':>5}"
            f"  {advice.trials:>6}"
        )
    save_artifact("extension_partition_advisor.txt", "\n".join(lines))
    best = outcome["advice"][0]
    assert best.feasible
    assert best.label in ("3 partitions", "4 partitions")
