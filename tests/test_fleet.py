"""The multi-process serving front (``repro.service.fleet``).

Three layers, cheapest first: the sticky-routing rule as pure unit
tests (ownership must be deterministic — two workers disagreeing on an
owner would split a project's session state); the ``/metrics``
exposition merger against the repo's own Prometheus linter (the reason
the fleet merges families instead of concatenating scrapes); and an
end-to-end forked fleet — sticky ``X-Chop-Worker`` stamps, verdicts
byte-identical to a single-node run, one lintable aggregated scrape,
and a clean fleet-wide SIGTERM drain.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.experiments import experiment1_session, experiment2_session
from repro.io.project import project_fingerprint, session_to_dict
from repro.obs.prometheus import merge_expositions
from repro.service.fleet import (
    MAX_FLEET_WORKERS,
    FleetRouter,
    bind_public_socket,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def load_prometheus_linter():
    """Import ``benchmarks/check_prometheus.py`` as a module."""
    path = REPO_ROOT / "benchmarks" / "check_prometheus.py"
    spec = importlib.util.spec_from_file_location(
        "check_prometheus", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# the sticky-routing rule
# ----------------------------------------------------------------------
class TestRouting:
    def router(self, index=0, workers=3):
        return FleetRouter(
            index=index,
            internal_ports=tuple(9000 + i for i in range(workers)),
            public_port=8080,
        )

    def test_every_worker_agrees_on_ownership(self):
        routers = [self.router(index=i) for i in range(3)]
        session = experiment1_session(partition_count=2)
        fingerprint = project_fingerprint(session_to_dict(session))
        owners = {
            r.owner_of_fingerprint(fingerprint) for r in routers
        }
        assert len(owners) == 1
        assert owners.pop() in range(3)

    def test_project_id_and_fingerprint_route_identically(self):
        router = self.router()
        session = experiment2_session(partition_count=3)
        fingerprint = project_fingerprint(session_to_dict(session))
        project_id = fingerprint[:16]
        assert router.owner_of_project(
            project_id
        ) == router.owner_of_fingerprint(fingerprint)

    def test_malformed_project_id_routes_locally(self):
        assert self.router().owner_of_project("not-hex!") is None

    def test_job_prefix_round_trips(self):
        router = self.router(index=2)
        assert router.job_prefix == "w2-"
        assert router.owner_of_job("w2-job-17") == 2
        assert router.owner_of_job("w0-job-1") == 0
        # Unprefixed (single-node era) and out-of-range ids stay local.
        assert router.owner_of_job("job-1") is None
        assert router.owner_of_job("w9-job-1") is None

    def test_owner_for_post_projects_hashes_the_body(self):
        router = self.router()
        document = session_to_dict(experiment1_session(partition_count=2))
        body = json.dumps(document).encode("utf-8")
        expected = router.owner_of_fingerprint(
            project_fingerprint(document)
        )
        assert router.owner_for("POST", "/projects", body) == expected
        # A malformed upload is answered locally with the usual 400.
        assert router.owner_for("POST", "/projects", b"{oops") is None

    def test_non_sticky_routes_are_local(self):
        router = self.router()
        for path in ("/healthz", "/readyz", "/metrics", "/slo",
                     "/debug/flight", "/"):
            assert router.owner_for("GET", path, None) is None

    def test_worker_cap_enforced(self):
        with pytest.raises(ValueError, match="fleet cap"):
            FleetRouter(
                index=0,
                internal_ports=tuple(range(MAX_FLEET_WORKERS + 1)),
                public_port=8080,
            )

    def test_unreachable_owner_is_a_502(self):
        # Port 1 on loopback: nothing listens, connect fails fast.
        router = FleetRouter(
            index=0, internal_ports=(1, 1), public_port=8080,
            forward_timeout_s=2.0,
        )
        status, payload, route, _headers = router.forward(
            1, "GET", "/projects/abc", None
        )
        assert status == 502
        assert payload["type"] == "fleet_forward"
        assert route == "(forwarded)"
        assert router.stats()["forward_failures"] == 1


# ----------------------------------------------------------------------
# exposition merging: one lintable scrape out of N workers
# ----------------------------------------------------------------------
class TestMergeExpositions:
    WORKER_TEXT = (
        "# HELP chop_http_requests_total Requests by route.\n"
        "# TYPE chop_http_requests_total counter\n"
        'chop_http_requests_total{route="/healthz",status="200"} {n}\n'
        "# HELP chop_eval_seconds Evaluation latency.\n"
        "# TYPE chop_eval_seconds histogram\n"
        'chop_eval_seconds_bucket{le="0.1"} {n}\n'
        'chop_eval_seconds_bucket{le="+Inf"} {n}\n'
        "chop_eval_seconds_sum 0.05\n"
        "chop_eval_seconds_count {n}\n"
    )

    def merged(self):
        return merge_expositions(
            [
                ("0", self.WORKER_TEXT.replace("{n}", "3")),
                ("1", self.WORKER_TEXT.replace("{n}", "5")),
            ]
        )

    def test_one_header_per_family_and_worker_labels(self):
        text = self.merged()
        assert text.count("# TYPE chop_http_requests_total") == 1
        assert text.count("# TYPE chop_eval_seconds") == 1
        assert 'worker="0"' in text and 'worker="1"' in text
        assert (
            'chop_http_requests_total{worker="0",route="/healthz",'
            'status="200"} 3' in text
        )

    def test_merged_output_passes_the_repo_linter(self):
        linter = load_prometheus_linter()
        problems, families = linter.lint(self.merged())
        assert problems == []
        assert "chop_http_requests_total" in families

    def test_concatenation_would_fail_the_linter(self):
        # The control: why the fleet merges instead of concatenating.
        linter = load_prometheus_linter()
        concatenated = (
            self.WORKER_TEXT.replace("{n}", "3")
            + self.WORKER_TEXT.replace("{n}", "5")
        )
        problems, _families = linter.lint(concatenated)
        assert any("duplicate" in p for p in problems)

    def test_source_cap_enforced(self):
        with pytest.raises(ValueError, match="capped"):
            merge_expositions(
                [(str(i), "x_total 1\n") for i in range(65)]
            )

    def test_untyped_strays_get_a_type_line(self):
        text = merge_expositions([("0", "loose_metric 7\n")])
        assert "# TYPE loose_metric untyped" in text
        assert 'loose_metric{worker="0"} 7' in text


# ----------------------------------------------------------------------
# socket plumbing
# ----------------------------------------------------------------------
class TestSockets:
    def test_bind_public_socket_port_zero(self):
        sock = bind_public_socket("127.0.0.1", 0)
        try:
            host, port = sock.getsockname()[:2]
            assert host == "127.0.0.1" and port > 0
        finally:
            sock.close()


# ----------------------------------------------------------------------
# end to end: a real forked fleet
# ----------------------------------------------------------------------
def _get(port, path, timeout=30):
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            dict(response.headers),
        )


def _post(port, path, document, timeout=600):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(document).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return (
            response.status,
            json.loads(response.read().decode("utf-8")),
            dict(response.headers),
        )


@pytest.mark.skipif(
    not hasattr(os, "fork") or os.name == "nt",
    reason="fleet mode forks",
)
class TestFleetEndToEnd:
    @pytest.fixture()
    def fleet(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--procs", "2", "--workers", "1",
                "--drain-timeout", "5",
                "--disk-cache", str(tmp_path / "cache"),
                "--cache-backend", "shared",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            banner = proc.stdout.readline()
            assert "2 workers" in banner, banner
            port = int(
                banner.split("http://127.0.0.1:")[1].split(" ")[0]
            )
            yield proc, port
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

    def test_sticky_routing_identity_metrics_and_drain(self, fleet):
        proc, port = fleet
        status, _body, _headers = _get(port, "/readyz")
        assert status == 200

        # Single-node reference verdicts, computed in-process.
        from repro.service import ChopService

        def strip_timings(verdict):
            verdict.pop("cpu_seconds", None)
            if isinstance(verdict.get("result"), dict):
                verdict["result"].pop("cpu_seconds", None)
            return verdict

        documents, reference = [], []
        for session in (
            experiment1_session(package_number=2, partition_count=2),
            experiment2_session(partition_count=3),
        ):
            documents.append(session_to_dict(session))
        single = ChopService(workers=1)
        try:
            for document in documents:
                _status, created, _headers = (
                    200,
                    single.handle(
                        "POST", "/projects",
                        json.dumps(document).encode(),
                    )[1],
                    None,
                )
                verdict = single.handle(
                    "POST",
                    f"/projects/{created['project_id']}/check",
                    b"{}",
                )[1]
                reference.append(strip_timings(verdict))
        finally:
            single.close()

        # Upload + check through the fleet: every response must carry
        # the owner's X-Chop-Worker stamp, constant per project.
        owners = []
        for document, expected in zip(documents, reference):
            status, created, headers = _post(
                port, "/projects", document
            )
            assert status in (200, 201)
            owner = headers.get("X-Chop-Worker")
            assert owner in ("0", "1")
            project_id = created["project_id"]
            status, verdict, check_headers = _post(
                port, f"/projects/{project_id}/check", {}
            )
            assert status == 200
            assert check_headers.get("X-Chop-Worker") == owner
            assert strip_timings(verdict) == expected
            owners.append(owner)
            # Reads route to the same owner.
            status, _body, read_headers = _get(
                port, f"/projects/{project_id}"
            )
            assert read_headers.get("X-Chop-Worker") == owner

        # Aggregated JSON metrics: one snapshot per worker plus the
        # router block.
        status, body, _headers = _get(port, "/metrics")
        snapshot = json.loads(body)
        assert set(snapshot) == {"fleet", "workers"}
        assert set(snapshot["workers"]) == {"0", "1"}
        assert snapshot["fleet"]["workers"] == 2

        # Aggregated Prometheus scrape: lints clean, and every sample
        # carries the worker label.
        status, text, _headers = _get(
            port, "/metrics?format=prometheus"
        )
        linter = load_prometheus_linter()
        problems, families = linter.lint(text)
        assert problems == []
        assert "chop_requests_total" in families
        assert 'worker="0"' in text and 'worker="1"' in text

        # Fleet drain: SIGTERM to the parent, every worker exits 0.
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=60)
        assert proc.returncode == 0
