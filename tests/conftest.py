"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bad.predictor import BADPredictor
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.feasibility import FeasibilityCriteria
from repro.dfg.benchmarks import (
    ar_lattice_filter,
    differential_equation,
    elliptic_wave_filter,
    fir_filter,
)
from repro.dfg.builders import GraphBuilder
from repro.library.presets import extended_library, table1_library


@pytest.fixture(scope="session")
def ar_graph():
    return ar_lattice_filter()


@pytest.fixture(scope="session")
def ewf_graph():
    return elliptic_wave_filter()


@pytest.fixture(scope="session")
def fir_graph():
    return fir_filter(8)


@pytest.fixture(scope="session")
def diffeq_graph():
    return differential_equation()


@pytest.fixture(scope="session")
def library():
    return table1_library()


@pytest.fixture(scope="session")
def big_library():
    return extended_library()


@pytest.fixture
def tiny_graph():
    """y = (a * b) + c — three inputs, two operations, one output."""
    b = GraphBuilder("tiny")
    a = b.input("a")
    bb = b.input("b")
    c = b.input("c")
    p = b.mul(a, bb)
    y = b.add(p, c, name="y")
    b.output(y)
    return b.build()


@pytest.fixture
def chain_graph():
    """A pure chain of four additions (tests serialization limits)."""
    b = GraphBuilder("chain")
    x = b.input("x")
    k = b.input("k")
    v = x
    for _ in range(4):
        v = b.add(v, k)
    b.output(v)
    return b.build()


@pytest.fixture(scope="session")
def exp1_clocks():
    return ClockScheme(300.0, dp_multiplier=10, transfer_multiplier=1)


@pytest.fixture(scope="session")
def exp2_clocks():
    return ClockScheme(300.0, dp_multiplier=1, transfer_multiplier=1)


@pytest.fixture(scope="session")
def exp1_style():
    return ArchitectureStyle(OperationTiming.SINGLE_CYCLE)


@pytest.fixture(scope="session")
def exp2_style():
    return ArchitectureStyle(OperationTiming.MULTI_CYCLE)


@pytest.fixture(scope="session")
def exp1_criteria():
    return FeasibilityCriteria(performance_ns=30_000.0, delay_ns=30_000.0)


@pytest.fixture(scope="session")
def package64():
    return mosis_package(1)


@pytest.fixture(scope="session")
def package84():
    return mosis_package(2)


@pytest.fixture(scope="session")
def exp1_predictor(library, exp1_clocks, exp1_style):
    return BADPredictor(library, exp1_clocks, exp1_style)


@pytest.fixture(scope="session")
def exp2_predictor(library, exp2_clocks, exp2_style):
    return BADPredictor(library, exp2_clocks, exp2_style)
