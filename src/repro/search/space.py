"""Design-space recording for the keep-everything mode.

"Keeping discarded predictions is only useful when the designer wants to
see the entire design space explorable by the tool" (section 2.1).  The
paper's Figures 7 and 8 plot exactly that: every design considered during
a search, with total and unique counts (13 411 / 699 for experiment 1;
21 828 / 8 764 for the one-partition slice of experiment 2).

:class:`DesignSpace` collects one :class:`DesignPoint` per visited design
— both the per-partition predictions BAD emits and the integrated system
predictions the search tries — and reports totals, unique counts and the
area-delay scatter series the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple


@dataclass(frozen=True, slots=True)
class DesignPoint:
    """One visited design in area-delay space."""

    kind: str  # "partition" or "system"
    area_mil2: float
    delay_cycles: int
    ii_cycles: int
    feasible: Optional[bool] = None

    def signature(self) -> Tuple[str, float, int, int]:
        """Uniqueness key: designs with equal characteristics collapse.

        Area is bucketed to 1000 mil^2 (about 1% of a MOSIS die): designs
        closer than that are indistinguishable at prediction accuracy,
        which is how the paper's figures collapse tens of thousands of
        visited designs into a few hundred unique ones.
        """
        return (
            self.kind,
            round(self.area_mil2 / 1000.0) * 1000.0,
            self.delay_cycles,
            self.ii_cycles,
        )


class DesignSpace:
    """An append-only record of every design a search visits."""

    def __init__(self) -> None:
        self._points: List[DesignPoint] = []
        self._unique: Set[Tuple[str, float, int, int]] = set()

    def record(self, point: DesignPoint) -> None:
        self._points.append(point)
        self._unique.add(point.signature())

    @property
    def total(self) -> int:
        """Designs considered, counting revisits (the figures' totals)."""
        return len(self._points)

    @property
    def unique(self) -> int:
        """Distinct designs considered."""
        return len(self._unique)

    def points(self, kind: Optional[str] = None) -> List[DesignPoint]:
        if kind is None:
            return list(self._points)
        return [p for p in self._points if p.kind == kind]

    def scatter_series(
        self, kind: Optional[str] = None
    ) -> List[Tuple[float, int]]:
        """(area, delay) pairs of the distinct designs, figure-style."""
        seen: Set[Tuple[str, float, int, int]] = set()
        series: List[Tuple[float, int]] = []
        for point in self._points:
            if kind is not None and point.kind != kind:
                continue
            sig = point.signature()
            if sig in seen:
                continue
            seen.add(sig)
            series.append((point.area_mil2, point.delay_cycles))
        return series

    def __len__(self) -> int:
        return len(self._points)
