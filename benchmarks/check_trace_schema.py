"""Validate a JSONL trace file against the repro.obs span schema.

The CI observability job runs a traced ``repro check`` and pipes the
resulting file through this script::

    python benchmarks/check_trace_schema.py trace.jsonl \
        --require-names session.check,search.enumeration,engine.run,engine.shard,engine.merge

Every line must parse as JSON, every record must satisfy
:func:`repro.obs.schema.validate_span`, the records together must form a
consistent tree (:func:`repro.obs.schema.validate_trace`), and — with
``--require-names`` — every named span kind must appear at least once.
Exit status 0 on a clean trace, 1 with one diagnostic per problem
otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_file", help="path to a JSONL trace file")
    parser.add_argument(
        "--require-names", default=None, metavar="NAME,NAME,...",
        help="comma-separated span names that must each appear at "
        "least once",
    )
    parser.add_argument(
        "--min-spans", type=int, default=1,
        help="minimum number of span records (default 1)",
    )
    args = parser.parse_args(argv)

    from repro.obs import load_trace_file, validate_trace

    try:
        spans = load_trace_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    problems = validate_trace(spans)
    if len(spans) < args.min_spans:
        problems.append(
            f"expected at least {args.min_spans} spans, found "
            f"{len(spans)}"
        )
    if args.require_names:
        present = {span.get("name") for span in spans}
        for name in args.require_names.split(","):
            name = name.strip()
            if name and name not in present:
                problems.append(
                    f"required span name {name!r} never appears"
                )

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1

    names = sorted({span.get("name", "?") for span in spans})
    traces = sorted({span.get("trace_id", "?") for span in spans})
    print(
        f"OK: {args.trace_file} — {len(spans)} spans across "
        f"{len(traces)} trace(s); span kinds: {', '.join(names)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
