"""Tests for the PLA controller and wiring models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.controller import (
    PlaParameters,
    datapath_controller,
    pla_estimate,
)
from repro.bad.wiring import WiringParameters, wiring_estimate
from repro.errors import PredictionError


class TestPlaEstimate:
    def test_geometry_scales_area(self):
        small = pla_estimate(4, 8, 10)
        large = pla_estimate(8, 16, 40)
        assert large.area_mil2.ml > small.area_mil2.ml

    def test_known_core_area(self):
        params = PlaParameters()
        estimate = pla_estimate(4, 8, 10, params)
        core = (2 * 4 + 8) * 10 * params.cell_area_mil2
        assert estimate.area_mil2.ml == pytest.approx(
            core + params.peripheral_area_mil2
        )

    def test_delay_grows_with_inputs_and_terms(self):
        base = pla_estimate(4, 8, 10)
        more_inputs = pla_estimate(8, 8, 10)
        more_terms = pla_estimate(4, 8, 100)
        assert more_inputs.delay_ns > base.delay_ns
        assert more_terms.delay_ns > base.delay_ns

    def test_bounds_ordered(self):
        estimate = pla_estimate(5, 10, 20)
        area = estimate.area_mil2
        assert area.lb < area.ml < area.ub

    def test_rejects_bad_dimensions(self):
        with pytest.raises(PredictionError):
            pla_estimate(-1, 8, 10)
        with pytest.raises(PredictionError):
            pla_estimate(4, 0, 10)
        with pytest.raises(PredictionError):
            pla_estimate(4, 8, 0)

    @given(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50)
    def test_always_positive(self, inputs, outputs, terms):
        estimate = pla_estimate(inputs, outputs, terms)
        assert estimate.area_mil2.lb > 0
        assert estimate.delay_ns > 0


class TestDatapathController:
    def test_state_bits_grow_with_latency(self):
        short = datapath_controller(4, 4, 8, 100, 16)
        long = datapath_controller(64, 4, 8, 100, 16)
        assert long.inputs > short.inputs
        assert long.product_terms > short.product_terms

    def test_outputs_track_resources(self):
        few = datapath_controller(8, 2, 4, 50, 16)
        many = datapath_controller(8, 10, 40, 800, 16)
        assert many.outputs > few.outputs

    def test_rejects_zero_latency(self):
        with pytest.raises(PredictionError):
            datapath_controller(0, 4, 8, 100, 16)


class TestWiring:
    def test_fraction_grows_with_cells(self):
        small = wiring_estimate(10_000.0, 10)
        large = wiring_estimate(10_000.0, 1000)
        assert large.fraction > small.fraction
        assert large.area_mil2.ml > small.area_mil2.ml

    def test_fraction_capped(self):
        estimate = wiring_estimate(10_000.0, 10**9)
        assert estimate.fraction <= WiringParameters().max_fraction

    def test_delay_scales_with_die_size(self):
        small = wiring_estimate(1_000.0, 50)
        large = wiring_estimate(100_000.0, 50)
        assert large.delay_ns > small.delay_ns

    def test_zero_area(self):
        estimate = wiring_estimate(0.0, 0)
        assert estimate.area_mil2.ml == 0.0
        assert estimate.delay_ns == 0.0

    def test_rejects_negative(self):
        with pytest.raises(PredictionError):
            wiring_estimate(-1.0, 10)
        with pytest.raises(PredictionError):
            wiring_estimate(10.0, -1)

    @given(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50)
    def test_bounds_ordered(self, area, cells):
        estimate = wiring_estimate(area, cells)
        assert estimate.area_mil2.lb <= estimate.area_mil2.ml
        assert estimate.area_mil2.ml <= estimate.area_mil2.ub
