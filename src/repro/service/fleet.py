"""Multi-process serving front: one bound port, N worker processes.

The single-process server keeps three kinds of state: resident designer
sessions, the single-flight verdict cache, and the background job
registry.  Scaling out keeps that state **shared-nothing** — a parent
dispatcher binds the public port once and forks N workers, and a
deterministic *sticky routing* rule pins everything per-project to one
worker:

    ``owner(project) = int(project_id, 16) % workers``

where ``project_id`` is the leading 16 hex chars of
:func:`repro.io.project.project_fingerprint`.  Uploads hash the
document body, so a project lands on its owner no matter which worker
accepts the TCP connection; job ids carry a ``w{index}-`` prefix so
polling routes without shared state.  A worker that accepts a request
it does not own forwards it over loopback to the owner's *internal*
listener (which never re-forwards) and relays the response verbatim.
Predictions — the expensive, content-addressed half — are *not* sticky:
the shared cache backend (:class:`repro.cache.SharedPredictionCache`)
carries them fleet-wide through the filesystem.

Socket sharing uses ``SO_REUSEPORT`` where the platform offers it
(every worker gets its own accept queue, kernel load-balanced) and
falls back to accepting on the fork-inherited listening socket
elsewhere — both paths serve the one port the parent bound.

``GET /metrics`` on any worker aggregates the whole fleet: the serving
worker scrapes each peer's internal listener (``?scope=local``) and
merges the per-worker expositions into one lintable scrape with a
``worker`` label injected on every sample
(:func:`repro.obs.prometheus.merge_expositions`).  ``SIGTERM`` to the
parent fans out to every worker, each runs the PR-4 drain contract
(readyz 503, admissions refused, in-flight jobs settled, then exit),
and the parent exits 0 only when every worker drained cleanly.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import threading
import urllib.error
import urllib.request
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.logging import get_logger
from repro.obs.prometheus import merge_expositions
from repro.service.app import ChopService, Response, _Handler

try:
    from repro.io.project import project_fingerprint
except ImportError:  # pragma: no cover - circular-import guard
    project_fingerprint = None  # type: ignore[assignment]

#: Worker-count ceiling — keeps the injected ``worker`` metrics label
#: (and the fan-out of every aggregated scrape) cardinality-capped.
MAX_FLEET_WORKERS = 32

_JOB_PREFIX_RE = re.compile(r"^w(\d+)-")


class FleetRouter:
    """One worker's view of the fleet: ownership, forwarding, merging."""

    def __init__(
        self,
        index: int,
        internal_ports: Sequence[int],
        public_port: int,
        host: str = "127.0.0.1",
        forward_timeout_s: float = 600.0,
    ) -> None:
        if not 0 <= index < len(internal_ports):
            raise ValueError(
                f"worker index {index} out of range for "
                f"{len(internal_ports)} workers"
            )
        if len(internal_ports) > MAX_FLEET_WORKERS:
            raise ValueError(
                f"{len(internal_ports)} workers exceeds the "
                f"{MAX_FLEET_WORKERS}-worker fleet cap"
            )
        self.index = index
        self.internal_ports = tuple(internal_ports)
        self.public_port = public_port
        self.host = host
        self.forward_timeout_s = forward_timeout_s
        self._lock = threading.Lock()
        self._forwarded = 0
        self._forward_failures = 0
        self._scrape_errors = 0

    @property
    def workers(self) -> int:
        return len(self.internal_ports)

    @property
    def job_prefix(self) -> str:
        """Job-id prefix that names this worker (``w{index}-``)."""
        return f"w{self.index}-"

    # ------------------------------------------------------------------
    # the sticky-routing rule
    # ------------------------------------------------------------------
    def owner_of_fingerprint(self, fingerprint: str) -> int:
        """The worker that owns a project fingerprint's session state."""
        return int(fingerprint[:16], 16) % self.workers

    def owner_of_project(self, project_id: str) -> Optional[int]:
        """Owner of a project id (16 hex chars), or None if malformed.

        Malformed ids route locally — any worker answers the 404.
        """
        try:
            return int(project_id, 16) % self.workers
        except ValueError:
            return None

    def owner_of_job(self, job_id: str) -> Optional[int]:
        """Owner encoded in a ``w{index}-job-N`` id, or None."""
        match = _JOB_PREFIX_RE.match(job_id)
        if match is None:
            return None
        index = int(match.group(1))
        return index if index < self.workers else None

    def owner_for(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Optional[int]:
        """The owning worker of one request, or None for local routes.

        Only session- and job-addressed routes are sticky; liveness,
        readiness, metrics, SLO and debug routes answer locally.
        """
        parts = [p for p in path.partition("?")[0].split("/") if p]
        if not parts:
            return None
        if parts[0] == "projects":
            if len(parts) == 1 and method == "POST":
                if project_fingerprint is None or not body:
                    return None
                try:
                    document = json.loads(body.decode("utf-8"))
                    fingerprint = project_fingerprint(document)
                except Exception:
                    # Malformed uploads are a local 400.
                    return None
                return self.owner_of_fingerprint(fingerprint)
            if len(parts) >= 2:
                return self.owner_of_project(parts[1])
        if parts[0] == "jobs" and len(parts) >= 2:
            return self.owner_of_job(parts[1])
        return None

    # ------------------------------------------------------------------
    # loopback forwarding
    # ------------------------------------------------------------------
    def forward(
        self,
        owner: int,
        method: str,
        path: str,
        body: Optional[bytes],
        trace_id: Optional[str] = None,
    ) -> Response:
        """Relay one request to its owner's internal listener.

        The owner's response — status, JSON payload or pre-rendered
        text, and backpressure headers — comes back verbatim; the local
        route label collapses to ``(forwarded)`` so per-route metrics
        are counted once, on the owner.  An unreachable owner is a 502
        ``fleet_forward`` error (the worker died mid-drain or crashed;
        the balancer retry lands on a live worker whose forward will
        fail the same way until the fleet restarts).
        """
        url = (
            f"http://{self.host}:{self.internal_ports[owner]}{path}"
        )
        headers: Dict[str, str] = {"X-Chop-Fleet-Internal": "1"}
        if trace_id:
            headers["X-Trace-Id"] = trace_id
        data = body if method == "POST" else None
        if method == "POST" and data is None:
            data = b""
        request = urllib.request.Request(
            url, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.forward_timeout_s
            ) as response:
                raw = response.read()
                status = response.status
                response_headers = response.headers
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            status = exc.code
            response_headers = exc.headers
        except (urllib.error.URLError, OSError) as exc:
            with self._lock:
                self._forward_failures += 1
            return (
                502,
                {
                    "error": (
                        f"worker {owner} (owner of {method} {path}) "
                        f"is unreachable: {exc}"
                    ),
                    "type": "fleet_forward",
                },
                "(forwarded)",
                {},
            )
        with self._lock:
            self._forwarded += 1
        content_type = response_headers.get("Content-Type") or ""
        if "json" in content_type:
            try:
                payload: Any = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = raw.decode("utf-8", "replace")
        else:
            payload = raw.decode("utf-8", "replace")
        extra = {}
        for name in ("Retry-After", "X-Chop-Worker"):
            value = response_headers.get(name)
            if value:
                extra[name] = value
        return status, payload, "(forwarded)", extra

    # ------------------------------------------------------------------
    # fleet-wide /metrics
    # ------------------------------------------------------------------
    def _fetch(self, worker: int, path: str) -> bytes:
        url = f"http://{self.host}:{self.internal_ports[worker]}{path}"
        request = urllib.request.Request(
            url, headers={"X-Chop-Fleet-Internal": "1"}
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.read()

    def _peer_texts(self, path: str) -> List[Tuple[int, Optional[bytes]]]:
        out: List[Tuple[int, Optional[bytes]]] = []
        for worker in range(self.workers):
            if worker == self.index:
                continue
            try:
                out.append((worker, self._fetch(worker, path)))
            except (urllib.error.URLError, OSError):
                with self._lock:
                    self._scrape_errors += 1
                out.append((worker, None))
        return out

    def aggregate_prometheus(self, local_text: str) -> str:
        """Merge every worker's exposition into one lintable scrape."""
        expositions: List[Tuple[str, str]] = [
            (str(self.index), local_text)
        ]
        peers = self._peer_texts("/metrics?format=prometheus&scope=local")
        for worker, raw in peers:
            if raw is not None:
                expositions.append((str(worker), raw.decode("utf-8")))
        expositions.sort(key=lambda pair: int(pair[0]))
        return merge_expositions(expositions, label="worker")

    def aggregate_json(self, local_snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Fleet JSON metrics: per-worker snapshots plus router stats."""
        workers: Dict[str, Any] = {str(self.index): local_snapshot}
        for worker, raw in self._peer_texts("/metrics?scope=local"):
            if raw is None:
                workers[str(worker)] = {"error": "unreachable"}
                continue
            try:
                workers[str(worker)] = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                workers[str(worker)] = {"error": "undecodable"}
        return {"fleet": self.stats(), "workers": workers}

    def stats(self) -> Dict[str, Any]:
        """Router gauges for the ``fleet`` metrics block."""
        with self._lock:
            return {
                "workers": self.workers,
                "index": self.index,
                "forwarded": self._forwarded,
                "forward_failures": self._forward_failures,
                "scrape_errors": self._scrape_errors,
            }


# ----------------------------------------------------------------------
# sockets and servers
# ----------------------------------------------------------------------
def bind_public_socket(
    host: str, port: int, reuseport: bool = False
) -> socket.socket:
    """Bind and listen on the fleet's public address (port 0 allowed).

    ``reuseport`` marks the socket ``SO_REUSEPORT`` where the platform
    has it — a later listener (a forked worker building its own accept
    queue) may then bind the same address; every socket on the address
    must carry the option, so the parent sets it up front.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport and hasattr(socket, "SO_REUSEPORT"):
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        except OSError:
            pass  # fall back to sharing the inherited descriptor
    sock.bind((host, port))
    sock.listen(128)
    return sock


def _reuseport_listener(host: str, port: int) -> Optional[socket.socket]:
    """A fresh SO_REUSEPORT listener on (host, port), or None."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return None
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(128)
    except OSError:
        sock.close()
        return None
    return sock


def server_over(
    sock: socket.socket, service: ChopService, internal: bool = False
) -> ThreadingHTTPServer:
    """A threading HTTP server accepting on an already-bound socket."""
    handler = type(
        "ChopFleetHandler",
        (_Handler,),
        {"service": service, "internal": internal},
    )
    host, port = sock.getsockname()[:2]
    server = ThreadingHTTPServer(
        (host, port), handler, bind_and_activate=False
    )
    server.socket.close()  # replace the unbound placeholder socket
    server.socket = sock
    server.server_address = (host, port)
    server.server_name = host
    server.server_port = port
    server.daemon_threads = True
    return server


# ----------------------------------------------------------------------
# worker process body
# ----------------------------------------------------------------------
def _run_worker(
    index: int,
    public_sock: socket.socket,
    internal_sock: socket.socket,
    internal_ports: Sequence[int],
    public_addr: Tuple[str, int],
    make_service: Callable[[FleetRouter], ChopService],
    ready_fd: int,
    drain_timeout_s: Optional[float],
) -> None:
    """Everything one forked worker does; never returns (``os._exit``)."""
    log = get_logger("fleet")
    exit_code = 1
    try:
        host, port = public_addr
        own = _reuseport_listener(host, port)
        if own is not None:
            # SO_REUSEPORT path: this worker gets its own kernel accept
            # queue; drop the fork-inherited descriptor.
            public_sock.close()
            public_sock = own
        router = FleetRouter(
            index=index,
            internal_ports=internal_ports,
            public_port=port,
            host="127.0.0.1",
        )
        service = make_service(router)
        public_server = server_over(public_sock, service, internal=False)
        internal_server = server_over(
            internal_sock, service, internal=True
        )
        drained = threading.Event()

        def _drain_and_stop() -> None:
            if drained.is_set():
                return
            drained.set()
            service.drain(timeout_s=drain_timeout_s)
            public_server.shutdown()
            internal_server.shutdown()

        def _on_sigterm(signum: Any, frame: Any) -> None:
            threading.Thread(target=_drain_and_stop, daemon=True).start()

        signal.signal(signal.SIGTERM, _on_sigterm)
        signal.signal(signal.SIGINT, _on_sigterm)
        if hasattr(signal, "SIGUSR2"):
            signal.signal(
                signal.SIGUSR2,
                lambda s, f: threading.Thread(
                    target=service._dump_flight,
                    kwargs={"reason": "sigusr2"},
                    daemon=True,
                ).start(),
            )

        internal_thread = threading.Thread(
            target=internal_server.serve_forever, daemon=True
        )
        internal_thread.start()
        os.write(ready_fd, b"x")  # listeners are live; parent may let go
        os.close(ready_fd)
        try:
            public_server.serve_forever()
        except KeyboardInterrupt:
            _drain_and_stop()
        finally:
            public_server.server_close()
            internal_server.shutdown()
            internal_server.server_close()
            service.close()
        exit_code = 0
    except Exception as exc:  # pragma: no cover - crash diagnostics
        log.error("fleet worker crashed", worker=index, error=str(exc))
    finally:
        os._exit(exit_code)


# ----------------------------------------------------------------------
# parent dispatcher
# ----------------------------------------------------------------------
def serve_fleet(
    make_service: Callable[[FleetRouter], ChopService],
    host: str = "127.0.0.1",
    port: int = 8080,
    procs: int = 2,
    drain_timeout_s: Optional[float] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> int:
    """Bind once, fork ``procs`` workers, supervise until drained.

    The parent holds no service state — it binds the public socket,
    pre-binds one loopback *internal* socket per worker (the forwarding
    and scrape plane), forks, and then only relays signals: ``SIGTERM``
    / ``SIGINT`` fan out to every worker, which runs the standard drain
    and exits.  Returns 0 only when every worker exited 0 — the fleet
    drain contract CI asserts.

    ``make_service`` runs *in the worker process, after the fork* with
    that worker's :class:`FleetRouter`; the parent never constructs a
    service, so no threads or pools leak across ``fork()``.
    """
    if not 1 <= procs <= MAX_FLEET_WORKERS:
        raise ValueError(
            f"procs must be in 1..{MAX_FLEET_WORKERS}, got {procs}"
        )
    if not hasattr(os, "fork"):
        raise RuntimeError(
            "this platform cannot fork; run one process per port "
            "behind an external balancer instead"
        )
    log = get_logger("fleet")
    public_sock = bind_public_socket(host, port, reuseport=True)
    bound_host, bound_port = public_sock.getsockname()[:2]
    internal_socks = [
        bind_public_socket("127.0.0.1", 0) for _ in range(procs)
    ]
    internal_ports = tuple(
        sock.getsockname()[1] for sock in internal_socks
    )
    read_fd, write_fd = os.pipe()
    children: List[int] = []
    for index in range(procs):
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            for other, sock in enumerate(internal_socks):
                if other != index:
                    sock.close()
            _run_worker(
                index,
                public_sock,
                internal_socks[index],
                internal_ports,
                (bound_host, bound_port),
                make_service,
                write_fd,
                drain_timeout_s,
            )
            raise AssertionError("worker returned")  # pragma: no cover
        children.append(pid)
    os.close(write_fd)

    # Wait for every worker's listeners before releasing the parent's
    # copies — on the SO_REUSEPORT path the inherited descriptor must
    # stay open until each worker has bound its own queue.
    ready = 0
    while ready < procs:
        chunk = os.read(read_fd, procs - ready)
        if not chunk:
            break
        ready += len(chunk)
    os.close(read_fd)
    public_sock.close()
    for sock in internal_socks:
        sock.close()

    # Announce only now: every worker has its listeners live, so the
    # banner doubles as the readiness signal — a client that connects
    # right after reading it cannot land in the parent's (now closed)
    # accept queue and be reset.
    if announce is not None:
        announce(
            f"chop-repro serving on http://{bound_host}:{bound_port} "
            f"({procs} workers, internal ports {list(internal_ports)})"
        )

    terminated = threading.Event()

    def _fan_out(signum: Any, frame: Any) -> None:
        if terminated.is_set():
            return
        terminated.set()
        for pid in children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _fan_out)
    signal.signal(signal.SIGINT, _fan_out)

    exit_codes: Dict[int, int] = {}
    for pid in children:
        while True:
            try:
                _, status = os.waitpid(pid, 0)
            except InterruptedError:
                continue
            except ChildProcessError:
                status = 0
            break
        exit_codes[pid] = os.waitstatus_to_exitcode(status)
    failures = {
        pid: code for pid, code in exit_codes.items() if code != 0
    }
    if failures:
        log.error("fleet workers exited non-zero", failures=str(failures))
        return 1
    return 0
