"""Multilevel coarsening: greedy heavy-edge matching over cluster DAGs.

The auto-partitioner never partitions a 1000-operation graph directly:
it first *contracts* the data-flow graph into a hierarchy of coarse
cluster graphs (the classic multilevel scheme of hMETIS / RePart /
ChipletPart), partitions the coarsest level, and refines while
projecting back down.  :class:`ClusterGraph` is the working
representation at every level: clusters of original operation ids
connected by directed edges weighted in cut bits (derived from the same
value-width table :func:`repro.baselines.kernighan_lin.edge_weights`
exposes).

Because CHOP's prediction model requires the partition-level dependency
graph to be acyclic (paper section 2.3), coarsening must never create a
cyclic cluster graph — a cycle at a coarse level would force every
projected partitioning through :func:`repro.baselines.repair` surgery.
Two provably safe contraction rules are used:

* **edge rule** — contract a directed edge ``u -> v`` when ``u`` is
  ``v``'s only predecessor or ``v`` is ``u``'s only successor.  Any
  u-to-v path other than the edge itself would visit another neighbour,
  which the rule excludes; disjoint matchings compose safely because
  contraction elsewhere never adds predecessors/successors to matched
  clusters.
* **sibling rule** — contract two *unconnected* clusters on the same
  longest-path level that share a neighbour.  Edges strictly increase
  longest-path level, so no path exists between same-level clusters in
  either direction, before or after any same-level round.

Edge rounds shrink chains and fan-out trees (filter cascades); sibling
rounds shrink the wide layered graphs (FFT meshes) where the edge rule
stalls.  Rounds alternate until the target cluster count or a stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError


@dataclass
class ClusterGraph:
    """One coarsening level: clusters of operations in a DAG.

    ``members`` maps cluster id to the *original* (finest-level)
    operation ids it contains, so any level can be projected straight
    onto the specification.  ``succ``/``pred`` are directed adjacency
    maps carrying summed value bit widths.
    """

    members: Dict[int, FrozenSet[str]]
    succ: Dict[int, Dict[int, int]] = field(default_factory=dict)
    pred: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def weight(self, cluster: int) -> int:
        """Cluster size in original operations."""
        return len(self.members[cluster])

    def total_weight(self) -> int:
        return sum(len(ops) for ops in self.members.values())

    def __len__(self) -> int:
        return len(self.members)

    def cut_bits(self, part_of: Dict[int, int]) -> int:
        """Total weight of edges crossing the given assignment."""
        total = 0
        for u, targets in self.succ.items():
            for v, weight in targets.items():
                if part_of[u] != part_of[v]:
                    total += weight
        return total

    def topological_order(self) -> List[int]:
        """Cluster ids in dependency order, ties by smallest member id.

        Raises :class:`PartitioningError` on a cycle — by construction
        (see the module docstring) this would be a coarsening bug, and
        silently partitioning a cyclic cluster graph would produce
        partitionings CHOP must reject.
        """
        import heapq

        indegree = {c: len(self.pred.get(c, {})) for c in self.members}
        tie = {c: min(ops) for c, ops in self.members.items()}
        ready = [(tie[c], c) for c, d in indegree.items() if d == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            _, cluster = heapq.heappop(ready)
            order.append(cluster)
            for nxt in self.succ.get(cluster, {}):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    heapq.heappush(ready, (tie[nxt], nxt))
        if len(order) != len(self.members):
            raise PartitioningError(
                "cluster graph became cyclic during coarsening"
            )
        return order

    def levels(self) -> Dict[int, int]:
        """Longest-path level of every cluster (sources at 1)."""
        level: Dict[int, int] = {}
        for cluster in self.topological_order():
            preds = self.pred.get(cluster, {})
            level[cluster] = 1 + max(
                (level[p] for p in preds), default=0
            )
        return level


def base_cluster_graph(graph: DataFlowGraph) -> ClusterGraph:
    """Level 0: one cluster per operation.

    Cluster ids follow sorted operation-id order so the whole hierarchy
    is deterministic for a given graph document.
    """
    ops = sorted(graph.operations)
    index = {op_id: i for i, op_id in enumerate(ops)}
    cg = ClusterGraph(
        members={i: frozenset((op_id,)) for op_id, i in index.items()}
    )
    for value in graph.values.values():
        if value.producer is None:
            continue
        u = index[value.producer]
        for consumer in graph.consumers(value.id):
            v = index[consumer]
            if u == v:
                continue
            cg.succ.setdefault(u, {})
            cg.succ[u][v] = cg.succ[u].get(v, 0) + value.width
            cg.pred.setdefault(v, {})
            cg.pred[v][u] = cg.pred[v].get(u, 0) + value.width
    return cg


def _contract(
    cg: ClusterGraph, pairs: List[Tuple[int, int]]
) -> Tuple[ClusterGraph, Dict[int, int]]:
    """Contract a disjoint matching; returns the new level and the
    cluster-projection map (old id -> surviving id).

    The smaller id of each pair survives, so ids stay stable down the
    hierarchy and uncoarsening is a dictionary lookup.
    """
    into: Dict[int, int] = {c: c for c in cg.members}
    for a, b in pairs:
        keep, drop = (a, b) if a < b else (b, a)
        into[drop] = keep
    members: Dict[int, FrozenSet[str]] = {}
    for cluster, ops in cg.members.items():
        target = into[cluster]
        if target in members:
            members[target] = members[target] | ops
        else:
            members[target] = ops
    merged = ClusterGraph(members=members)
    for u, targets in cg.succ.items():
        cu = into[u]
        for v, weight in targets.items():
            cv = into[v]
            if cu == cv:
                continue
            merged.succ.setdefault(cu, {})
            merged.succ[cu][cv] = merged.succ[cu].get(cv, 0) + weight
            merged.pred.setdefault(cv, {})
            merged.pred[cv][cu] = merged.pred[cv].get(cu, 0) + weight
    return merged, into


def _edge_matching(cg: ClusterGraph) -> List[Tuple[int, int]]:
    """Heavy-edge matching under the safe edge rule."""
    candidates: List[Tuple[int, int, int]] = []
    for u, targets in cg.succ.items():
        only_succ = len(targets) == 1
        for v, weight in targets.items():
            if only_succ or len(cg.pred.get(v, {})) == 1:
                candidates.append((weight, u, v))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    matched: Set[int] = set()
    pairs: List[Tuple[int, int]] = []
    for _weight, u, v in candidates:
        if u in matched or v in matched:
            continue
        matched.add(u)
        matched.add(v)
        pairs.append((u, v))
    return pairs


def _sibling_matching(cg: ClusterGraph) -> List[Tuple[int, int]]:
    """Same-level shared-neighbour matching (the sibling rule).

    For every cluster, its same-level successor (and predecessor)
    neighbours are paired heaviest-first — an O(E log E) approximation
    of full shared-neighbourhood scoring that is plenty for the layered
    graphs this rule exists for.
    """
    level = cg.levels()
    candidates: List[Tuple[int, int, int]] = []
    for maps in (cg.succ, cg.pred):
        for _hub, neighbours in maps.items():
            by_level: Dict[int, List[Tuple[int, int]]] = {}
            for n, weight in neighbours.items():
                by_level.setdefault(level[n], []).append((weight, n))
            for group in by_level.values():
                if len(group) < 2:
                    continue
                group.sort(key=lambda e: (-e[0], e[1]))
                for (w1, a), (w2, b) in zip(group, group[1:]):
                    if b in cg.succ.get(a, {}) or a in cg.succ.get(b, {}):
                        continue  # connected: not siblings
                    lo, hi = (a, b) if a < b else (b, a)
                    candidates.append((min(w1, w2), lo, hi))
    candidates.sort(key=lambda c: (-c[0], c[1], c[2]))
    matched: Set[int] = set()
    pairs: List[Tuple[int, int]] = []
    for _weight, a, b in candidates:
        if a in matched or b in matched:
            continue
        matched.add(a)
        matched.add(b)
        pairs.append((a, b))
    return pairs


@dataclass
class CoarseLevel:
    """One rung of the hierarchy plus how it projects to the finer one."""

    graph: ClusterGraph
    #: Finer-level cluster id -> this level's cluster id.  ``None`` for
    #: the base level.
    projection: Dict[int, int]


def coarsen(
    graph: DataFlowGraph,
    target_clusters: int,
    max_rounds: int = 40,
    max_cluster_weight: int = 0,
) -> List[CoarseLevel]:
    """The full hierarchy, finest first.

    Alternates edge and sibling rounds until the cluster count reaches
    ``target_clusters``, shrinkage stalls, or ``max_rounds`` is spent.
    ``max_cluster_weight`` (0: no bound) keeps any one cluster from
    swallowing a balance-breaking share of the operations.
    """
    if target_clusters < 1:
        raise PartitioningError(
            f"target_clusters must be >= 1, got {target_clusters}"
        )
    base = base_cluster_graph(graph)
    levels: List[CoarseLevel] = [CoarseLevel(graph=base, projection={})]
    current = base
    for _round in range(max_rounds):
        if len(current) <= target_clusters:
            break
        pairs = _edge_matching(current)
        if len(pairs) < max(1, len(current) // 50):
            pairs = _sibling_matching(current)
        if max_cluster_weight > 0:
            pairs = [
                (a, b)
                for a, b in pairs
                if current.weight(a) + current.weight(b)
                <= max_cluster_weight
            ]
        # Never contract below the target: keep the heaviest-gain pairs,
        # which the matchings already order by construction.
        surplus = len(current) - target_clusters
        if len(pairs) > surplus:
            pairs = pairs[:surplus]
        if not pairs:
            break
        current, projection = _contract(current, pairs)
        levels.append(
            CoarseLevel(graph=current, projection=projection)
        )
    return levels
