"""Preset component libraries.

:func:`table1_library` reproduces the paper's Table 1 verbatim — a
3-micron library with three adders, three multipliers, a 1-bit register
and a 1-bit 2:1 multiplexer.  :func:`extended_library` adds the further
operation types (subtract, compare, shift, logic) used by the non-paper
benchmark graphs, with area/delay values interpolated in the same
technology's style.
"""

from __future__ import annotations

from repro.dfg.ops import OpType
from repro.library.component import Cell, Component
from repro.library.library import ComponentLibrary

#: 1-bit register of Table 1: 31 mil^2, 5 ns.
REGISTER = Cell("register", 31.0, 5.0)
#: 1-bit 2:1 multiplexer of Table 1: 18 mil^2, 4 ns.
MUX = Cell("mux", 18.0, 4.0)


def table1_library() -> ComponentLibrary:
    """The paper's Table 1 library (3-micron, 16-bit modules)."""
    return ComponentLibrary(
        name="table1-3micron",
        components=[
            Component("add1", OpType.ADD, 16, 4200.0, 34.0),
            Component("add2", OpType.ADD, 16, 2880.0, 53.0),
            Component("add3", OpType.ADD, 16, 1200.0, 151.0),
            Component("mul1", OpType.MUL, 16, 49000.0, 375.0),
            Component("mul2", OpType.MUL, 16, 9800.0, 2950.0),
            Component("mul3", OpType.MUL, 16, 7100.0, 7370.0),
        ],
        register=REGISTER,
        mux=MUX,
    )


def extended_library() -> ComponentLibrary:
    """Table 1 plus subtracters, comparators, shifters and logic units.

    Subtraction reuses adder geometry (two's-complement adders subtract at
    the same cost); comparison is a stripped adder; shift and logic are
    cheap array cells.  The extra types let the EWF/FIR/diffeq benchmarks
    run through the same prediction pipeline.
    """
    base = table1_library()
    extra = [
        Component("sub1", OpType.SUB, 16, 4300.0, 36.0),
        Component("sub2", OpType.SUB, 16, 2950.0, 56.0),
        Component("sub3", OpType.SUB, 16, 1250.0, 158.0),
        Component("cmp1", OpType.COMPARE, 16, 1900.0, 30.0),
        Component("cmp2", OpType.COMPARE, 16, 800.0, 120.0),
        Component("shift1", OpType.SHIFT, 16, 1500.0, 20.0),
        Component("and1", OpType.AND, 16, 400.0, 8.0),
        Component("or1", OpType.OR, 16, 400.0, 8.0),
        Component("div1", OpType.DIV, 16, 62000.0, 1100.0),
        Component("div2", OpType.DIV, 16, 15000.0, 8800.0),
    ]
    existing = [
        base.component_named(name)
        for name in ("add1", "add2", "add3", "mul1", "mul2", "mul3")
    ]
    return ComponentLibrary(
        name="extended-3micron",
        components=existing + extra,
        register=REGISTER,
        mux=MUX,
    )


def auto_library() -> ComponentLibrary:
    """One fast component per operation type, for the auto-partitioner.

    BAD's prediction cost is (module sets) x (allocation frontier) list
    schedules per partition; the full :func:`extended_library` offers 27
    add/sub/mul module sets, which is the right richness for design-space
    exploration but a ~27x slowdown when a 1000-operation graph only
    needs a feasibility verdict per refinement step.  One component per
    type collapses the module-set enumeration to a single schedule
    family while keeping areas/delays in the Table 1 technology.
    """
    extended = extended_library()
    picks = [
        extended.component_named(name)
        for name in (
            "add1", "mul1", "sub1", "cmp1", "shift1", "and1", "or1",
            "div1",
        )
    ]
    return ComponentLibrary(
        name="auto-3micron",
        components=picks,
        register=REGISTER,
        mux=MUX,
    )
