"""Kernighan-Lin min-cut bipartitioning over data-flow graphs.

The classic heuristic (Kernighan & Lin 1970, the paper's reference [4])
partitions a weighted undirected graph into two halves of prescribed
sizes while minimising the total weight of cut edges.  Here the vertices
are operations and the edge weights are the bit widths of the values
connecting them — the "sum of costs of values cut" the paper says does
not directly correlate with pin requirements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError


def edge_weights(graph: DataFlowGraph) -> Dict[Tuple[str, str], int]:
    """Undirected op-to-op edge weights from shared values.

    O(values) to derive; callers evaluating many cuts of one graph
    (sweep loops, benchmarks) should compute this once and pass it to
    :func:`cut_bits`.
    """
    weights: Dict[Tuple[str, str], int] = {}
    for value in graph.values.values():
        if value.producer is None:
            continue
        for consumer in graph.consumers(value.id):
            a, b = sorted((value.producer, consumer))
            if a == b:
                continue
            key = (a, b)
            weights[key] = weights.get(key, 0) + value.width
    return weights


#: Backwards-compatible private alias.
_edge_weights = edge_weights


def cut_bits(
    graph: DataFlowGraph,
    side_a: Set[str],
    weights: Optional[Dict[Tuple[str, str], int]] = None,
) -> int:
    """Total bit width of values crossing the (side_a, rest) boundary.

    ``weights`` accepts the precomputed :func:`_edge_weights` map of
    ``graph`` so loops evaluating many cuts of the same graph (the KL
    pass itself, the baseline sweeps) pay the O(values) derivation once
    instead of per call.
    """
    unknown = side_a - set(graph.operations)
    if unknown:
        raise PartitioningError(
            f"cut references unknown operations: {sorted(unknown)[:5]}"
        )
    if weights is None:
        weights = edge_weights(graph)
    total = 0
    for (a, b), weight in weights.items():
        if (a in side_a) != (b in side_a):
            total += weight
    return total


def filter_weights(
    weights: Dict[Tuple[str, str], int], op_ids: Set[str]
) -> Dict[Tuple[str, str], int]:
    """Restrict a precomputed weights table to one operation subset.

    Equivalent to ``edge_weights(graph.subgraph_ops(op_ids))``: values
    produced or consumed outside the subset become primary inputs /
    outputs of the induced subgraph and carry no internal edge, which is
    exactly what dropping pairs with an endpoint outside ``op_ids``
    computes — without materialising the subgraph's value table.
    """
    return {
        pair: weight
        for pair, weight in weights.items()
        if pair[0] in op_ids and pair[1] in op_ids
    }


def kl_bipartition(
    graph: DataFlowGraph,
    side_a: Optional[Set[str]] = None,
    max_passes: int = 10,
    weights: Optional[Dict[Tuple[str, str], int]] = None,
) -> Tuple[Set[str], Set[str], int]:
    """One KL run: returns (side A, side B, cut bits).

    Starts from ``side_a`` (default: the first half of the operations in
    id order) and performs KL passes — sequences of tentative best-gain
    swaps with the best prefix committed — until a pass yields no
    improvement.  Side sizes are preserved exactly, as in the original
    formulation ("subgraphs with specified sizes").

    ``weights`` accepts a precomputed :func:`edge_weights` table for
    ``graph`` (see :func:`filter_weights` for deriving one per split
    level), sparing repeated O(values) derivations in sweep loops.
    """
    ops = sorted(graph.operations)
    if len(ops) < 2:
        raise PartitioningError("KL needs at least two operations")
    if side_a is None:
        side_a = set(ops[: len(ops) // 2])
    else:
        side_a = set(side_a)
        if not side_a or side_a >= set(ops):
            raise PartitioningError("side A must be a proper non-empty subset")
    side_b = set(ops) - side_a

    if weights is None:
        weights = edge_weights(graph)
    neighbour: Dict[str, Dict[str, int]] = {op: {} for op in ops}
    for (a, b), weight in weights.items():
        neighbour[a][b] = weight
        neighbour[b][a] = weight

    def d_value(op: str, a_side: Set[str]) -> int:
        """External minus internal connection weight of ``op``."""
        external = internal = 0
        mine = op in a_side
        for other, weight in neighbour[op].items():
            if (other in a_side) == mine:
                internal += weight
            else:
                external += weight
        return external - internal

    for _pass in range(max_passes):
        a_free = set(side_a)
        b_free = set(side_b)
        d = {op: d_value(op, side_a) for op in ops}
        gains: List[int] = []
        swaps: List[Tuple[str, str]] = []
        while a_free and b_free:
            best: Optional[Tuple[int, str, str]] = None
            for a_op in sorted(a_free):
                for b_op in sorted(b_free):
                    gain = (
                        d[a_op] + d[b_op]
                        - 2 * neighbour[a_op].get(b_op, 0)
                    )
                    if best is None or gain > best[0]:
                        best = (gain, a_op, b_op)
            assert best is not None
            gain, a_op, b_op = best
            gains.append(gain)
            swaps.append((a_op, b_op))
            a_free.discard(a_op)
            b_free.discard(b_op)
            # Update D values as if the pair were swapped.
            for op in sorted(a_free):
                d[op] += 2 * neighbour[op].get(a_op, 0)
                d[op] -= 2 * neighbour[op].get(b_op, 0)
            for op in sorted(b_free):
                d[op] += 2 * neighbour[op].get(b_op, 0)
                d[op] -= 2 * neighbour[op].get(a_op, 0)

        # Best prefix of the tentative swap sequence.
        best_total = 0
        best_k = 0
        running = 0
        for k, gain in enumerate(gains, start=1):
            running += gain
            if running > best_total:
                best_total = running
                best_k = k
        if best_k == 0:
            break
        for a_op, b_op in swaps[:best_k]:
            side_a.discard(a_op)
            side_a.add(b_op)
            side_b.discard(b_op)
            side_b.add(a_op)
    return side_a, side_b, cut_bits(graph, side_a, weights=weights)


def recursive_bisection(
    graph: DataFlowGraph,
    count: int,
    weights: Optional[Dict[Tuple[str, str], int]] = None,
) -> List[Set[str]]:
    """``count`` roughly equal parts by repeated KL bisection.

    Splits the largest remaining part until ``count`` parts exist.  The
    parts minimise cut bits, not CHOP feasibility — that contrast is the
    point of the baseline.

    ``weights`` is the graph's precomputed :func:`edge_weights` table;
    each split level sees it filtered down (:func:`filter_weights`)
    instead of re-deriving subgraph weights from the value table — the
    same fix the ``cut_bits`` callers got.  When omitted, the table is
    computed once here and shared across all splits.
    """
    if count < 1:
        raise PartitioningError(f"count must be >= 1, got {count}")
    if count > graph.op_count():
        raise PartitioningError(
            f"cannot split {graph.op_count()} operations into {count} parts"
        )
    if weights is None:
        weights = edge_weights(graph)
    parts: List[Set[str]] = [set(graph.operations)]
    while len(parts) < count:
        parts.sort(key=len, reverse=True)
        largest = parts.pop(0)
        if len(largest) < 2:
            raise PartitioningError(
                "ran out of splittable parts during recursive bisection"
            )
        ordered = sorted(largest)
        seed = set(ordered[: len(ordered) // 2])
        sub = graph.subgraph_ops(largest)
        side_a, side_b, _cut = kl_bipartition(
            sub, seed, weights=filter_weights(weights, largest)
        )
        parts.extend([side_a, side_b])
    return sorted(parts, key=lambda part: min(part))
