"""Incremental task-graph maintenance vs the from-scratch builder.

The identity guarantee of ``repro.eval``: whatever sequence of
section-2.7 mutations a session goes through, the incrementally
maintained task graph is byte-identical — same task dict *order*, same
edge list, same memory pin loads — to ``build_task_graph`` run fresh on
the resulting partitioning.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.core.tasks import build_task_graph
from repro.dfg.benchmarks import ar_lattice_filter
from repro.dfg.builders import GraphBuilder
from repro.errors import PartitioningError
from repro.eval import EvaluationContext, full_ingredients
from repro.experiments import experiment1_session
from repro.library.presets import table1_library
from repro.memory.module import MemoryModule


def assert_graphs_identical(actual, expected):
    """Order-sensitive equality on every TaskGraph surface."""
    assert list(actual.tasks) == list(expected.tasks)
    assert actual.tasks == expected.tasks
    assert actual.edges == expected.edges
    assert actual.memory_pin_loads == expected.memory_pin_loads


def apply_random_migration(session, rng, attempts=30):
    """Try random single-op migrations until one validates."""
    names = sorted(session._partitions)
    for _ in range(attempts):
        src, dst = rng.sample(names, 2)
        ops = sorted(session._partitions[src].op_ids)
        if len(ops) <= 1:
            continue
        try:
            session.migrate_operations(src, dst, [rng.choice(ops)])
            return True
        except PartitioningError:
            continue
    return False


def memory_session():
    """A session whose partitions access a shared memory block."""
    b = GraphBuilder("membench", default_width=16)
    addresses = [b.input(f"a{i}") for i in range(4)]
    reads = [b.mem_read(addr, "M") for addr in addresses]
    total = reads[0]
    for value in reads[1:]:
        total = b.add(total, value)
    b.output(total)
    graph = b.build()
    session = ChopSession(
        graph=graph,
        library=table1_library(),
        clocks=ClockScheme(300.0, dp_multiplier=10),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=60_000, delay_ns=60_000
        ),
        memories=[MemoryModule("M", 256, 16)],
    )
    session.add_chip("chip1", mosis_package(2))
    session.add_chip("chip2", mosis_package(2))
    # The readers land on chip1 (first levels of the horizontal cut);
    # hosting M on chip2 makes every access off-chip, so both chips
    # carry a memory interface pin load.
    session.assign_memory("M", "chip2")
    parts = horizontal_cut(graph, 2)
    session.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
    return session


class TestColdIdentity:
    @pytest.mark.parametrize("count", [1, 2, 3, 6])
    def test_first_build_matches_builder(self, count):
        session = experiment1_session(partition_count=count)
        partitioning = session.partitioning()
        assert_graphs_identical(
            session._eval.task_graph(partitioning),
            build_task_graph(partitioning),
        )

    def test_memory_pin_loads_match(self):
        session = memory_session()
        partitioning = session.partitioning()
        expected = build_task_graph(partitioning)
        assert any(
            load > 0 for load in expected.memory_pin_loads.values()
        )
        assert_graphs_identical(
            session._eval.task_graph(partitioning), expected
        )

    def test_full_ingredients_match_builder_tasks(self):
        session = experiment1_session(partition_count=3)
        partitioning = session.partitioning()
        ingredients = full_ingredients(partitioning)
        expected = build_task_graph(partitioning)
        for task in expected.tasks.values():
            if task.name.startswith("in:"):
                assert ingredients.input_bits[task.partition] == task.bits
            elif task.name.startswith("out:"):
                assert ingredients.output_bits[task.partition] == task.bits
            elif task.name.startswith("xfer:"):
                src, dst = task.name[len("xfer:"):].split("->")
                assert ingredients.pair_bits[(src, dst)] == task.bits


class TestIncrementalIdentity:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_random_migrations(self, seed):
        rng = random.Random(seed)
        session = experiment1_session(partition_count=4)
        # Prime the incremental state, then mutate repeatedly.
        session._eval.task_graph(session.partitioning())
        for _ in range(rng.randint(1, 4)):
            apply_random_migration(session, rng)
            partitioning = session.partitioning()
            assert_graphs_identical(
                session._eval.task_graph(partitioning),
                build_task_graph(partitioning),
            )

    def test_chip_move_reassembles_without_rederiving(self):
        session = experiment1_session(partition_count=3)
        session._eval.task_graph(session.partitioning())
        before = session.eval_stats()["taskgraph"]
        session.move_partition("P2", "chip1")
        partitioning = session.partitioning()
        assert_graphs_identical(
            session._eval.task_graph(partitioning),
            build_task_graph(partitioning),
        )
        after = session.eval_stats()["taskgraph"]
        # A placement change costs one assembly, not an ingredient
        # re-derivation (no membership changed).
        assert after["full_builds"] == before["full_builds"]
        assert (
            after["incremental_updates"] == before["incremental_updates"]
        )

    def test_memory_reassignment(self):
        session = memory_session()
        session._eval.task_graph(session.partitioning())
        session.assign_memory("M", "chip2")
        partitioning = session.partitioning()
        assert_graphs_identical(
            session._eval.task_graph(partitioning),
            build_task_graph(partitioning),
        )

    def test_repartition_via_set_partitions(self):
        session = experiment1_session(partition_count=2)
        session._eval.task_graph(session.partitioning())
        graph = session.graph
        parts = horizontal_cut(graph, 3)
        session.add_chip("chip3", mosis_package(2))
        session.set_partitions(
            parts, {"P1": "chip1", "P2": "chip2", "P3": "chip3"}
        )
        partitioning = session.partitioning()
        assert_graphs_identical(
            session._eval.task_graph(partitioning),
            build_task_graph(partitioning),
        )

    def test_unchanged_partitioning_reuses_assembly(self):
        session = experiment1_session(partition_count=3)
        partitioning = session.partitioning()
        first = session._eval.task_graph(partitioning)
        second = session._eval.task_graph(session.partitioning())
        assert second is first
        assert session.eval_stats()["taskgraph"]["reuses"] == 1

    def test_content_diff_catches_unannounced_mutation(self):
        """Even with no dirty mark, a membership change is detected."""
        session = experiment1_session(partition_count=3)
        context = session._eval
        context.task_graph(session.partitioning())
        rng = random.Random(11)
        assert apply_random_migration(session, rng)
        # Simulate a caller that mutated without telling the context.
        context._dirty.clear()
        partitioning = session.partitioning()
        assert_graphs_identical(
            context.task_graph(partitioning),
            build_task_graph(partitioning),
        )


class TestContextCaches:
    def test_lru_eviction_counter(self):
        graph = ar_lattice_filter()
        session = ChopSession(
            graph=graph,
            library=table1_library(),
            clocks=ClockScheme(300.0, dp_multiplier=10),
            style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=30_000, delay_ns=30_000
            ),
            prediction_cache_size=2,
        )
        session.add_chip("chip1", mosis_package(2))
        session.add_chip("chip2", mosis_package(2))
        parts = horizontal_cut(graph, 2)
        session.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
        rng = random.Random(3)
        for _ in range(4):
            apply_random_migration(session, rng)
            session.predict_all()
        stats = session.eval_stats()
        assert stats["capacity"] == 2
        assert stats["entries"]["raw"] <= 2
        assert stats["evictions"] > 0
        # Bounded cache must not change answers: re-predicting after
        # evictions still works.
        assert all(session.predict_all().values())

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EvaluationContext(
                graph=ar_lattice_filter(),
                library=table1_library(),
                clocks=ClockScheme(300.0, dp_multiplier=10),
                style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
                criteria=FeasibilityCriteria(
                    performance_ns=1, delay_ns=1
                ),
                memories={},
                cache_capacity=0,
            )

    def test_content_hash_is_stable_and_order_free(self):
        session = experiment1_session(partition_count=2)
        context = session._eval
        ops = sorted(session._partitions["P1"].op_ids)
        a = context.content_hash(frozenset(ops))
        b = context.content_hash(frozenset(reversed(ops)))
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_failed_migration_leaves_session_usable(self):
        """A rejected migration restores state (transactional mutator)."""
        session = experiment1_session(partition_count=3)
        baseline = session.check()
        partitions_before = dict(session._partitions)
        rng = random.Random(5)
        rejected = 0
        names = sorted(session._partitions)
        for _ in range(50):
            src, dst = rng.sample(names, 2)
            ops = sorted(session._partitions[src].op_ids)
            try:
                session.migrate_operations(src, dst, [rng.choice(ops)])
                # Undo a successful move to keep probing failures.
                session.set_partitions(
                    list(partitions_before.values()),
                    dict(session._partition_chip),
                )
            except PartitioningError:
                rejected += 1
                assert session._partitions == partitions_before
        assert rejected > 0
        result = session.check()
        base = baseline.to_dict()
        base.pop("cpu_seconds", None)
        now = result.to_dict()
        now.pop("cpu_seconds", None)
        assert base == now
