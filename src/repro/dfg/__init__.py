"""Behavioral specifications as data-flow graphs.

The paper's input is "the behavioral specification in the form of a data
flow graph (with added control constructs)" (section 2.2), restricted to be
free of inner loops — loops with determinate counts are unrolled so the
graph is acyclic (section 2.3).

This package provides:

* :class:`~repro.dfg.graph.DataFlowGraph` with operations and values,
* :class:`~repro.dfg.builders.GraphBuilder` for programmatic construction,
* :mod:`~repro.dfg.transforms` for validation and loop unrolling,
* :mod:`~repro.dfg.benchmarks` with the AR lattice filter of the paper's
  experiments plus other classic HLS benchmark graphs.
"""

from repro.dfg.ops import OpType, MEMORY_OP_TYPES, COMPUTE_OP_TYPES
from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.builders import GraphBuilder
from repro.dfg.transforms import unroll_loop, validate_graph
from repro.dfg.benchmarks import (
    ar_lattice_filter,
    elliptic_wave_filter,
    fir_filter,
    differential_equation,
)
from repro.dfg.benchmarks_ext import dct8, fft_graph
from repro.dfg.parser import parse_spec

__all__ = [
    "OpType",
    "MEMORY_OP_TYPES",
    "COMPUTE_OP_TYPES",
    "DataFlowGraph",
    "Operation",
    "Value",
    "GraphBuilder",
    "unroll_loop",
    "validate_graph",
    "ar_lattice_filter",
    "elliptic_wave_filter",
    "fir_filter",
    "differential_equation",
    "dct8",
    "fft_graph",
    "parse_spec",
]
