"""Command-line interface to the CHOP reproduction.

Usage::

    python -m repro.cli inputs
    python -m repro.cli demo --experiment 1 --partitions 2
    python -m repro.cli check project.json --heuristic iterative
    python -m repro.cli auto project.json --chips 4 --replicate
    python -m repro.cli auto --generate layered --ops 1000 --chips 6 -o out.json
    python -m repro.cli explore --generate layered --ops 200 --k-max 4
    python -m repro.cli explore project.json --scales 0.75,1.0 --save-front front/
    python -m repro.cli check project.json --trace out.jsonl --profile
    python -m repro.cli search project.json --workers 4 --disk-cache .chop-cache
    python -m repro.cli search project.json --dry-run
    python -m repro.cli predict project.json --partition P1
    python -m repro.cli explain project.json
    python -m repro.cli trace show out.jsonl
    python -m repro.cli export-demo project.json
    python -m repro.cli serve --port 8080 --workers 4 --search-workers 4

``check`` loads a project document (see :mod:`repro.io.project`), runs
the chosen heuristic, and prints the paper-style result rows plus the
synthesis guidelines for the best design.  ``search`` is ``check``
defaulting to the enumeration heuristic; both take ``--workers`` (shard
the combination walk across a process pool), ``--disk-cache`` (persist
BAD predictions across runs), ``--dry-run`` (print the combination
count and shard plan without searching), ``--trace`` (write the span
tree of the whole run as JSONL — see :mod:`repro.obs`) and
``--profile`` (print a sampling wall-clock profile of the run) and
``--soft-deadline`` (stop gracefully after a wall-clock budget and
report the partial, explicitly *degraded*, verdict).
``auto`` runs the multilevel auto-partitioner (:mod:`repro.auto`) on a
project's graph — or on a generated workload via ``--generate`` — and
prints the feasibility verdict of the resulting k-chip partitioning;
``-o`` saves it as a project document for the other subcommands.
``explore`` sweeps chip counts and package scalings over a project's
graph (or a generated one), prices every feasible candidate with the
yield-based cost model (:mod:`repro.chips.cost`) and prints the Pareto
front over (cost, performance, delay, chips); ``--save-front`` writes
each front point as a project file that feeds straight back into
``check``.
``trace show`` renders a trace file as an indented span tree with
per-span wall time and combination counts; ``explain`` prints the
per-constraint feasibility breakdown of a project (what killed which
combinations, at what probability margin).  ``serve`` runs the
HTTP/JSON partitioning server (:mod:`repro.service`); there
``--workers`` means job-queue *threads* and ``--search-workers`` means
engine *processes*, while ``--max-queued``, ``--max-session-jobs`` and
``--max-body-kb`` bound admissions (429/413) and ``--drain-timeout``
sets how long a SIGTERM-triggered graceful drain waits for running
jobs (see ``docs/resilience.md``).

Exit statuses: 0 success, 1 no feasible implementation, 2 library error
(infeasible model request, unknown partition, ...), 3 malformed or
unreadable input (bad project JSON, missing file, bad spec).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import json as _json

from repro.chips.presets import mosis_packages
from repro.dfg.parser import parse_spec
from repro.errors import ChopError, SpecificationError
from repro.io.graphs import graph_to_dict
from repro.experiments import experiment1_session, experiment2_session
from repro.io.project import (
    load_project_file,
    project_fingerprint,
    save_project_file,
    session_to_dict,
)
from repro.library.presets import table1_library
from repro.reporting.guidelines import design_guidelines
from repro.reporting.markdown import markdown_report
from repro.reporting.tables import (
    library_table,
    package_table,
    results_table,
)


def _cmd_inputs(_args: argparse.Namespace) -> int:
    print("Table 1 library:")
    print(library_table(table1_library()))
    print()
    print("Table 2 packages:")
    print(package_table(mosis_packages()))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    if args.experiment == 1:
        session = experiment1_session(
            package_number=args.package, partition_count=args.partitions
        )
    else:
        session = experiment2_session(
            partition_count=args.partitions, package_number=args.package
        )
    return _check_session(session, args.heuristic, args.partitions,
                          args.package)


def _cmd_check(args: argparse.Namespace) -> int:
    session = load_project_file(args.project)
    count = len(session.partitioning().partitions)
    if args.dry_run:
        return _dry_run(session, args)
    return _check_session(session, args.heuristic, count, 0, args=args)


def _build_engine(args):
    """An :class:`EvaluationEngine` when ``--workers`` asks for one."""
    workers = getattr(args, "workers", 1) if args is not None else 1
    if workers is None or workers <= 1:
        return None
    from repro.engine import EvaluationEngine

    return EvaluationEngine(
        workers=workers,
        start_method=getattr(args, "start_method", None),
        kernel=getattr(args, "engine", None) or "scalar",
    )


def _checked(session, heuristic: str, args):
    """One check, optionally engine-sharded and disk-cache warmed."""
    engine = _build_engine(args)
    kernel = getattr(args, "engine", None) if args is not None else None
    soft_deadline = (
        getattr(args, "soft_deadline", None) if args is not None else None
    )
    cache_dir = getattr(args, "disk_cache", None) if args else None
    if not cache_dir:
        return session.check(
            heuristic=heuristic, engine=engine,
            soft_deadline_s=soft_deadline, kernel=kernel,
        )
    from repro.cache import create_backend

    cache = create_backend(
        getattr(args, "cache_backend", None) or "auto", cache_dir
    )
    key = cache.key_for(
        project_fingerprint(session_to_dict(session)),
        session.library,
        session.clocks,
    )
    cached = cache.load(key)
    if cached is not None:
        seeded = session.seed_predictions(cached)
        print(
            f"disk cache: hit — {seeded} partition prediction lists "
            f"seeded from {cache.directory}"
        )
    result = session.check(
        heuristic=heuristic, engine=engine,
        soft_deadline_s=soft_deadline, kernel=kernel,
    )
    if cached is None:
        if cache.store_safely(key, session.export_predictions()):
            print(
                f"disk cache: miss — predictions stored in "
                f"{cache.directory}"
            )
        else:
            print(
                f"disk cache: write failed after retries — continuing "
                f"without persistence ({cache.directory})",
                file=sys.stderr,
            )
    return result


def _dry_run(session, args) -> int:
    """Print the combination count and shard plan, search nothing."""
    from repro.engine import EvaluationProblem, plan_shards
    from repro.engine.workers import (
        DEFAULT_MIN_COMBINATIONS,
        DEFAULT_SHARDS_PER_WORKER,
    )
    from repro.search.enumeration import MAX_COMBINATIONS

    problem = EvaluationProblem.build(
        session.partitioning(),
        session.pruned_predictions(),
        session.clocks,
        session.library,
        session.criteria,
    )
    total = problem.combination_count()
    print("combination space (level-1 pruned prediction lists):")
    for name, size in sorted(problem.list_sizes().items()):
        print(f"  {name}: {size} predictions")
    print(f"total combinations: {total} (enumeration cap {MAX_COMBINATIONS})")
    if total > MAX_COMBINATIONS:
        print(
            "the product exceeds the enumeration cap; tighten the "
            "constraints or repartition before searching"
        )
        return 1
    workers = max(1, getattr(args, "workers", 1) or 1)
    if workers == 1 or total < DEFAULT_MIN_COMBINATIONS:
        reason = (
            "one worker requested"
            if workers == 1
            else f"space below the engine minimum of "
            f"{DEFAULT_MIN_COMBINATIONS}"
        )
        print(f"mode: serial ({reason})")
        return 0
    shards = plan_shards(total, workers * DEFAULT_SHARDS_PER_WORKER)
    print(
        f"mode: parallel ({workers} workers, {len(shards)} shards)"
    )
    for shard in shards:
        print(
            f"  shard {shard.index:>3}: [{shard.start}, {shard.stop})"
            f"  {shard.size} combinations"
        )
    return 0


def _check_session(session, heuristic: str, count: int,
                   package: int, args=None) -> int:
    import contextlib

    trace_path = getattr(args, "trace", None) if args is not None else None
    profiled = (
        bool(getattr(args, "profile", False)) if args is not None else False
    )
    tracer = None
    profiler = None
    with contextlib.ExitStack() as stack:
        if trace_path:
            from repro.obs import JsonlSink, Tracer, activate

            tracer = Tracer(sink=JsonlSink(trace_path))
            stack.callback(tracer.close)
            stack.enter_context(activate(tracer))
        if profiled:
            from repro.obs import SamplingProfiler

            profiler = stack.enter_context(SamplingProfiler())
        result = _checked(session, heuristic, args)
    if tracer is not None:
        stats = tracer.stats()
        print(
            f"trace: {stats['spans']} spans -> {trace_path} "
            f"(trace id {tracer.trace_id})"
        )
    if profiler is not None:
        print(profiler.render())
    letter = "E" if heuristic == "enumeration" else "I"
    if result.degraded:
        print(
            f"note: soft deadline expired after {result.trials} trials "
            f"— this is a partial (degraded) verdict; feasible designs "
            f"below are real, but absence of designs is inconclusive"
        )
    print(results_table([(count, package, letter, result)]))
    best = result.best()
    if best is None:
        print()
        print("No feasible implementation under the given constraints.")
        return 1
    print()
    print(design_guidelines(best))
    return 0


def _cmd_auto(args: argparse.Namespace) -> int:
    import contextlib

    from repro.auto import AutoPartitionConfig, auto_partition
    from repro.auto.partitioner import session_like_factory

    if args.generate:
        from repro.dfg.builders import generate_dfg

        graph = generate_dfg(args.generate, args.ops, seed=args.seed)
        factory = None
    elif args.project:
        base = load_project_file(args.project)
        graph = base.graph
        factory = session_like_factory(base)
    else:
        print(
            "error: give a project file or --generate KIND",
            file=sys.stderr,
        )
        return 3

    config = AutoPartitionConfig(
        chips=args.chips,
        balance_tolerance=args.balance,
        replicate=args.replicate,
        max_clones=args.max_clones,
        feasibility_moves=args.feasibility_moves,
        heuristic=args.heuristic,
    )
    trace_path = getattr(args, "trace", None)
    tracer = None
    with contextlib.ExitStack() as stack:
        if trace_path:
            from repro.obs import JsonlSink, Tracer, activate

            tracer = Tracer(sink=JsonlSink(trace_path))
            stack.callback(tracer.close)
            stack.enter_context(activate(tracer))
        result = auto_partition(
            graph, config, session_factory=factory,
            engine=_build_engine(args),
        )
    if tracer is not None:
        stats = tracer.stats()
        print(
            f"trace: {stats['spans']} spans -> {trace_path} "
            f"(trace id {tracer.trace_id})"
        )

    summary = result.to_dict()
    print(
        f"auto: {summary['graph']} — {summary['operations']} operations "
        f"over {summary['chips']} chips "
        f"(hierarchy {summary['levels']} levels)"
    )
    print(
        f"  cut {summary['cut_bits']} bits, transfers "
        f"{summary['transfer_bits']} bits, part sizes "
        f"{summary['part_sizes']}"
    )
    if args.replicate:
        print(
            f"  replication: {summary['clones']} clones, "
            f"{summary['replication_saved_bits']} transfer bits saved"
        )
    if summary["repair_moves"]:
        print(f"  feasibility repair: {summary['repair_moves']} migrations")
    if args.output:
        save_project_file(result.session, args.output)
        print(f"  project written to {args.output}")
    if result.search is not None:
        print()
        print(results_table(
            [(summary["chips"], 0, "I", result.search)]
        ))
    best = result.search.best() if result.search else None
    if best is None:
        print()
        if summary["infeasible_partitions"]:
            print(
                f"No feasible implementation: partitions "
                f"{summary['infeasible_partitions']} have no surviving "
                f"predictions (die too small for the operations)."
            )
        else:
            print("No feasible implementation under the given constraints.")
        return 1
    print()
    print(design_guidelines(best))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import contextlib
    import pathlib

    from repro.explore import (
        ExploreConfig,
        explore,
        project_session_factory,
    )

    if args.generate:
        from repro.dfg.builders import generate_dfg

        graph = generate_dfg(args.generate, args.ops, seed=args.seed)
        factory = None
    elif args.project:
        base = load_project_file(args.project)
        graph = base.graph
        factory = project_session_factory(base)
    else:
        print(
            "error: give a project file or --generate KIND",
            file=sys.stderr,
        )
        return 3

    if args.k_min > args.k_max:
        print(
            f"error: --k-min {args.k_min} exceeds --k-max {args.k_max}",
            file=sys.stderr,
        )
        return 3
    config = ExploreConfig(
        chip_counts=tuple(range(args.k_min, args.k_max + 1)),
        package_scales=tuple(args.scales),
        objectives=tuple(args.objectives),
        seeding=args.seeding,
        heuristic=args.heuristic,
    )

    disk_cache = None
    if args.disk_cache:
        from repro.cache import create_backend

        disk_cache = create_backend(
            getattr(args, "cache_backend", None) or "auto",
            args.disk_cache,
        )

    trace_path = getattr(args, "trace", None)
    tracer = None
    with contextlib.ExitStack() as stack:
        if trace_path:
            from repro.obs import JsonlSink, Tracer, activate

            tracer = Tracer(sink=JsonlSink(trace_path))
            stack.callback(tracer.close)
            stack.enter_context(activate(tracer))
        result = explore(
            graph, config,
            session_factory=factory,
            engine=_build_engine(args),
            disk_cache=disk_cache,
        )
    if tracer is not None:
        stats = tracer.stats()
        print(
            f"trace: {stats['spans']} spans -> {trace_path} "
            f"(trace id {tracer.trace_id})",
            file=sys.stderr,
        )

    if args.json:
        print(_json.dumps(
            result.to_dict(include_projects=args.include_projects),
            indent=2,
        ))
    else:
        print(
            f"explore: {graph.name} — {graph.op_count()} operations, "
            f"{result.evaluated} candidates "
            f"({result.feasible} feasible, {result.infeasible} "
            f"infeasible, {result.skipped} skipped)"
        )
        if disk_cache is not None:
            print(
                f"  disk cache: {result.cache_seeded} partition "
                f"prediction lists seeded from {disk_cache.directory}"
            )
        print()
        if result.front:
            print(
                f"Pareto front over "
                f"({', '.join(config.objectives)}) — "
                f"{len(result.front)} points:"
            )
            header = (
                f"  {'chips':>5}  {'scale':>5}  {'cost $':>10}  "
                f"{'perf ns':>9}  {'delay ns':>9}  {'II':>4}  "
                f"{'cut bits':>8}"
            )
            print(header)
            for point in result.front:
                print(
                    f"  {point.chips:>5}  {point.package_scale:>5g}  "
                    f"{point.cost:>10.2f}  "
                    f"{point.performance_ns:>9.0f}  "
                    f"{point.delay_ns:>9.0f}  {point.ii_main:>4}  "
                    f"{point.cost_report.cut_bits:>8}"
                )
    if args.save_front:
        directory = pathlib.Path(args.save_front)
        directory.mkdir(parents=True, exist_ok=True)
        for point in result.front:
            path = directory / (
                f"front_k{point.chips}_s{point.package_scale:g}.json"
            )
            path.write_text(
                _json.dumps(point.project, indent=2) + "\n"
            )
        print(
            f"\n{len(result.front)} front projects written to "
            f"{directory} (feed them back into 'repro check')"
        )
    if not result.front:
        print()
        print(
            "No feasible candidate in the swept space; widen the k "
            "range or the package scales."
        )
        return 1
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    session = load_project_file(args.project)
    predictions = session.predict(args.partition)
    print(
        f"{len(predictions)} predicted implementations for "
        f"{args.partition}:"
    )
    limit = args.limit if args.limit > 0 else len(predictions)
    for prediction in predictions[:limit]:
        print(
            f"  II {prediction.ii_main:>4}  delay "
            f"{prediction.latency_main:>4}  area "
            f"{prediction.area_total.ml:>9.0f}  power "
            f"{prediction.power_mw.ml:>7.1f} mW  "
            f"{prediction.style_label}, {prediction.module_set.label}, "
            f"{prediction.operator_summary()}"
        )
    if limit < len(predictions):
        print(f"  ... {len(predictions) - limit} more")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session = load_project_file(args.project)
    report = session.explain(prune=not args.no_prune)
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.obs import load_trace_file, render_trace, validate_trace

    try:
        spans = load_trace_file(args.trace_file)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if not spans:
        print(
            f"error: {args.trace_file} contains no spans",
            file=sys.stderr,
        )
        return 3
    problems = validate_trace(spans)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    print(render_trace(spans))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    session = load_project_file(args.project)
    results = {
        heuristic: session.check(heuristic=heuristic)
        for heuristic in ("iterative", "enumeration")
    }
    text = markdown_report(session, results)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"Wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    import pathlib

    source = pathlib.Path(args.spec).read_text()
    graph = parse_spec(source)
    document = graph_to_dict(graph)
    if args.output:
        pathlib.Path(args.output).write_text(
            _json.dumps(document, indent=2) + "\n"
        )
        print(
            f"Compiled {graph.name!r}: {graph.op_count()} operations, "
            f"depth {graph.depth()} -> {args.output}"
        )
    else:
        print(_json.dumps(document, indent=2))
    return 0


def _cmd_export_demo(args: argparse.Namespace) -> int:
    session = experiment1_session(package_number=2, partition_count=2)
    save_project_file(session, args.output)
    fingerprint = project_fingerprint(session_to_dict(session))
    print(f"Wrote the experiment-1 two-partition project to {args.output}")
    print(f"fingerprint sha256:{fingerprint}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal as _signal
    import threading as _threading

    from repro.obs.logging import configure_logging, get_logger
    from repro.service import ChopService, make_server

    # $CHOP_LOG / $CHOP_LOG_FILE select level and sink; unset stays off.
    configure_logging()

    def _make_service(fleet=None) -> "ChopService":
        return ChopService(
            cache_size=args.cache_size,
            max_sessions=args.max_sessions,
            workers=args.workers,
            job_timeout_s=args.job_timeout,
            search_workers=args.search_workers,
            disk_cache_dir=args.disk_cache,
            cache_backend=args.cache_backend,
            start_method=args.start_method,
            engine_kernel=args.engine,
            max_queued=args.max_queued,
            max_jobs_per_session=args.max_session_jobs,
            max_body_bytes=args.max_body_kb * 1024,
            drain_timeout_s=args.drain_timeout,
            slo_latency_ms=args.slo_latency_ms,
            slo_error_rate=args.slo_error_rate,
            flight_capacity=args.flight_capacity,
            flight_dir=args.flight_dir,
            fleet=fleet,
        )

    if args.procs > 1:
        # Multi-process front: the parent binds once and forks workers;
        # each worker builds its own shared-nothing service after the
        # fork (see repro.service.fleet).  The parent relays SIGTERM to
        # the fleet and exits 0 only when every worker drained cleanly.
        from repro.service.fleet import serve_fleet

        return serve_fleet(
            _make_service,
            host=args.host,
            port=args.port,
            procs=args.procs,
            drain_timeout_s=args.drain_timeout,
            announce=lambda line: print(line, flush=True),
        )

    service = _make_service()
    server = make_server(service, host=args.host, port=args.port)
    # port 0 binds an ephemeral port; report the one actually bound so
    # wrappers (tests, orchestrators) can parse it from the first line.
    bound_port = server.server_address[1]
    engine_note = (
        f"{args.search_workers} search workers"
        if args.search_workers > 1
        else "in-process search"
    )
    cache_note = (
        f", disk cache {args.disk_cache}" if args.disk_cache else ""
    )
    print(
        f"chop-repro serving on http://{args.host}:{bound_port} "
        f"({args.workers} job threads, {engine_note}, "
        f"cache {args.cache_size}, max {args.max_sessions} sessions, "
        f"queue cap {args.max_queued}, drain {args.drain_timeout:g}s"
        f"{cache_note})",
        flush=True,
    )
    get_logger("cli").info(
        "service_started",
        host=args.host,
        port=bound_port,
        job_threads=args.workers,
        search_workers=args.search_workers,
    )

    drained = _threading.Event()

    def _drain_and_stop() -> None:
        if drained.is_set():
            return
        drained.set()
        print(
            f"draining: waiting up to {args.drain_timeout:g}s for "
            f"running jobs",
            flush=True,
        )
        outcome = service.drain()
        print(f"drained: {outcome}", flush=True)
        server.shutdown()

    def _on_sigterm(signum, frame) -> None:
        _threading.Thread(target=_drain_and_stop, daemon=True).start()

    def _on_sigusr2(signum, frame) -> None:
        def _dump() -> None:
            if args.flight_dir:
                path = service._dump_flight(reason="sigusr2")
            else:
                path = service.flight.dump_to(
                    f"flight-{int(time.time())}-sigusr2.json"
                )
            if path:
                print(f"flight recorder dumped to {path}", flush=True)

        _threading.Thread(target=_dump, daemon=True).start()

    try:
        _signal.signal(_signal.SIGTERM, _on_sigterm)
        if hasattr(_signal, "SIGUSR2"):
            _signal.signal(_signal.SIGUSR2, _on_sigusr2)
    except ValueError:
        pass  # not the main thread; the embedder owns signal handling
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        _drain_and_stop()
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


def _scale_list(text: str) -> List[float]:
    """``"0.75,1.0"`` -> ``[0.75, 1.0]`` (argparse type for --scales)."""
    try:
        scales = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        )
    if not scales:
        raise argparse.ArgumentTypeError("at least one scale is required")
    return scales


def _objective_list(text: str) -> List[str]:
    """``"cost,delay"`` -> ``["cost", "delay"]`` (validated lazily)."""
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError(
            "at least one objective is required"
        )
    return names


def _add_engine_arguments(command: argparse.ArgumentParser) -> None:
    """The engine/cache flags shared by ``check`` and ``search``."""
    command.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the enumeration walk; 1 runs "
        "serially (default 1)",
    )
    command.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method (default: platform default, "
        "or $CHOP_START_METHOD)",
    )
    command.add_argument(
        "--engine", choices=("scalar", "vectorized"), default=None,
        dest="engine",
        help="evaluation kernel for the enumeration walk: 'scalar' "
        "(reference loop) or 'vectorized' (numpy batch screening, "
        "byte-identical results; default scalar)",
    )
    command.add_argument(
        "--disk-cache", default=None, metavar="DIR",
        help="persist BAD prediction lists under DIR and reuse them on "
        "identical reruns",
    )
    command.add_argument(
        "--cache-backend", choices=("auto", "disk", "shared"),
        default="auto",
        help="prediction-cache backend for --disk-cache: 'disk' "
        "(single writer), 'shared' (safe under concurrent writer "
        "processes), or 'auto' (default)",
    )
    command.add_argument(
        "--dry-run", action="store_true",
        help="print the combination count and shard plan, then exit "
        "without searching",
    )
    command.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the run's span tree (session -> search -> engine "
        "shards) as JSONL to PATH; render it with 'repro trace show'",
    )
    command.add_argument(
        "--profile", action="store_true",
        help="sample the run's wall-clock profile and print the "
        "hottest frames",
    )
    command.add_argument(
        "--soft-deadline", type=float, default=None, metavar="SECONDS",
        help="stop the search gracefully after SECONDS and report the "
        "partial (degraded) verdict instead of failing; forces the "
        "serial path",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHOP constraint-driven system-level partitioner "
        "(DAC 1991 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "inputs", help="print the paper's Table 1 and Table 2"
    ).set_defaults(func=_cmd_inputs)

    demo = sub.add_parser(
        "demo", help="run one cell of the paper's experiments"
    )
    demo.add_argument("--experiment", type=int, choices=(1, 2), default=1)
    demo.add_argument("--partitions", type=int, default=2)
    demo.add_argument("--package", type=int, choices=(1, 2), default=2)
    demo.add_argument(
        "--heuristic", choices=("iterative", "enumeration"),
        default="iterative",
    )
    demo.set_defaults(func=_cmd_demo)

    check = sub.add_parser(
        "check", help="check a project document for feasibility"
    )
    check.add_argument("project", help="path to a project JSON file")
    check.add_argument(
        "--heuristic", choices=("iterative", "enumeration"),
        default="iterative",
    )
    _add_engine_arguments(check)
    check.set_defaults(func=_cmd_check)

    search = sub.add_parser(
        "search",
        help="enumerate the combination space of a project document "
        "(check with --heuristic enumeration, engine-ready)",
    )
    search.add_argument("project", help="path to a project JSON file")
    search.add_argument(
        "--heuristic", choices=("iterative", "enumeration"),
        default="enumeration",
    )
    _add_engine_arguments(search)
    search.set_defaults(func=_cmd_check)

    auto = sub.add_parser(
        "auto",
        help="auto-partition a graph onto k chips (multilevel "
        "coarsen/partition/refine with optional logic replication)",
    )
    auto.add_argument(
        "project", nargs="?", default=None,
        help="project JSON whose graph and designer inputs to use",
    )
    auto.add_argument(
        "--generate", choices=("layered", "chain", "butterfly"),
        default=None, metavar="KIND",
        help="partition a generated workload instead of a project "
        "(layered | chain | butterfly)",
    )
    auto.add_argument(
        "--ops", type=int, default=1000,
        help="target operation count for --generate (default 1000)",
    )
    auto.add_argument(
        "--seed", type=int, default=0,
        help="generator seed for --generate layered (default 0)",
    )
    auto.add_argument(
        "--chips", type=int, default=4,
        help="number of chips / partitions (default 4)",
    )
    auto.add_argument(
        "--replicate", action="store_true",
        help="run the logic-replication pass on cut operations",
    )
    auto.add_argument(
        "--max-clones", type=int, default=0,
        help="cap on applied replications (default 0: unbounded)",
    )
    auto.add_argument(
        "--balance", type=float, default=0.3,
        help="per-chip size tolerance for refinement (default 0.3)",
    )
    auto.add_argument(
        "--feasibility-moves", type=int, default=32,
        help="bound on repair migrations in the feasibility stage "
        "(default 32)",
    )
    auto.add_argument(
        "--heuristic", choices=("iterative", "enumeration"),
        default="iterative",
    )
    auto.add_argument(
        "-o", "--output", default=None,
        help="write the partitioned session as a project JSON file",
    )
    auto.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the feasibility search (enumeration "
        "heuristic only; default 1)",
    )
    auto.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --workers",
    )
    auto.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the auto.* span tree as JSONL to PATH",
    )
    auto.set_defaults(func=_cmd_auto)

    explore_ = sub.add_parser(
        "explore",
        help="sweep chip counts and package scalings, price each "
        "feasible design, and print the Pareto front over "
        "(cost, performance, delay, chips)",
    )
    explore_.add_argument(
        "project", nargs="?", default=None,
        help="project JSON whose graph and designer inputs to sweep",
    )
    explore_.add_argument(
        "--generate", choices=("layered", "chain", "butterfly"),
        default=None, metavar="KIND",
        help="sweep a generated workload instead of a project",
    )
    explore_.add_argument(
        "--ops", type=int, default=200,
        help="target operation count for --generate (default 200)",
    )
    explore_.add_argument(
        "--seed", type=int, default=0,
        help="generator seed for --generate layered (default 0)",
    )
    explore_.add_argument(
        "--k-min", type=int, default=1,
        help="smallest chip count to try (default 1)",
    )
    explore_.add_argument(
        "--k-max", type=int, default=4,
        help="largest chip count to try (default 4)",
    )
    explore_.add_argument(
        "--scales", type=_scale_list, default=[1.0], metavar="S1,S2,...",
        help="comma-separated die-area multipliers applied to every "
        "candidate package (default 1.0)",
    )
    explore_.add_argument(
        "--objectives", type=_objective_list,
        default=["cost", "performance", "delay", "chips"],
        metavar="O1,O2,...",
        help="comma-separated minimization objectives: cost, "
        "performance, delay, chips (default: all four)",
    )
    explore_.add_argument(
        "--seeding", choices=("heuristic", "auto"), default="heuristic",
        help="candidate partitioning source: the paper's horizontal "
        "cut, or the multilevel auto-partitioner (default heuristic)",
    )
    explore_.add_argument(
        "--heuristic", choices=("iterative", "enumeration"),
        default="iterative",
        help="search heuristic for each candidate's check",
    )
    explore_.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for each candidate's enumeration walk "
        "(default 1)",
    )
    explore_.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --workers",
    )
    explore_.add_argument(
        "--disk-cache", default=None, metavar="DIR",
        help="persist every candidate's prediction lists under DIR so "
        "repeated sweeps are warm",
    )
    explore_.add_argument(
        "--cache-backend", choices=("auto", "disk", "shared"),
        default="auto",
        help="prediction-cache backend for --disk-cache (default auto)",
    )
    explore_.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the explore.* span tree as JSONL to PATH",
    )
    explore_.add_argument(
        "--json", action="store_true",
        help="print the full sweep result as JSON",
    )
    explore_.add_argument(
        "--include-projects", action="store_true",
        help="with --json: embed each front point's full project "
        "document (round-trips into 'repro check')",
    )
    explore_.add_argument(
        "--save-front", default=None, metavar="DIR",
        help="write each front point's project JSON under DIR",
    )
    explore_.set_defaults(func=_cmd_explore)

    predict = sub.add_parser(
        "predict", help="list BAD's predictions for one partition"
    )
    predict.add_argument("project")
    predict.add_argument("--partition", required=True)
    predict.add_argument("--limit", type=int, default=20)
    predict.set_defaults(func=_cmd_predict)

    explain = sub.add_parser(
        "explain",
        help="break down feasibility per constraint: what killed which "
        "combinations, at what probability margin",
    )
    explain.add_argument("project", help="path to a project JSON file")
    explain.add_argument(
        "--no-prune", action="store_true",
        help="skip level-1 pruning before enumerating",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="print the structured report as JSON",
    )
    explain.set_defaults(func=_cmd_explain)

    trace_ = sub.add_parser(
        "trace", help="inspect JSONL trace files written by --trace"
    )
    trace_sub = trace_.add_subparsers(dest="trace_command", required=True)
    show = trace_sub.add_parser(
        "show",
        help="render a trace as a span tree with per-span wall time "
        "and counters",
    )
    show.add_argument("trace_file", help="path to a JSONL trace file")
    show.set_defaults(func=_cmd_trace_show)

    report = sub.add_parser(
        "report", help="write a markdown feasibility report"
    )
    report.add_argument("project")
    report.add_argument("-o", "--output", default=None)
    report.set_defaults(func=_cmd_report)

    compile_ = sub.add_parser(
        "compile",
        help="compile a behavioral .chop spec into a graph JSON document",
    )
    compile_.add_argument("spec", help="path to the specification file")
    compile_.add_argument("-o", "--output", default=None)
    compile_.set_defaults(func=_cmd_compile)

    export = sub.add_parser(
        "export-demo",
        help="write the experiment-1 session as a project file",
    )
    export.add_argument("output")
    export.set_defaults(func=_cmd_export_demo)

    serve_ = sub.add_parser(
        "serve", help="run the HTTP/JSON partitioning server"
    )
    serve_.add_argument("--host", default="127.0.0.1")
    serve_.add_argument("--port", type=int, default=8080)
    serve_.add_argument(
        "--workers", type=int, default=4,
        help="background job worker threads (default 4)",
    )
    serve_.add_argument(
        "--cache-size", type=int, default=256,
        help="check-verdict cache entries (default 256)",
    )
    serve_.add_argument(
        "--max-sessions", type=int, default=32,
        help="resident designer sessions before LRU eviction",
    )
    serve_.add_argument(
        "--job-timeout", type=float, default=300.0,
        help="default wall-clock budget per background job in seconds; "
        "0 disables (default 300)",
    )
    serve_.add_argument(
        "--search-workers", type=int, default=0,
        help="worker processes sharding each enumeration's combination "
        "walk; 0 or 1 keeps searches in-process (default 0)",
    )
    serve_.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="scalar",
        help="default evaluation kernel for enumeration searches "
        "(requests can override per job with the 'engine' option; "
        "results are byte-identical; default scalar)",
    )
    serve_.add_argument(
        "--disk-cache", default=None, metavar="DIR",
        help="persist BAD prediction lists under DIR so identical "
        "projects skip prediction across restarts",
    )
    serve_.add_argument(
        "--cache-backend", choices=("auto", "disk", "shared"),
        default="auto",
        help="prediction-cache backend for --disk-cache: 'auto' picks "
        "'shared' (multi-writer safe) when --procs > 1 and 'disk' "
        "otherwise",
    )
    serve_.add_argument(
        "--procs", type=int, default=1,
        help="worker processes sharing the bound port (SO_REUSEPORT "
        "where available); requests route stickily by project "
        "fingerprint, /metrics aggregates the fleet, SIGTERM drains "
        "every worker (default 1: classic single process)",
    )
    serve_.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for search workers "
        "(default: platform default, or $CHOP_START_METHOD)",
    )
    serve_.add_argument(
        "--max-queued", type=int, default=64,
        help="queued background jobs before new submissions get 429 "
        "with Retry-After (default 64)",
    )
    serve_.add_argument(
        "--max-session-jobs", type=int, default=4,
        help="concurrent (queued+running) jobs per project before 429 "
        "(default 4)",
    )
    serve_.add_argument(
        "--max-body-kb", type=int, default=1024,
        help="request body size cap in KiB; larger bodies get 413 "
        "(default 1024)",
    )
    serve_.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds SIGTERM waits for running jobs before cancelling "
        "them cooperatively (default 10)",
    )
    serve_.add_argument(
        "--slo-latency-ms", type=float, default=500.0,
        help="p95 request-latency objective in milliseconds, exposed "
        "as slo_burn_ratio gauges and GET /slo (default 500)",
    )
    serve_.add_argument(
        "--slo-error-rate", type=float, default=0.01,
        help="maximum 5xx share of responses before the error-rate "
        "SLO burns (default 0.01)",
    )
    serve_.add_argument(
        "--flight-capacity", type=int, default=256,
        help="flight-recorder ring-buffer size: recent request/job "
        "summaries kept for GET /debug/recent (default 256)",
    )
    serve_.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="write flight-recorder dumps under DIR on any 5xx and on "
        "SIGUSR2 (default: no automatic dumps)",
    )
    serve_.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpecificationError as exc:
        # Malformed input (project JSON, spec text) gets its own status
        # so scripts can tell "fix your file" from model infeasibility.
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ChopError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a pager/head that closed early.
        return 0
    except OSError as exc:
        # Unreadable/missing input files: clean one-liner, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
