"""Tests for partitions and the partitioning data model."""

from __future__ import annotations

import pytest

from repro.chips.chip import Chip
from repro.chips.presets import mosis_package
from repro.core.partition import Partition
from repro.core.partitioning import Partitioning
from repro.core.schemes import horizontal_cut, single_partition
from repro.errors import PartitioningError
from repro.memory.module import MemoryModule


def _two_chips():
    return [
        Chip("chip1", mosis_package(2)),
        Chip("chip2", mosis_package(2)),
    ]


class TestPartition:
    def test_empty_rejected(self):
        with pytest.raises(PartitioningError):
            Partition.of("P1", [])

    def test_unnamed_rejected(self):
        with pytest.raises(PartitioningError):
            Partition.of("", ["a"])

    def test_contains_and_len(self):
        p = Partition.of("P1", ["a", "b"])
        assert len(p) == 2
        assert "a" in p and "c" not in p

    def test_overlaps(self):
        p1 = Partition.of("P1", ["a", "b"])
        p2 = Partition.of("P2", ["b", "c"])
        p3 = Partition.of("P3", ["c"])
        assert p1.overlaps(p2)
        assert not p1.overlaps(p3)

    def test_migrate(self):
        p1 = Partition.of("P1", ["a", "b", "c"])
        p2 = Partition.of("P2", ["d"])
        new1, new2 = p1.migrate(p2, {"b"})
        assert new1.op_ids == frozenset({"a", "c"})
        assert new2.op_ids == frozenset({"b", "d"})

    def test_migrate_cannot_empty(self):
        p1 = Partition.of("P1", ["a"])
        p2 = Partition.of("P2", ["b"])
        with pytest.raises(PartitioningError):
            p1.migrate(p2, {"a"})

    def test_migrate_unowned_ops(self):
        p1 = Partition.of("P1", ["a"])
        p2 = Partition.of("P2", ["b"])
        with pytest.raises(PartitioningError):
            p1.migrate(p2, {"z"})


class TestPartitioningValidation:
    def test_valid_two_way(self, ar_graph):
        parts = horizontal_cut(ar_graph, 2)
        pt = Partitioning(
            ar_graph, parts, _two_chips(),
            {"P1": "chip1", "P2": "chip2"},
        )
        assert pt.partition_of(next(iter(parts[0].op_ids))) == "P1"

    def test_coverage_required(self, ar_graph):
        parts = horizontal_cut(ar_graph, 2)
        with pytest.raises(PartitioningError, match="not assigned to any"):
            Partitioning(
                ar_graph, [parts[0]], _two_chips(), {"P1": "chip1"}
            )

    def test_overlap_rejected(self, ar_graph):
        ops = sorted(ar_graph.operations)
        p1 = Partition.of("P1", ops)
        p2 = Partition.of("P2", ops[:1])
        with pytest.raises(PartitioningError, match="multiple"):
            Partitioning(
                ar_graph, [p1, p2], _two_chips(),
                {"P1": "chip1", "P2": "chip2"},
            )

    def test_unknown_chip_rejected(self, ar_graph):
        parts = [single_partition(ar_graph)]
        with pytest.raises(PartitioningError, match="unknown chip"):
            Partitioning(ar_graph, parts, _two_chips(), {"P1": "chip9"})

    def test_unassigned_partition_rejected(self, ar_graph):
        parts = [single_partition(ar_graph)]
        with pytest.raises(PartitioningError, match="not assigned"):
            Partitioning(ar_graph, parts, _two_chips(), {})

    def test_mutual_dependency_rejected(self, ar_graph):
        # Interleave operations so data flows both ways between P1/P2.
        order = ar_graph.topological_order()
        p1_ops = order[0::2]
        p2_ops = order[1::2]
        with pytest.raises(PartitioningError, match="mutual"):
            Partitioning(
                ar_graph,
                [Partition.of("P1", p1_ops), Partition.of("P2", p2_ops)],
                _two_chips(),
                {"P1": "chip1", "P2": "chip2"},
            )

    def test_same_chip_partitions_allowed(self, ar_graph):
        parts = horizontal_cut(ar_graph, 2)
        pt = Partitioning(
            ar_graph, parts, _two_chips()[:1],
            {"P1": "chip1", "P2": "chip1"},
        )
        assert pt.partitions_on_chip("chip1") == ["P1", "P2"]

    def test_undeclared_memory_rejected(self):
        from repro.dfg.builders import GraphBuilder

        b = GraphBuilder("m")
        a = b.input("a")
        r = b.mem_read(a, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        g = b.build()
        with pytest.raises(PartitioningError, match="undeclared memory"):
            Partitioning(
                g, [single_partition(g)], _two_chips(), {"P1": "chip1"}
            )

    def test_on_chip_memory_needs_assignment(self, ar_graph):
        with pytest.raises(PartitioningError, match="not assigned"):
            Partitioning(
                ar_graph, [single_partition(ar_graph)], _two_chips(),
                {"P1": "chip1"},
                memories=[MemoryModule("M", 16, 16)],
            )

    def test_off_the_shelf_memory_needs_no_assignment(self, ar_graph):
        pt = Partitioning(
            ar_graph, [single_partition(ar_graph)], _two_chips(),
            {"P1": "chip1"},
            memories=[MemoryModule("M", 16, 16, off_the_shelf=True)],
        )
        assert "M" in pt.memories


class TestPartitioningQueries:
    @pytest.fixture
    def pt(self, ar_graph):
        parts = horizontal_cut(ar_graph, 3)
        chips = _two_chips()
        return Partitioning(
            ar_graph, parts, chips,
            {"P1": "chip1", "P2": "chip1", "P3": "chip2"},
        )

    def test_dependencies_follow_levels(self, pt):
        deps = pt.partition_dependencies()
        assert ("P1", "P2") in deps or ("P1", "P3") in deps
        # No backward edges in a horizontal cut.
        for src, dst in deps:
            assert int(src[1]) < int(dst[1])

    def test_partition_map_is_copy(self, pt):
        mapping = pt.partition_map()
        mapping.clear()
        assert pt.partition_map()  # unaffected

    def test_chip_of(self, pt):
        assert pt.chip_of("P3") == "chip2"
        with pytest.raises(PartitioningError):
            pt.chip_of("P9")

    def test_with_assignment(self, pt):
        moved = pt.with_assignment("P3", "chip1")
        assert moved.chip_of("P3") == "chip1"
        assert pt.chip_of("P3") == "chip2"  # original untouched

    def test_with_assignment_validates(self, pt):
        with pytest.raises(PartitioningError):
            pt.with_assignment("P9", "chip1")
        with pytest.raises(PartitioningError):
            pt.with_assignment("P1", "chip9")


class TestSchemes:
    def test_single_partition(self, ar_graph):
        p = single_partition(ar_graph)
        assert len(p) == ar_graph.op_count()

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5])
    def test_horizontal_cut_covers_and_balances(self, ar_graph, count):
        parts = horizontal_cut(ar_graph, count)
        assert len(parts) == count
        all_ops = set()
        for part in parts:
            assert not (all_ops & part.op_ids)
            all_ops |= part.op_ids
        assert all_ops == set(ar_graph.operations)
        sizes = [len(p) for p in parts]
        assert max(sizes) <= 2 * ar_graph.op_count() / count + 4

    def test_horizontal_cut_acyclic(self, ar_graph):
        parts = horizontal_cut(ar_graph, 3)
        chips = _two_chips() + [Chip("chip3", mosis_package(2))]
        # Constructing the Partitioning runs the mutual-dependency check.
        Partitioning(
            ar_graph, parts, chips,
            {"P1": "chip1", "P2": "chip2", "P3": "chip3"},
        )

    def test_too_many_partitions_rejected(self, tiny_graph):
        with pytest.raises(PartitioningError):
            horizontal_cut(tiny_graph, 5)

    def test_bad_count_rejected(self, ar_graph):
        with pytest.raises(PartitioningError):
            horizontal_cut(ar_graph, 0)

    def test_two_way_cut_balances_paper_graph(self, ar_graph):
        parts = horizontal_cut(ar_graph, 2)
        sizes = sorted(len(p) for p in parts)
        assert sizes == [12, 16]
