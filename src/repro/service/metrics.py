"""Request metrics: registry-backed histograms + the legacy JSON shape.

Every finished request lands twice, deliberately:

* in the shared :class:`repro.obs.metrics.MetricsRegistry` — the
  ``requests_total`` / ``responses_total{status}`` /
  ``route_requests_total{route}`` counters and the
  ``request_latency_seconds{route,class}`` histogram (with the request's
  trace id as exemplar).  This is the *authoritative* surface: the
  Prometheus exposition, the SLO tracker and the soak benchmark all read
  bucket-derived percentiles from here;
* in a small **bounded** per-route sample window that backs the legacy
  ``/metrics`` JSON shape (``routes.<route>.latency_ms.p50/p95`` via the
  linear-interpolation :func:`percentile`).  Retention is bounded on
  both axes: at most :data:`MAX_SAMPLES` samples per route *and* at most
  :data:`MAX_ROUTES` distinct route labels — traffic to further routes
  aggregates under ``(other)`` so a label-cardinality attack cannot grow
  the process.

Subsystem statistics still arrive through *registered gauge suppliers*
(each subsystem exposes a ``stats()`` callable); registration now also
mirrors the supplier into the registry
(:meth:`~repro.obs.metrics.MetricsRegistry.register_stats`), so every
subsystem appears in the Prometheus text exposition as real gauges
without a second wiring step.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

#: Latency samples retained per route — enough for stable p50/p95 under
#: bursty interactive traffic without unbounded growth.
MAX_SAMPLES = 2048

#: Distinct route labels tracked before new ones collapse into
#: ``(other)`` — route labels come from path templates, so a healthy
#: server needs ~20; the cap only defends against label-cardinality
#: blowups (e.g. junk 404 paths).
MAX_ROUTES = 64

#: The catch-all route label once :data:`MAX_ROUTES` is reached.
OVERFLOW_ROUTE = "(other)"


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a non-empty list.

    Uses the standard exclusive-of-nothing definition (numpy's default):
    the percentile position is ``q/100 * (n-1)`` and values between ranks
    interpolate linearly — so the p50 of ``[1, 2]`` is ``1.5``, not ``2``
    as the old nearest-rank rounding produced.
    """
    ordered = sorted(samples)
    n = len(ordered)
    if n == 1:
        return ordered[0]
    position = max(0.0, min(100.0, q)) / 100.0 * (n - 1)
    lower = int(position)
    upper = min(lower + 1, n - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def status_class(status: int) -> str:
    """``200 -> "2xx"`` — the low-cardinality status label."""
    return f"{int(status) // 100}xx"


class Metrics:
    """Per-route request counts, status counts and latency percentiles."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        max_samples: int = MAX_SAMPLES,
        max_routes: int = MAX_ROUTES,
    ) -> None:
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        if max_routes < 1:
            raise ValueError(f"max_routes must be >= 1, got {max_routes}")
        self.registry = registry if registry is not None else get_registry()
        self.max_samples = max_samples
        self.max_routes = max_routes
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = defaultdict(int)
        self._statuses: Dict[int, int] = defaultdict(int)
        self._latencies: Dict[str, Deque[float]] = defaultdict(
            lambda: deque(maxlen=max_samples)
        )
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._requests_total = self.registry.counter(
            "requests_total", "Requests served, all routes"
        )
        self._responses_total = self.registry.counter(
            "responses_total",
            "Responses by HTTP status code",
            labelnames=("status",),
        )
        self._route_requests = self.registry.counter(
            "route_requests_total",
            "Requests per route template",
            labelnames=("route",),
        )
        self._latency = self.registry.histogram(
            "request_latency_seconds",
            "Request wall time per route and status class",
            labelnames=("route", "class"),
        )

    @property
    def latency_histogram(self):
        """The registry request-latency histogram (SLOs read this)."""
        return self._latency

    def register_gauges(
        self, label: str, supplier: Callable[[], Any]
    ) -> None:
        """Attach a subsystem's ``stats()`` callable to the snapshot.

        ``supplier`` is invoked on every :meth:`snapshot` and its result
        appears under ``label``; suppliers must be thread-safe and cheap.
        The supplier is also mirrored into the shared registry, so its
        numeric leaves show up as ``chop_<label>_*`` gauges in the
        Prometheus exposition.
        """
        with self._lock:
            self._gauges[label] = supplier
        self.registry.register_stats(label, supplier)

    def _route_label(self, route: str) -> str:
        """Cap route-label cardinality; callers hold the lock."""
        if route in self._requests or (
            len(self._requests) < self.max_routes
        ):
            return route
        return OVERFLOW_ROUTE

    def observe(
        self,
        route: str,
        seconds: float,
        status: int,
        trace_id: Optional[str] = None,
    ) -> None:
        """Record one finished request (``trace_id`` becomes an exemplar)."""
        with self._lock:
            label = self._route_label(route)
            self._requests[label] += 1
            self._statuses[status] += 1
            self._latencies[label].append(seconds)
        self._requests_total.inc()
        self._responses_total.labels(status=str(int(status))).inc()
        self._route_requests.labels(route=label).inc()
        self._latency.labels(
            route=label, **{"class": status_class(status)}
        ).observe(seconds, exemplar=trace_id)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of everything recorded so far."""
        with self._lock:
            suppliers = dict(self._gauges)
            routes: Dict[str, Any] = {}
            for route, count in sorted(self._requests.items()):
                samples = list(self._latencies[route])
                routes[route] = {
                    "count": count,
                    "latency_ms": {
                        "p50": round(percentile(samples, 50) * 1000, 3),
                        "p95": round(percentile(samples, 95) * 1000, 3),
                    }
                    if samples
                    else None,
                }
            doc = {
                "requests_total": sum(self._requests.values()),
                "responses_by_status": {
                    str(code): count
                    for code, count in sorted(self._statuses.items())
                },
                "routes": routes,
            }
        # Suppliers run outside our lock: they take their own locks and
        # must never nest under this one.
        for label, supplier in sorted(suppliers.items()):
            doc[label] = supplier()
        return doc
