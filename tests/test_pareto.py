"""The shared n-dimensional Pareto utility (satellite of repro.explore).

The load-bearing property: the surviving set is a function of the
candidate *set* alone — independent of arrival order and of whether
the batch filter or the online front computed it.  That is what makes
sweep results reproducible across evaluation orders and process pools.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.search.pareto import ParetoFront, dominates, pareto_front

VECTORS = st.lists(
    st.tuples(
        st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)
    ),
    min_size=0,
    max_size=24,
)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1), (2, 2))

    def test_better_somewhere_equal_elsewhere(self):
        assert dominates((1, 2), (1, 3))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_trade_offs_do_not_dominate(self):
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1, 2), (1, 2, 3))


class TestParetoFrontBatch:
    def test_empty(self):
        assert pareto_front([], key=lambda v: v) == []

    def test_preserves_input_order(self):
        items = [(3, 1), (1, 3), (2, 2)]
        assert pareto_front(items, key=lambda v: v) == items

    def test_drops_dominated(self):
        items = [(1, 1), (2, 2), (0, 3)]
        assert pareto_front(items, key=lambda v: v) == [(1, 1), (0, 3)]

    def test_ties_kept(self):
        items = [(1, 1), (1, 1)]
        assert pareto_front(items, key=lambda v: v) == items

    def test_key_extraction(self):
        items = [{"x": 2, "y": 5}, {"x": 1, "y": 1}]
        front = pareto_front(items, key=lambda d: (d["x"], d["y"]))
        assert front == [{"x": 1, "y": 1}]

    @given(VECTORS)
    @settings(max_examples=200, deadline=None)
    def test_front_is_sound_and_complete(self, vectors):
        front = pareto_front(vectors, key=lambda v: v)
        front_set = set(front)
        for kept in front:
            assert not any(
                dominates(other, kept) for other in vectors
            )
        for vector in vectors:
            if vector not in front_set:
                assert any(
                    dominates(kept, vector) for kept in front
                )

    @given(VECTORS, st.randoms())
    @settings(max_examples=200, deadline=None)
    def test_order_invariance(self, vectors, rng):
        shuffled = list(vectors)
        rng.shuffle(shuffled)
        a = pareto_front(vectors, key=lambda v: v)
        b = pareto_front(shuffled, key=lambda v: v)
        assert sorted(a) == sorted(b)


class TestParetoFrontOnline:
    def test_add_reports_membership(self):
        front = ParetoFront(key=lambda v: v)
        assert front.add((2, 2)) is True
        assert front.add((3, 3)) is False  # dominated on arrival
        assert front.add((1, 1)) is True   # evicts (2, 2)
        assert front.points() == [(1, 1)]
        assert front.offered == 3
        assert front.evicted == 1

    def test_points_in_canonical_order(self):
        front = ParetoFront(key=lambda v: v)
        front.extend([(3, 1), (1, 3), (2, 2)])
        assert front.points() == [(1, 3), (2, 2), (3, 1)]

    @given(VECTORS, st.randoms())
    @settings(max_examples=200, deadline=None)
    def test_online_equals_batch_any_order(self, vectors, rng):
        """The explorer's reproducibility property, pinned down.

        Streaming the candidates in any order through ParetoFront
        yields exactly the batch filter's set, canonically ordered —
        so serial and process-pool sweeps serialize identically.
        """
        shuffled = list(vectors)
        rng.shuffle(shuffled)
        online = ParetoFront(key=lambda v: v)
        online.extend(shuffled)
        batch = pareto_front(vectors, key=lambda v: v)
        assert online.points() == sorted(batch)
        assert online.vectors() == sorted(batch)
