"""Tests for the BAD predictor facade."""

from __future__ import annotations

import pytest

from repro.bad.predictor import BADPredictor, PredictorParameters
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.dfg.builders import GraphBuilder
from repro.errors import PredictionError
from repro.memory.module import MemoryModule


class TestPredictionLists:
    def test_sorted_by_paper_order(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        keys = [p.sort_key() for p in preds]
        assert keys == sorted(keys)

    def test_deduplicated(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        seen = set()
        for p in preds:
            key = (
                p.module_set.label,
                tuple(sorted(p.operators.items())),
                p.ii_main,
                p.latency_main,
                p.pipelined,
            )
            assert key not in seen
            seen.add(key)

    def test_single_cycle_excludes_slow_modules(
        self, exp1_predictor, ar_graph
    ):
        preds = exp1_predictor.predict_partition(ar_graph)
        # mul3 (7370 ns) does not fit a 3000 ns datapath cycle.
        assert all("mul3" not in p.module_set.label for p in preds)

    def test_multi_cycle_includes_all_modules(
        self, exp2_predictor, ar_graph
    ):
        preds = exp2_predictor.predict_partition(ar_graph)
        labels = {p.module_set.label for p in preds}
        assert any("mul3" in label for label in labels)

    def test_multi_cycle_ii_spectrum_is_wider(
        self, exp1_predictor, exp2_predictor, ar_graph
    ):
        ii1 = {p.ii_main for p in exp1_predictor.predict_partition(ar_graph)}
        ii2 = {p.ii_main for p in exp2_predictor.predict_partition(ar_graph)}
        assert len(ii2) > len(ii1)

    def test_partition_subset(self, exp1_predictor, ar_graph):
        ops = sorted(ar_graph.operations)[:10]
        preds = exp1_predictor.predict_partition(
            ar_graph, ops, name="PX"
        )
        assert preds
        assert all(p.partition == "PX" for p in preds)

    def test_empty_partition_rejected(self, exp1_predictor, ar_graph):
        with pytest.raises(PredictionError):
            exp1_predictor.predict_partition(ar_graph, [], name="PE")


class TestPredictionContents:
    def test_main_cycle_conversion(self, exp1_predictor, ar_graph):
        for p in exp1_predictor.predict_partition(ar_graph):
            assert p.ii_main == p.ii_dp * 10
            assert p.latency_main == p.latency_dp * 10

    def test_pipelined_ii_below_latency(self, exp1_predictor, ar_graph):
        for p in exp1_predictor.predict_partition(ar_graph):
            if p.pipelined:
                assert p.ii_dp < p.latency_dp
            else:
                assert p.ii_dp == p.latency_dp

    def test_area_breakdown_sums(self, exp1_predictor, ar_graph):
        for p in exp1_predictor.predict_partition(ar_graph)[:10]:
            parts = p.area.as_dict().values()
            total = p.area_total
            assert total.ml == pytest.approx(
                sum(part.ml for part in parts)
            )

    def test_io_bits(self, exp1_predictor, ar_graph):
        (pred,) = exp1_predictor.predict_partition(ar_graph)[:1]
        assert pred.input_bits == 18 * 16
        assert pred.output_bits == 2 * 16

    def test_clock_overhead_positive(self, exp1_predictor, ar_graph):
        for p in exp1_predictor.predict_partition(ar_graph)[:10]:
            assert p.clock_overhead_ns > 0

    def test_guideline_lines_mention_decisions(
        self, exp1_predictor, ar_graph
    ):
        pred = exp1_predictor.predict_partition(ar_graph)[0]
        text = "\n".join(pred.guideline_lines())
        assert "design style" in text
        assert "module library" in text
        assert "registers" in text
        assert "multiplexers" in text


class TestDominance:
    def test_dominates_strict(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        for p in preds:
            assert not p.dominates(p)

    def test_dominance_definition(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        a, b = preds[0], preds[-1]
        if a.dominates(b):
            assert a.ii_main <= b.ii_main
            assert a.latency_main <= b.latency_main
            assert a.area_total.ml <= b.area_total.ml


class TestMemoryPartitions:
    @pytest.fixture
    def memory_graph(self):
        b = GraphBuilder("mem")
        a0 = b.input("a0")
        r0 = b.mem_read(a0, "M")
        r1 = b.mem_read(a0, "M")
        s = b.add(r0, r1, name="s")
        b.mem_write(s, "M")
        b.output(s)
        return b.build()

    @pytest.fixture
    def memory_predictor(self, library, exp2_clocks, exp2_style):
        return BADPredictor(
            library, exp2_clocks, exp2_style,
            memories={"M": MemoryModule("M", 256, 16, ports=1,
                                        access_time_ns=200.0)},
        )

    def test_memory_bandwidth_reported(
        self, memory_predictor, memory_graph
    ):
        preds = memory_predictor.predict_partition(memory_graph)
        for p in preds:
            assert p.memory_bandwidth_bits == {"M": 3 * 16}

    def test_port_limit_bounds_capacity(
        self, memory_predictor, memory_graph
    ):
        preds = memory_predictor.predict_partition(memory_graph)
        # With one port, memory operations serialize: the fastest
        # iteration needs at least 3 memory access slots.
        assert min(p.ii_dp for p in preds) >= 3

    def test_unknown_block_raises(self, library, exp2_clocks, exp2_style,
                                  memory_graph):
        predictor = BADPredictor(library, exp2_clocks, exp2_style)
        with pytest.raises(PredictionError):
            predictor.predict_partition(memory_graph)


class TestParameters:
    def test_custom_parameters_change_areas(self, library, exp1_clocks,
                                            exp1_style, ar_graph):
        lean = BADPredictor(
            library, exp1_clocks, exp1_style,
            params=PredictorParameters(mux_sharing_factor=0.3),
        )
        fat = BADPredictor(
            library, exp1_clocks, exp1_style,
            params=PredictorParameters(mux_sharing_factor=1.0),
        )
        lean_pred = lean.predict_partition(ar_graph)[0]
        fat_pred = fat.predict_partition(ar_graph)[0]
        assert lean_pred.mux_count < fat_pred.mux_count
