"""The design-space explorer: config, sweeps, fronts, determinism."""

from __future__ import annotations

import json

import pytest

from repro.chips.package import ChipPackage
from repro.dfg.builders import generate_dfg
from repro.errors import PartitioningError, SearchCancelled
from repro.explore import (
    ExploreConfig,
    explore,
    project_session_factory,
    scale_package,
)
from repro.experiments import experiment1_session
from repro.io.project import load_project
from repro.search.pareto import dominates


@pytest.fixture(scope="module")
def graph():
    return generate_dfg("layered", 60, seed=0)


@pytest.fixture(scope="module")
def swept(graph):
    return explore(
        graph, ExploreConfig(chip_counts=(1, 2, 3))
    )


class TestConfigValidation:
    def test_defaults_validate(self):
        ExploreConfig().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"chip_counts": ()},
            {"chip_counts": (0,)},
            {"chip_counts": (1.5,)},
            {"package_scales": ()},
            {"package_scales": (0.0,)},
            {"package_scales": (-1.0,)},
            {"objectives": ()},
            {"objectives": ("cost", "speed")},
            {"objectives": ("cost", "cost")},
            {"seeding": "magic"},
            {"heuristic": "genetic"},
        ],
    )
    def test_bad_configs_rejected(self, overrides):
        with pytest.raises(PartitioningError):
            ExploreConfig(**overrides).validate()

    def test_k_beyond_op_count_rejected(self):
        with pytest.raises(PartitioningError):
            ExploreConfig(chip_counts=(999,)).validate(op_count=60)

    def test_op_count_unknown_allows_any_k(self):
        ExploreConfig(chip_counts=(999,)).validate()


class TestScalePackage:
    def test_identity_scale_returns_same_object(self):
        package = ChipPackage("p", 100.0, 200.0, 64, 25.0, 297.6)
        assert scale_package(package, 1.0) is package

    def test_area_scales_aspect_preserved(self):
        package = ChipPackage("p", 100.0, 200.0, 64, 25.0, 297.6)
        scaled = scale_package(package, 2.0)
        assert scaled.project_area_mil2 == pytest.approx(
            2.0 * package.project_area_mil2
        )
        assert scaled.width_mil / scaled.height_mil == pytest.approx(
            package.width_mil / package.height_mil
        )
        assert scaled.pin_count == package.pin_count
        assert scaled.name == "px2"


class TestSweep:
    def test_census_covers_every_candidate(self, swept):
        assert swept.evaluated == 3
        assert len(swept.candidates) == 3
        assert (
            swept.feasible + swept.infeasible + swept.skipped
            == swept.evaluated
        )

    def test_front_is_non_dominated(self, swept):
        objectives = swept.config.objectives
        vectors = [p.vector(objectives) for p in swept.front]
        for a in vectors:
            assert not any(
                dominates(b, a) for b in vectors if b is not a
            )

    def test_front_spans_chip_counts(self, swept):
        assert len(swept.front) >= 2
        assert len({p.chips for p in swept.front}) >= 2

    def test_front_points_reload_through_check(self, swept):
        for point in swept.front:
            session = load_project(point.project)
            result = session.check()
            assert result.feasible
            best = result.best()
            assert best.ii_main == point.ii_main
            assert best.delay_main == point.delay_main

    def test_order_invariance(self, graph, swept):
        reversed_sweep = explore(
            graph, ExploreConfig(chip_counts=(3, 2, 1))
        )
        objectives = swept.config.objectives
        assert [p.to_dict(objectives) for p in reversed_sweep.front] \
            == [p.to_dict(objectives) for p in swept.front]

    def test_serial_and_engine_byte_identical(self, graph):
        from repro.engine import EvaluationEngine

        config = ExploreConfig(
            chip_counts=(2, 3), heuristic="enumeration"
        )
        serial = explore(graph, config)
        engine = EvaluationEngine(workers=2)
        sharded = explore(graph, config, engine=engine)
        assert (
            json.dumps(serial.to_dict(), sort_keys=True).encode()
            == json.dumps(sharded.to_dict(), sort_keys=True).encode()
        )

    def test_impossible_band_is_skipped_not_fatal(self):
        # A wide two-level graph cannot be horizontally cut into 4
        # bands even though it has plenty of operations; the candidate
        # must be skipped with a reason, not kill the sweep.
        from repro.dfg.builders import GraphBuilder

        builder = GraphBuilder("wide", default_width=16)
        sums = [
            builder.add(
                builder.input(f"a{i}"), builder.input(f"b{i}"),
                name=f"s{i}",
            )
            for i in range(6)
        ]
        builder.output(sums[0])
        wide = builder.build()
        result = explore(wide, ExploreConfig(chip_counts=(1, 4)))
        assert result.skipped == 1
        skipped = [
            row for row in result.candidates
            if row["status"] == "skipped"
        ]
        assert len(skipped) == 1 and "reason" in skipped[0]

    def test_cancel_raises_search_cancelled(self, graph):
        with pytest.raises(SearchCancelled):
            explore(
                graph,
                ExploreConfig(chip_counts=(1, 2)),
                cancel=lambda: True,
            )

    def test_progress_reports_each_candidate(self, graph):
        seen = []
        explore(
            graph,
            ExploreConfig(chip_counts=(1, 2)),
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_disk_cache_seeds_second_sweep(self, graph, tmp_path):
        from repro.engine import DiskPredictionCache

        cache = DiskPredictionCache(tmp_path)
        config = ExploreConfig(chip_counts=(1, 2))
        cold = explore(graph, config, disk_cache=cache)
        warm = explore(graph, config, disk_cache=cache)
        assert cold.cache_seeded == 0
        assert warm.cache_seeded >= 2
        cold_doc, warm_doc = cold.to_dict(), warm.to_dict()
        cold_doc.pop("cache_seeded")
        warm_doc.pop("cache_seeded")
        assert cold_doc == warm_doc

    def test_auto_seeding(self, graph):
        result = explore(
            graph,
            ExploreConfig(chip_counts=(2,), seeding="auto"),
        )
        assert result.feasible == 1
        assert len(result.front) == 1

    def test_to_dict_project_toggle(self, swept):
        with_projects = swept.to_dict(include_projects=True)
        without = swept.to_dict(include_projects=False)
        assert all("project" in p for p in with_projects["front"])
        assert all("project" not in p for p in without["front"])


class TestProjectFactory:
    def test_inherits_designer_inputs(self, graph):
        base = experiment1_session(
            package_number=2, partition_count=2
        )
        factory = project_session_factory(base)
        session = factory(graph, 3, 1.0)
        assert session.library is base.library
        assert session.criteria is base.criteria
        assert sorted(session.chips) == ["chip1", "chip2", "chip3"]
        # base has two package-2 chips; round-robin reuses them.
        assert (
            session.chips["chip1"].package.name
            == base.chips["chip1"].package.name
        )

    def test_scale_applied_to_reused_packages(self, graph):
        base = experiment1_session(
            package_number=2, partition_count=2
        )
        session = project_session_factory(base)(graph, 2, 4.0)
        assert session.chips["chip1"].package.project_area_mil2 \
            == pytest.approx(
                4.0
                * base.chips["chip1"].package.project_area_mil2
            )
