"""Tests for the synthesis backend and prediction validation."""

from __future__ import annotations

import pytest

from repro.bad.allocation import partition_resource_model
from repro.bad.scheduling import list_schedule
from repro.errors import PredictionError
from repro.synth.binding import bind_design
from repro.synth.netlist import build_netlist
from repro.synth.validate import (
    synthesize_prediction,
    validation_report,
)


def _schedule(graph, capacities=None):
    duration = {op.id: 1 for op in graph.operations.values()} if False \
        else {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    return list_schedule(graph, duration, op_class, capacities or counts)


class TestUnitBinding:
    def test_every_operation_bound(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 3, "mul": 4})
        bound = bind_design(ar_graph, schedule)
        assert set(bound.unit_of) == set(ar_graph.operations)

    def test_units_within_capacity(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 3, "mul": 4})
        bound = bind_design(ar_graph, schedule)
        assert bound.units_used["add"] <= 3
        assert bound.units_used["mul"] <= 4

    def test_no_double_booking(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 2, "mul": 3})
        bound = bind_design(ar_graph, schedule)
        for cls, used in bound.units_used.items():
            for index in range(used):
                ops = bound.operations_on(cls, index)
                spans = sorted(
                    (schedule.start[o], schedule.finish(o)) for o in ops
                )
                for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
                    assert e1 <= b2, f"{cls}#{index} double-booked"

    def test_serial_binding_uses_one_unit(self, chain_graph):
        schedule = _schedule(chain_graph, {"add": 1})
        bound = bind_design(chain_graph, schedule)
        assert bound.units_used == {"add": 1}


class TestRegisterBinding:
    def test_no_lifetime_overlap_within_register(self, ar_graph):
        from repro.bad.allocation import value_lifetimes

        schedule = _schedule(ar_graph, {"add": 2, "mul": 2})
        bound = bind_design(ar_graph, schedule)
        lifetimes = value_lifetimes(ar_graph, schedule)
        for register in range(bound.register_count):
            spans = sorted(
                lifetimes[v] for v in bound.values_in(register)
            )
            for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
                assert e1 <= b2

    def test_left_edge_matches_max_live(self, ar_graph):
        from repro.bad.allocation import register_requirement

        schedule = _schedule(ar_graph, {"add": 2, "mul": 2})
        bound = bind_design(ar_graph, schedule)
        # Left-edge is optimal for interval graphs: register count equals
        # the max-live bound the predictor computed.
        expected = register_requirement(
            ar_graph, schedule, schedule.latency
        )
        assert bound.register_count == expected


class TestNetlist:
    def test_areas_positive_and_consistent(self, ar_graph, library):
        schedule = _schedule(ar_graph, {"add": 2, "mul": 3})
        bound = bind_design(ar_graph, schedule)
        module_set = library.module_sets(
            list(ar_graph.op_counts_by_type())
        )[0]
        netlist = build_netlist(
            ar_graph, schedule, bound, module_set, library, 16
        )
        assert netlist.functional_area_mil2 > 0
        assert netlist.register_area_mil2 > 0
        assert netlist.area_mil2 == pytest.approx(
            netlist.functional_area_mil2
            + netlist.register_area_mil2
            + netlist.mux_area_mil2
            + netlist.controller_area_mil2
            + netlist.wiring_area_mil2
        )

    def test_sharing_creates_muxes(self, ar_graph, tiny_graph, library):
        module_set = library.module_sets(
            list(ar_graph.op_counts_by_type())
        )[0]
        shared = _schedule(ar_graph, {"add": 1, "mul": 2})
        netlist_shared = build_netlist(
            ar_graph, shared, bind_design(ar_graph, shared),
            module_set, library, 16,
        )
        assert netlist_shared.mux_count > 0

        # A single operation: one unit, one register, one writer — no
        # steering anywhere.
        from repro.dfg.builders import GraphBuilder

        b = GraphBuilder("one-op")
        x = b.input("x")
        k = b.input("k")
        y = b.mul(x, k, name="y")
        b.output(y)
        one_op = b.build()
        unshared = _schedule(one_op)
        netlist_unshared = build_netlist(
            one_op, unshared, bind_design(one_op, unshared),
            module_set, library, 16,
        )
        assert netlist_unshared.mux_count == 0


class TestValidation:
    @pytest.fixture(scope="class")
    def comparisons(self, exp1_predictor, ar_graph):
        predictions = exp1_predictor.predict_partition(ar_graph)
        return validation_report(exp1_predictor, ar_graph, predictions)

    def test_predictions_mostly_within_bounds(self, comparisons):
        """The paper's accuracy claim: most predictions bracket the
        synthesized reality."""
        within = sum(1 for c in comparisons if c.within_bounds)
        assert within / len(comparisons) >= 0.8

    def test_most_likely_error_small(self, comparisons):
        errors = [abs(c.relative_error) for c in comparisons]
        assert sum(errors) / len(errors) < 0.10

    def test_pipelined_rejected(self, exp1_predictor, ar_graph):
        predictions = exp1_predictor.predict_partition(ar_graph)
        pipelined = [p for p in predictions if p.pipelined]
        if not pipelined:
            pytest.skip("no pipelined predictions")
        with pytest.raises(PredictionError, match="nonpipelined"):
            synthesize_prediction(
                exp1_predictor, ar_graph, pipelined[0]
            )

    def test_functional_area_exact(self, comparisons):
        """Unit areas are exact library data: the predicted functional
        area equals the synthesized one whenever unit counts agree."""
        for c in comparisons:
            if dict(c.prediction.operators) == dict(
                c.netlist.unit_instances
            ):
                assert c.prediction.area.functional_units.ml == (
                    pytest.approx(c.netlist.functional_area_mil2)
                )

    def test_partition_scope(self, exp1_predictor, ar_graph):
        ops = sorted(ar_graph.operations)[:12]
        predictions = exp1_predictor.predict_partition(
            ar_graph, ops, name="PX"
        )
        comparisons = validation_report(
            exp1_predictor, ar_graph, predictions, ops
        )
        assert comparisons
