"""Tests for unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.units import ceil_div, cycles_for_delay, rect_area


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(6, 3) == 2

    def test_rounds_up(self):
        assert ceil_div(7, 3) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_matches_float_ceiling(self, n, d):
        result = ceil_div(n, d)
        assert (result - 1) * d < n or n == 0
        assert result * d >= n


class TestCyclesForDelay:
    def test_fits_one_cycle(self):
        assert cycles_for_delay(151.0, 300.0) == 1

    def test_exact_boundary_is_one_cycle(self):
        assert cycles_for_delay(300.0, 300.0) == 1

    def test_just_over_boundary(self):
        assert cycles_for_delay(300.1, 300.0) == 2

    def test_zero_delay_still_one_cycle(self):
        assert cycles_for_delay(0.0, 300.0) == 1

    def test_paper_mul2_in_main_clock(self):
        # mul2 is 2950 ns; at a 300 ns cycle that is 10 cycles.
        assert cycles_for_delay(2950.0, 300.0) == 10

    def test_paper_mul3_in_main_clock(self):
        # mul3 is 7370 ns -> 25 cycles of 300 ns.
        assert cycles_for_delay(7370.0, 300.0) == 25

    def test_rejects_non_positive_cycle(self):
        with pytest.raises(ValueError):
            cycles_for_delay(10.0, 0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            cycles_for_delay(-1.0, 300.0)

    @given(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    )
    def test_covers_delay(self, delay, cycle):
        cycles = cycles_for_delay(delay, cycle)
        assert cycles >= 1
        assert cycles * cycle >= delay - 1e-6 * max(delay, 1.0)


class TestRectArea:
    def test_paper_package_area(self):
        assert rect_area(311.02, 362.20) == pytest.approx(112651.444)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            rect_area(0.0, 10.0)
        with pytest.raises(ValueError):
            rect_area(10.0, -1.0)
