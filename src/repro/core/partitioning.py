"""The designer's tentative partitioning.

A :class:`Partitioning` captures everything the designer proposes before
CHOP checks feasibility: the partitions, their assignment to chips, the
memory blocks and their chip assignments.  Multiple partitions may share
a chip; memory blocks may live on design chips or be off-the-shelf chips
of their own (section 2.4, Figure 2).

Structural rules enforced here (section 2.3):

* partitions are disjoint and cover the whole graph,
* no two partitions have mutual data dependency (the partition-level
  dependency graph is acyclic — cyclic data flow among *chips* remains
  allowed because several partitions can share a chip),
* every referenced chip and memory block exists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.chips.chip import Chip
from repro.core.partition import Partition
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import MEMORY_OP_TYPES
from repro.errors import PartitioningError
from repro.memory.module import MemoryModule


class Partitioning:
    """A complete tentative partitioning of one specification."""

    def __init__(
        self,
        graph: DataFlowGraph,
        partitions: Iterable[Partition],
        chips: Iterable[Chip],
        partition_chip: Mapping[str, str],
        memories: Iterable[MemoryModule] = (),
        memory_chip: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.graph = graph
        self.partitions: Dict[str, Partition] = {}
        for partition in partitions:
            if partition.name in self.partitions:
                raise PartitioningError(
                    f"duplicate partition name {partition.name!r}"
                )
            self.partitions[partition.name] = partition
        self.chips: Dict[str, Chip] = {}
        for chip in chips:
            if chip.name in self.chips:
                raise PartitioningError(f"duplicate chip name {chip.name!r}")
            self.chips[chip.name] = chip
        self.partition_chip: Dict[str, str] = dict(partition_chip)
        self.memories: Dict[str, MemoryModule] = {
            m.name: m for m in memories
        }
        self.memory_chip: Dict[str, str] = dict(memory_chip or {})
        self._partition_of: Dict[str, str] = {}
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.partitions:
            raise PartitioningError("a partitioning needs at least one partition")
        covered: Set[str] = set()
        for partition in self.partitions.values():
            unknown = partition.op_ids - set(self.graph.operations)
            if unknown:
                raise PartitioningError(
                    f"partition {partition.name!r} references unknown "
                    f"operations: {sorted(unknown)[:5]}"
                )
            overlap = covered & partition.op_ids
            if overlap:
                raise PartitioningError(
                    f"operations assigned to multiple partitions: "
                    f"{sorted(overlap)[:5]}"
                )
            covered |= partition.op_ids
            for op_id in partition.op_ids:
                self._partition_of[op_id] = partition.name
        uncovered = set(self.graph.operations) - covered
        if uncovered:
            raise PartitioningError(
                f"operations not assigned to any partition: "
                f"{sorted(uncovered)[:5]}"
            )

        for name in self.partitions:
            chip = self.partition_chip.get(name)
            if chip is None:
                raise PartitioningError(
                    f"partition {name!r} is not assigned to a chip"
                )
            if chip not in self.chips:
                raise PartitioningError(
                    f"partition {name!r} assigned to unknown chip {chip!r}"
                )
        for extra in set(self.partition_chip) - set(self.partitions):
            raise PartitioningError(
                f"assignment references unknown partition {extra!r}"
            )

        for mem_name in self.memories:
            chip = self.memory_chip.get(mem_name)
            module = self.memories[mem_name]
            if module.off_the_shelf:
                continue  # its own chip; no design-chip assignment needed
            if chip is None:
                raise PartitioningError(
                    f"on-chip memory {mem_name!r} is not assigned to a chip"
                )
            if chip not in self.chips:
                raise PartitioningError(
                    f"memory {mem_name!r} assigned to unknown chip {chip!r}"
                )
        referenced_blocks = {
            op.memory_block
            for op in self.graph
            if op.op_type in MEMORY_OP_TYPES
        }
        missing = referenced_blocks - set(self.memories)
        if missing:
            raise PartitioningError(
                f"operations access undeclared memory blocks: "
                f"{sorted(missing)}"
            )

        self._check_no_mutual_dependency()

    def _check_no_mutual_dependency(self) -> None:
        """Reject cyclic dependencies between partitions (section 2.3)."""
        edges = self.partition_dependencies()
        # Kahn's algorithm over the partition-level graph.
        indegree = {name: 0 for name in self.partitions}
        for _src, dst in edges:
            indegree[dst] += 1
        ready = [name for name, d in indegree.items() if d == 0]
        seen = 0
        successors: Dict[str, List[str]] = {n: [] for n in self.partitions}
        for src, dst in edges:
            successors[src].append(dst)
        while ready:
            name = ready.pop()
            seen += 1
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if seen != len(self.partitions):
            raise PartitioningError(
                "partitions have mutual data dependencies; the prediction "
                "model requires the partition-level graph to be acyclic "
                "(paper section 2.3)"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def partition_of(self, op_id: str) -> str:
        """Partition name owning the operation."""
        try:
            return self._partition_of[op_id]
        except KeyError:
            raise PartitioningError(
                f"operation {op_id!r} is not assigned"
            ) from None

    def partition_map(self) -> Dict[str, str]:
        """A copy of the operation-to-partition mapping."""
        return dict(self._partition_of)

    def chip_of(self, partition_name: str) -> str:
        chip = self.partition_chip.get(partition_name)
        if chip is None:
            raise PartitioningError(
                f"unknown partition {partition_name!r}"
            )
        return chip

    def partitions_on_chip(self, chip_name: str) -> List[str]:
        if chip_name not in self.chips:
            raise PartitioningError(f"unknown chip {chip_name!r}")
        return sorted(
            name
            for name, chip in self.partition_chip.items()
            if chip == chip_name
        )

    def memories_on_chip(self, chip_name: str) -> List[str]:
        return sorted(
            name
            for name, chip in self.memory_chip.items()
            if chip == chip_name
        )

    def partition_dependencies(self) -> List[Tuple[str, str]]:
        """Distinct (producer partition, consumer partition) pairs."""
        pairs: Set[Tuple[str, str]] = set()
        for _vid, src, dests in self.graph.cut_values(self._partition_of):
            for dst in dests:
                pairs.add((src, dst))
        return sorted(pairs)

    def with_assignment(
        self, partition_name: str, chip_name: str
    ) -> "Partitioning":
        """A copy with one partition moved to another chip (a designer
        modification of section 2.7)."""
        if partition_name not in self.partitions:
            raise PartitioningError(f"unknown partition {partition_name!r}")
        if chip_name not in self.chips:
            raise PartitioningError(f"unknown chip {chip_name!r}")
        assignment = dict(self.partition_chip)
        assignment[partition_name] = chip_name
        return Partitioning(
            graph=self.graph,
            partitions=self.partitions.values(),
            chips=self.chips.values(),
            partition_chip=assignment,
            memories=self.memories.values(),
            memory_chip=self.memory_chip,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partitioning({self.graph.name!r}, "
            f"{len(self.partitions)} partitions on {len(self.chips)} chips)"
        )
