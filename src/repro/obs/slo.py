"""Service-level objectives evaluated from the metrics registry.

An objective is a target over metrics the registry already holds — no
second bookkeeping path:

* :class:`LatencyObjective` — "the p95 of (route-filtered) request
  latency stays under ``threshold_s``", measured from the request
  histogram's buckets;
* :class:`ErrorRateObjective` — "the 5xx share of responses stays under
  ``max_ratio``", measured from the per-status response counters.

:meth:`SLOTracker.evaluate` computes each objective's **burn ratio** —
``measured / objective``, so 1.0 is exactly at target and anything above
is out of budget — and mirrors it into ``slo_burn_ratio{slo=...}`` /
``slo_ok{slo=...}`` gauges in the same registry, which means the SLO
state rides along in both the JSON snapshot and the Prometheus text
exposition.  The service evaluates on every ``GET /slo`` and ``GET
/metrics`` scrape, so the gauges are as fresh as the scrape that reads
them.

Objectives cover the process lifetime (cumulative counters), the right
semantics for soak benchmarks and CI scrapes; windowed burn rates are a
scrape-side derivation (``rate()``) once Prometheus ingests the series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry


@dataclass(frozen=True)
class LatencyObjective:
    """``quantile`` of request latency must stay under ``threshold_s``."""

    name: str
    threshold_s: float
    quantile: float = 0.95
    route: Optional[str] = None  # None aggregates every route

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError(
                f"threshold_s must be > 0, got {self.threshold_s}"
            )
        if not 0 < self.quantile < 1:
            raise ValueError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )


@dataclass(frozen=True)
class ErrorRateObjective:
    """The 5xx share of all responses must stay under ``max_ratio``."""

    name: str
    max_ratio: float

    def __post_init__(self) -> None:
        if not 0 < self.max_ratio <= 1:
            raise ValueError(
                f"max_ratio must be in (0, 1], got {self.max_ratio}"
            )


Objective = Union[LatencyObjective, ErrorRateObjective]


class SLOTracker:
    """Evaluates objectives against a registry and exports burn gauges."""

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: Sequence[Objective],
        latency_metric: str = "request_latency_seconds",
        responses_metric: str = "responses_total",
    ) -> None:
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.registry = registry
        self.objectives = tuple(objectives)
        self.latency_metric = latency_metric
        self.responses_metric = responses_metric
        self._burn = registry.gauge(
            "slo_burn_ratio",
            "Measured value over objective; > 1 is out of budget",
            labelnames=("slo",),
        )
        self._ok = registry.gauge(
            "slo_ok",
            "1 while the objective holds, 0 once it is burned",
            labelnames=("slo",),
        )

    # ------------------------------------------------------------------
    def _measure_latency(
        self, objective: LatencyObjective
    ) -> Optional[float]:
        family = self.registry.get(self.latency_metric)
        if not isinstance(family, Histogram):
            return None
        where = (
            {"route": objective.route}
            if objective.route is not None
            else None
        )
        return family.quantile(objective.quantile, where=where)

    def _measure_error_rate(self) -> Optional[float]:
        family = self.registry.get(self.responses_metric)
        if family is None or "status" not in family.labelnames:
            return None
        total = 0.0
        errors = 0.0
        for sample in family.samples():
            value = sample["value"]
            total += value
            status = sample["labels"].get("status", "")
            if status.startswith("5"):
                errors += value
        if total == 0:
            return None
        return errors / total

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, Any]:
        """Measure every objective, update the burn gauges, report.

        An objective with no data yet (nothing observed) reports
        ``measured: null``, burn 0 and ``ok: true`` — an idle service is
        within budget, not in breach.
        """
        results: List[Dict[str, Any]] = []
        for objective in self.objectives:
            if isinstance(objective, LatencyObjective):
                measured = self._measure_latency(objective)
                target = objective.threshold_s
                doc: Dict[str, Any] = {
                    "name": objective.name,
                    "kind": "latency",
                    "quantile": objective.quantile,
                    "route": objective.route,
                    "objective_s": target,
                    "measured_s": measured,
                }
            else:
                measured = self._measure_error_rate()
                target = objective.max_ratio
                doc = {
                    "name": objective.name,
                    "kind": "error_rate",
                    "objective_ratio": target,
                    "measured_ratio": measured,
                }
            burn = 0.0 if measured is None else measured / target
            ok = burn <= 1.0
            doc["burn"] = round(burn, 6)
            doc["ok"] = ok
            self._burn.labels(slo=objective.name).set(burn)
            self._ok.labels(slo=objective.name).set(1.0 if ok else 0.0)
            results.append(doc)
        return {
            "objectives": results,
            "ok": all(r["ok"] for r in results),
        }


def default_objectives(
    latency_ms: float = 500.0,
    error_rate: float = 0.01,
    quantile: float = 0.95,
) -> List[Objective]:
    """The service's out-of-the-box SLOs (overridable per deployment)."""
    return [
        LatencyObjective(
            name=f"latency_p{int(round(quantile * 100))}",
            threshold_s=latency_ms / 1000.0,
            quantile=quantile,
        ),
        ErrorRateObjective(name="error_rate", max_ratio=error_rate),
    ]
