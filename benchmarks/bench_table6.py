"""Table 6: experiment 2 results.

Paper rows:

    parts pkg H  CPU   trials feas  II  delay clock
    1     2   I  0.44  99     1     40  47    400
    1     2   E  0.23  3      1     40  47    400
    2     2   I  1.41  97     2     20  76    385  (also 22/44)
    2     2   E  1.25  143    3     20  76    385  (also 21/58, 22/45)
    3     2   I  1.82  50     1     20  46    374
    3     2   E  3.51  2912   1     16  38    374

The signature result: at 3 partitions explicit enumeration finds II 16
where the iterative heuristic stops at II 20.
"""

from __future__ import annotations

from repro.experiments import experiment2_session
from repro.reporting.tables import results_table

CELLS = [
    (1, 2, "I"), (1, 2, "E"),
    (2, 2, "I"), (2, 2, "E"),
    (3, 2, "I"), (3, 2, "E"),
]

_HEURISTIC = {"E": "enumeration", "I": "iterative"}


def test_table6_experiment2(benchmark, save_artifact):
    entries = []

    def run_all():
        entries.clear()
        for count, package, letter in CELLS:
            session = experiment2_session(
                partition_count=count, package_number=package
            )
            result = session.check(heuristic=_HEURISTIC[letter])
            entries.append((count, package, letter, result))
        return entries

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = results_table(entries)
    save_artifact("table6_experiment2.txt", text)

    by_cell = {(c, h): r for c, _p, h, r in entries}
    assert all(r.feasible_trials > 0 for r in by_cell.values())

    # Multi-cycle clocks carry the full datapath overhead: adjusted
    # clocks sit well above experiment 1's ~307 ns.
    for result in by_cell.values():
        assert result.best().clock_cycle_ns > 340.0

    # The Table 6 crossover: E beats I at three partitions.
    assert (
        by_cell[(3, "E")].best().ii_main
        < by_cell[(3, "I")].best().ii_main
    )
    # And pays for it with far more trials.
    assert by_cell[(3, "E")].trials > by_cell[(3, "I")].trials * 5

    # More partitions still means higher performance.
    assert (
        by_cell[(3, "E")].best().ii_main
        < by_cell[(1, "E")].best().ii_main
    )
