"""Pluggable prediction-cache backends (see :mod:`repro.cache.backend`).

Call sites select a backend by name through :func:`create_backend`; the
``"auto"`` kind picks the shared multi-writer backend whenever more than
one process will write the directory (the fleet front passes its worker
count) and the classic single-writer disk backend otherwise.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Union

from repro.cache.backend import (
    CACHE_VERSION,
    CacheBackend,
    PredictionCacheBase,
    library_clock_digest,
)
from repro.cache.disk import DiskPredictionCache
from repro.cache.shared import SharedPredictionCache, default_writer_id
from repro.resilience.retry import RetryPolicy

#: Backend names accepted by ``--cache-backend`` and the service option.
BACKEND_KINDS = ("auto", "disk", "shared")


def resolve_backend_kind(kind: str, writers: int = 1) -> str:
    """Resolve ``"auto"`` to a concrete backend for ``writers`` processes."""
    if kind not in BACKEND_KINDS:
        raise ValueError(
            f"unknown cache backend {kind!r}; expected one of "
            f"{', '.join(BACKEND_KINDS)}"
        )
    if kind == "auto":
        return "shared" if writers > 1 else "disk"
    return kind


def create_backend(
    kind: str,
    directory: Union[str, pathlib.Path],
    version: int = CACHE_VERSION,
    retry_policy: Optional[RetryPolicy] = None,
    writers: int = 1,
    writer_id: Optional[str] = None,
) -> PredictionCacheBase:
    """Build the named prediction-cache backend over ``directory``."""
    resolved = resolve_backend_kind(kind, writers=writers)
    if resolved == "shared":
        return SharedPredictionCache(
            directory,
            version=version,
            retry_policy=retry_policy,
            writer_id=writer_id,
        )
    return DiskPredictionCache(
        directory, version=version, retry_policy=retry_policy
    )


__all__ = [
    "BACKEND_KINDS",
    "CACHE_VERSION",
    "CacheBackend",
    "DiskPredictionCache",
    "PredictionCacheBase",
    "SharedPredictionCache",
    "create_backend",
    "default_writer_id",
    "library_clock_digest",
    "resolve_backend_kind",
]
