"""A small RT-level synthesis backend for prediction validation.

The paper validates BAD against the ADAM synthesis tools ("the results
from BAD have been tested using the ADAM Synthesis tools and have been
very accurate so far", section 2.4) and names "synthesize and layout
some partitioned designs" as the immediate next task (section 5).  This
package provides that check without ADAM: it *carries out* the design
decisions a prediction records — binds operations to units, values to
registers (left-edge), builds the steering muxes and the FSM control
words — and prices the resulting netlist exactly from the component
library.  Comparing the exact structural area against the prediction's
(lb, ml, ub) triplet measures the predictor the way the paper did.
"""

from repro.synth.binding import BoundDesign, bind_design
from repro.synth.modulo import ModuloBinding, modulo_register_bind
from repro.synth.netlist import Netlist, build_netlist
from repro.synth.simulate import SimulationError, simulate_netlist
from repro.synth.validate import (
    SynthesisComparison,
    synthesize_prediction,
    validation_report,
)

__all__ = [
    "BoundDesign",
    "bind_design",
    "ModuloBinding",
    "modulo_register_bind",
    "Netlist",
    "build_netlist",
    "SimulationError",
    "simulate_netlist",
    "SynthesisComparison",
    "synthesize_prediction",
    "validation_report",
]
