"""Thread-safe single-flight LRU cache for prediction/verdict memoization.

Interactive sessions re-check the same partitioning repeatedly after
small edits, so the serving layer memoizes BAD predictions and
feasibility verdicts keyed on (partition content hash, library id, style
options) — in practice the project fingerprint plus the check options,
since the fingerprint already covers the partition contents, library and
style (see :func:`repro.io.project.project_fingerprint`).

The cache is *single-flight*: when several threads ask for the same cold
key at once, exactly one computes while the rest block on its future and
are counted as hits.  Failures are never cached — the leader's exception
propagates to every waiter and the key is released for a retry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Dict, Hashable, Tuple


class LRUCache:
    """A bounded LRU map with hit/miss counters and single-flight fills."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Future]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # core API
    # ------------------------------------------------------------------
    def get_or_compute(
        self, key: Hashable, factory: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """Return ``(value, hit)`` for ``key``, computing at most once.

        ``hit`` is ``True`` when the value came from the cache (including
        waiting on another thread's in-flight computation of the same
        key), ``False`` for the one thread that ran ``factory``.
        """
        with self._lock:
            future = self._entries.get(key)
            if future is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                leader = False
            else:
                future = Future()
                self._entries[key] = future
                self._misses += 1
                leader = True
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        if leader:
            try:
                future.set_result(factory())
            except BaseException as exc:
                future.set_exception(exc)
                with self._lock:
                    if self._entries.get(key) is future:
                        del self._entries[key]
                raise
            return future.result(), False
        return future.result(), True

    def invalidate(self, key: Hashable) -> bool:
        """Drop one key; returns whether it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/metrics``."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / total) if total else 0.0,
            }


def check_cache_key(
    fingerprint: str, heuristic: str, prune: bool = True
) -> Tuple[str, str, bool]:
    """The memoization key for one feasibility check.

    The project fingerprint hashes the canonicalized document — graph,
    library, clocks, style, criteria, chip set, memories and partition
    contents — so two checks share a key exactly when the paper's six
    input groups and the search options all agree.
    """
    return (fingerprint, heuristic, prune)
