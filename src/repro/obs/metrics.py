"""A unified, process-wide metrics registry for the CHOP stack.

Every subsystem used to keep its own gauge dict and the service glued
them together by flattening nested JSON at exposition time.  This module
replaces that patchwork with one typed, thread-safe registry holding
first-class metric families:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — set-to-current values, optionally *pull-style* via a
  callback evaluated at collection time;
* :class:`Histogram` — fixed exponential buckets, cumulative counts, a
  running sum, bucket-derived quantiles (:meth:`Histogram.quantile`) and
  an optional *exemplar* trace id per label set, so a latency spike in a
  dashboard links straight back to one trace.

Families are addressed by a base name (``engine_shard_seconds``) and an
immutable tuple of label names; ``labels(...)`` returns the child for
one label-value combination.  Creation is get-or-create: any subsystem
may ask the process-wide registry (:func:`get_registry`) for a family at
import time, and the first caller wins — a second registration with a
different type or label set is a programming error and raises.

Exposition is dual:

* :meth:`MetricsRegistry.snapshot` — a JSON document (used by tests and
  the service's machine-readable surfaces);
* :func:`repro.obs.prometheus.render_registry` — the Prometheus text
  format 0.0.4, emitted entirely from registry samples (the old
  nested-dict flattening path is gone).

Legacy ``stats()`` suppliers plug in through
:meth:`MetricsRegistry.register_stats`: the supplier's numeric leaves
become real pull-gauges named ``<namespace>_<path>`` at collection time,
so existing subsystems appear in both expositions without rewriting
their bookkeeping.

Everything is stdlib-only; observation cost is one lock acquire plus a
bisect, cheap enough for per-request and per-shard call sites (never
per-combination — hot loops stay uninstrumented).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default latency buckets: exponential, 0.5 ms doubling up to ~16 s.
#: Chosen so interactive checks (1-100 ms), engine shards (10 ms - 1 s)
#: and background sweeps (seconds) all land mid-range.
DEFAULT_BUCKETS: Tuple[float, ...]


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor ** i for i in range(count))


DEFAULT_BUCKETS = exponential_buckets(0.0005, 2.0, 16)

_LabelValues = Tuple[str, ...]


def _check_labels(
    labelnames: Sequence[str], labels: Mapping[str, Any]
) -> _LabelValues:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {tuple(labelnames)}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Family:
    """Common machinery: name, help, label names, child table, lock."""

    kind = "abstract"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str]
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[_LabelValues, Any] = {}

    def labels(self, **labels: Any) -> Any:
        """The child for one label-value combination (created on demand)."""
        values = _check_labels(self.labelnames, labels)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._new_child()
                self._children[values] = child
            return child

    def _default_child(self) -> Any:
        """The implicit child of an unlabeled family."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                f"use .labels(...)"
            )
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._new_child()
                self._children[()] = child
            return child

    def _new_child(self) -> Any:
        raise NotImplementedError

    def _items(self) -> List[Tuple[_LabelValues, Any]]:
        with self._lock:
            return sorted(self._children.items())

    def samples(self) -> List[Dict[str, Any]]:
        """JSON-ready sample documents, one per label-value combination."""
        out = []
        for values, child in self._items():
            doc = child.sample()
            doc["labels"] = dict(zip(self.labelnames, values))
            out.append(doc)
        return out


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Counter(_Family):
    """A monotonically increasing total (optionally labeled)."""

    kind = COUNTER

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Pull-style: ``fn`` is called at every collection."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        # The callback runs outside the lock: it may touch other locks
        # (subsystem stats) and must never nest under ours.
        return float(fn())

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(_Family):
    """A value that can go up and down, or be computed at collect time."""

    kind = GAUGE

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._default_child().set_function(fn)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_exemplar")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        # counts[i] observations fell in (bounds[i-1], bounds[i]];
        # counts[-1] is the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._exemplar: Optional[Dict[str, Any]] = None

    def observe(
        self, value: float, exemplar: Optional[str] = None
    ) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if exemplar is not None:
                self._exemplar = {
                    "trace_id": exemplar, "value": value,
                }

    def snapshot(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum

    def sample(self) -> Dict[str, Any]:
        counts, total = self.snapshot()
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            cumulative[format_bound(bound)] = running
        cumulative["+Inf"] = running + counts[-1]
        doc: Dict[str, Any] = {
            "count": cumulative["+Inf"],
            "sum": total,
            "buckets": cumulative,
        }
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            doc[key] = quantile_from_counts(self._bounds, counts, q)
        with self._lock:
            if self._exemplar is not None:
                doc["exemplar"] = dict(self._exemplar)
        return doc


def format_bound(bound: float) -> str:
    """A bucket upper bound as Prometheus renders ``le`` values."""
    if bound == math.inf:
        return "+Inf"
    if bound == int(bound):
        return str(float(bound))
    return f"{bound:.10g}"


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Bucket-derived quantile: linear interpolation within the bucket.

    Mirrors Prometheus's ``histogram_quantile``: the target rank is
    ``q * count`` and the value interpolates linearly between the
    containing bucket's bounds (lower bound 0 for the first bucket).
    Observations in the +Inf bucket clamp to the last finite bound.
    Returns ``None`` for an empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return None
    q = min(1.0, max(0.0, q))
    rank = q * total
    running = 0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        running += count
        if running >= rank and count > 0:
            fraction = (rank - (running - count)) / count
            return lower + (bound - lower) * fraction
    return float(bounds[-1]) if bounds else None


class Histogram(_Family):
    """Fixed-bucket latency/size distribution with exemplar support."""

    kind = HISTOGRAM

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if any(b <= 0 for b in bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"bucket bounds must be positive and distinct: {bounds}"
            )
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(
        self, value: float, exemplar: Optional[str] = None
    ) -> None:
        self._default_child().observe(value, exemplar=exemplar)

    def aggregate(
        self, where: Optional[Mapping[str, str]] = None
    ) -> Tuple[List[int], int, float]:
        """``(bucket counts, total count, sum)`` over matching children.

        ``where`` filters children by label equality (subset match);
        ``None`` aggregates every child.
        """
        counts = [0] * (len(self.buckets) + 1)
        total_sum = 0.0
        for values, child in self._items():
            labels = dict(zip(self.labelnames, values))
            if where and any(
                labels.get(k) != str(v) for k, v in where.items()
            ):
                continue
            child_counts, child_sum = child.snapshot()
            for i, c in enumerate(child_counts):
                counts[i] += c
            total_sum += child_sum
        return counts, sum(counts), total_sum

    def quantile(
        self, q: float, where: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """Bucket-derived quantile over (a label subset of) the family."""
        counts, total, _ = self.aggregate(where)
        if total == 0:
            return None
        return quantile_from_counts(self.buckets, counts, q)

    def bucket_width_at(self, value: float) -> float:
        """The width of the bucket containing ``value`` (error bound)."""
        index = bisect.bisect_left(self.buckets, value)
        if index >= len(self.buckets):
            return math.inf
        lower = self.buckets[index - 1] if index else 0.0
        return self.buckets[index] - lower


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A thread-safe, get-or-create table of metric families.

    One instance is process-wide (:func:`get_registry`); tests build
    private instances for isolation.  ``prefix`` is prepended to every
    exposed name (``requests_total`` -> ``chop_requests_total``).
    """

    def __init__(self, prefix: str = "chop") -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._stats_suppliers: Dict[
            str, Callable[[], Mapping[str, Any]]
        ] = {}

    # -- family creation -----------------------------------------------
    def _get_or_create(
        self, cls, name: str, help: str,
        labelnames: Sequence[str], **kwargs: Any,
    ):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.labelnames}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def register_stats(
        self, namespace: str, supplier: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Expose a legacy ``stats()`` supplier as pull-gauges.

        At collection time the supplier runs once and each numeric leaf
        of its (possibly nested) result becomes a gauge sample named
        ``<namespace>_<path>`` (booleans as 0/1, strings and lists
        skipped).  Suppliers must be thread-safe and cheap.
        """
        with self._lock:
            self._stats_suppliers[namespace] = supplier

    # -- collection ----------------------------------------------------
    def _stats_samples(self) -> List[Dict[str, Any]]:
        """The supplier-derived gauge families, evaluated now."""
        with self._lock:
            suppliers = sorted(self._stats_suppliers.items())
        out: List[Dict[str, Any]] = []
        for namespace, supplier in suppliers:
            leaves: List[Tuple[str, float]] = []
            _numeric_leaves(leaves, [namespace], supplier())
            for path, value in leaves:
                out.append(
                    {
                        "name": path,
                        "type": GAUGE,
                        "help": f"{namespace} subsystem gauge",
                        "samples": [{"labels": {}, "value": value}],
                    }
                )
        return out

    def collect(self) -> List[Dict[str, Any]]:
        """Every family as a JSON-ready document, sorted by name.

        Typed families first-class; supplier-derived gauges appended.
        Names are *base* names — expositions add :attr:`prefix`.
        """
        with self._lock:
            families = sorted(self._families.items())
        docs = [
            {
                "name": name,
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
            for name, family in families
        ]
        docs.extend(self._stats_samples())
        docs.sort(key=lambda d: d["name"])
        return docs

    def snapshot(self) -> Dict[str, Any]:
        """The JSON exposition: ``{exposed_name: family document}``."""
        return {
            f"{self.prefix}_{doc['name']}": {
                "type": doc["type"],
                "help": doc["help"],
                "samples": doc["samples"],
            }
            for doc in self.collect()
        }


def _numeric_leaves(
    out: List[Tuple[str, float]], prefix: List[str], value: Any
) -> None:
    if isinstance(value, Mapping):
        for key in sorted(value, key=str):
            _numeric_leaves(out, prefix + [str(key)], value[key])
        return
    if isinstance(value, bool):
        out.append(("_".join(prefix), 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append(("_".join(prefix), float(value)))
    # strings, None, lists: not representable as one gauge — skipped.


_REGISTRY_LOCK = threading.Lock()
_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem shares."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = MetricsRegistry()
        return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY or MetricsRegistry()
        _REGISTRY = registry
        return previous
