"""Serial vs engine-sharded enumeration on the largest example spec.

Measures the wall-clock of the same combination walk run serially and
through :class:`repro.engine.EvaluationEngine` at increasing worker
counts, asserting byte-identical results at every width, and records the
table into ``benchmarks/results/parallel_speedup.txt`` plus a
machine-readable ``benchmarks/results/BENCH_parallel.json`` (per worker
count: wall seconds and combinations/second).

The run also benches the vectorized evaluation kernel
(:mod:`repro.kernels`) against the scalar reference on a
screen-dominated 1000-combination shard, asserting identical results
and a >= 4x speedup, and records
``benchmarks/results/BENCH_vectorized.json`` — see
``docs/performance.md`` for what each field means and why the workload
is screen-dominated.

Run directly (no pytest needed)::

    python benchmarks/bench_parallel.py            # full: 2/4/8 workers
    python benchmarks/bench_parallel.py --smoke    # CI: equivalence only

The full run additionally asserts a >= 2x speedup at 4 workers — but
only on machines that actually have 4 cores; on smaller hosts (and in
``--smoke`` mode) the table is still produced and the equivalence and
vectorized-kernel checks still gate, because correctness does not need
cores.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
SPEC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples", "specs",
    "moving_average.chop")


def build_session(performance_ns: float = 120_000.0):
    """The bench workload: the 8-tap moving average over 3 chips."""
    from repro.bad.styles import (
        ArchitectureStyle, ClockScheme, OperationTiming,
    )
    from repro.chips.presets import mosis_package
    from repro.core.chop import ChopSession
    from repro.core.feasibility import FeasibilityCriteria
    from repro.core.schemes import horizontal_cut
    from repro.dfg.parser import parse_spec
    from repro.library.presets import extended_library
    from repro.memory.module import MemoryModule

    with open(SPEC) as handle:
        graph = parse_spec(handle.read())
    blocks = sorted(
        {
            op.memory_block
            for op in graph
            if getattr(op, "memory_block", None)
        }
    )
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=performance_ns, delay_ns=performance_ns
        ),
        memories=[
            MemoryModule(name, 256, 16, off_the_shelf=True)
            for name in blocks
        ],
    )
    parts = horizontal_cut(graph, 3)
    assignment = {}
    for index, part in enumerate(parts):
        chip = f"chip{index + 1}"
        session.add_chip(chip, mosis_package(2))
        assignment[part.name] = chip
    session.set_partitions(parts, assignment)
    return session


def comparable(result) -> dict:
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


def timed_check(session, prune: bool, engine=None):
    started = time.perf_counter()
    result = session.check(
        heuristic="enumeration", prune=prune, engine=engine
    )
    return result, time.perf_counter() - started


#: The kernel bench shard: the first 1000 flat indices of the raw
#: combination space.
KERNEL_SHARD = 1000
#: The gate the vectorized kernel must clear on the shard.
KERNEL_MIN_SPEEDUP = 4.0
#: Criteria for the kernel-stress workload.  At 2400 ns every raw
#: prediction's *lower-bound* performance already violates the
#: criterion, so the verdict screens can prove the whole shard
#: infeasible without a single scalar evaluation — the regime the
#: vectorized kernel exists for (docs/performance.md, "cost model").
KERNEL_STRESS_NS = 2_400.0


def bench_vectorized(smoke: bool) -> dict:
    """Scalar vs vectorized kernel on a screen-dominated shard.

    Returns the ``BENCH_vectorized.json`` document.  Two invariants
    gate (``identity_ok`` and ``speedup_ok``); the raw speedup is
    recorded for the trajectory checker with a wide band — the
    vectorized side finishes in well under a millisecond, so its
    absolute time is noise-dominated.
    """
    from repro.engine.workers import EvaluationProblem, evaluate_range
    from repro.kernels import evaluate_range_batch, lexicographic_argmin
    from repro.kernels.batch import screen_block

    session = build_session(performance_ns=KERNEL_STRESS_NS)
    predictions = session.predict_all()
    problem = EvaluationProblem.build(
        session.partitioning(), predictions, session.clocks,
        session.library, session.criteria, prune=True,
    )
    total = problem.combination_count()
    stop = min(KERNEL_SHARD, total)

    def best_of(runs, func):
        best_s, last = float("inf"), None
        for _ in range(runs):
            counters: dict = {}
            started = time.perf_counter()
            feasible, trials = func(counters)
            best_s = min(best_s, time.perf_counter() - started)
            last = (feasible, trials, counters)
        return best_s, last

    runs = 1 if smoke else 3
    scalar_s, (scalar_feasible, scalar_trials, scalar_counters) = (
        best_of(runs, lambda c: evaluate_range(
            problem, 0, stop, counters=c
        ))
    )
    pack_started = time.perf_counter()
    packed = problem.packed()
    pack_s = time.perf_counter() - pack_started
    vector_s, (vector_feasible, vector_trials, vector_counters) = (
        best_of(runs, lambda c: evaluate_range_batch(
            problem, 0, stop, counters=c
        ))
    )

    identity_ok = (
        scalar_trials == vector_trials
        and len(scalar_feasible) == len(vector_feasible)
        and all(
            a.selection == b.selection
            for a, b in zip(scalar_feasible, vector_feasible)
        )
        and all(
            scalar_counters[key] == vector_counters[key]
            for key in ("combinations", "pruned_level2", "feasible")
        )
    )
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")

    # Kill breakdown straight from the screens, classified in scalar
    # precedence order (prune before integration before verdict).
    import numpy as np

    flats = np.arange(stop, dtype=np.int64)
    prune_kill, unintegrable, verdict, ii_main, latency_max = (
        screen_block(problem, packed, flats)
    )
    killed_prune = int(prune_kill.sum())
    killed_structural = int((unintegrable & ~prune_kill).sum())
    killed_verdict = int(
        (verdict & ~prune_kill & ~unintegrable).sum()
    )
    survivor_mask = ~(prune_kill | unintegrable | verdict)
    survivors = int(survivor_mask.sum())
    # The most promising combination on the shard — among survivors if
    # any screen let something through, else across the whole shard —
    # by (initiation interval, latency), the paper's goal order.
    hint_pool = flats[survivor_mask] if survivors else flats
    hint_ii = ii_main[survivor_mask] if survivors else ii_main
    hint_latency = (
        latency_max[survivor_mask] if survivors else latency_max
    )
    hint = lexicographic_argmin(hint_ii, hint_latency)

    return {
        "bench": "vectorized_kernel",
        "spec": "moving_average.chop",
        "partitions": 3,
        "criteria_ns": KERNEL_STRESS_NS,
        "combinations": total,
        "shard": stop,
        "smoke": smoke,
        "identity_ok": identity_ok,
        "speedup": round(speedup, 3),
        "speedup_ok": bool(
            identity_ok and speedup >= KERNEL_MIN_SPEEDUP
        ),
        "min_speedup": KERNEL_MIN_SPEEDUP,
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vector_s, 6),
        "pack_ms": round(pack_s * 1e3, 3),
        "pack_bytes": packed.nbytes(),
        "killed": {
            "pruned_level2": killed_prune,
            "structural": killed_structural,
            "verdict": killed_verdict,
        },
        "survivors": survivors,
        "feasible": len(scalar_feasible),
        "best_hint": {
            "flat": int(hint_pool[hint]),
            "ii_main": int(hint_ii[hint]),
            "latency_max": int(hint_latency[hint]),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="pruned workload, 2 workers, no speedup assertion "
        "(the CI mode)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to measure (default: 2 4 8, or 2 with "
        "--smoke)",
    )
    parser.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
    )
    args = parser.parse_args(argv)

    from repro.engine import EvaluationEngine

    widths = args.workers or ([2] if args.smoke else [2, 4, 8])
    # --smoke keeps the level-1 pruned space (fast, still parallel);
    # the full bench searches the raw prediction lists, the workload
    # whose 61-second flavour the paper measured in section 3.1.
    prune = bool(args.smoke)

    session = build_session()
    # Predict once up front so every timing below measures the
    # combination walk alone, never BAD prediction.
    session.predict_all()

    serial_result, serial_s = timed_check(session, prune)
    reference = comparable(serial_result)
    rows = [("serial", 1, serial_s, 1.0, "-")]
    failures = []
    for workers in widths:
        engine = EvaluationEngine(
            workers=workers,
            start_method=args.start_method,
            min_combinations=1,
        )
        result, elapsed = timed_check(session, prune, engine=engine)
        if comparable(result) != reference:
            failures.append(
                f"{workers}-worker result differs from serial"
            )
        stats = engine.stats()
        mode = (
            "parallel" if stats["searches_parallel"] else "serial"
        )
        speedup = serial_s / elapsed if elapsed > 0 else float("inf")
        rows.append((mode, workers, elapsed, speedup,
                     stats["last_utilization"]))
        # The vectorized kernel must be invisible at every width: same
        # shards, same merge, byte-identical document.
        vec_engine = EvaluationEngine(
            workers=workers,
            start_method=args.start_method,
            min_combinations=1,
            kernel="vectorized",
        )
        vec_result, _ = timed_check(session, prune, engine=vec_engine)
        if comparable(vec_result) != reference:
            failures.append(
                f"{workers}-worker vectorized result differs from "
                f"serial scalar"
            )

    lines = [
        f"Parallel enumeration speedup — moving_average.chop, "
        f"3 partitions, {serial_result.trials} combinations "
        f"({'pruned' if prune else 'raw'} predictions), "
        f"host cores: {os.cpu_count()}",
        "",
        f"{'mode':<10} {'workers':>7} {'wall s':>8} {'speedup':>8} "
        f"{'utilization':>12}",
    ]
    for mode, workers, elapsed, speedup, utilization in rows:
        lines.append(
            f"{mode:<10} {workers:>7} {elapsed:>8.3f} {speedup:>7.2f}x "
            f"{str(utilization):>12}"
        )
    lines.append("")
    lines.append(
        "equivalence: "
        + ("FAILED: " + "; ".join(failures) if failures else
           "all worker counts (scalar and vectorized kernels) "
           "byte-identical to serial")
    )

    vectorized = bench_vectorized(smoke=bool(args.smoke))
    lines.append("")
    lines.append(
        f"vectorized kernel — {vectorized['shard']} combinations, "
        f"criteria {vectorized['criteria_ns']:.0f} ns "
        f"(screen-dominated): scalar {vectorized['scalar_s']:.3f} s, "
        f"vectorized {vectorized['vectorized_s']:.6f} s, "
        f"{vectorized['speedup']:.0f}x "
        f"(gate >= {vectorized['min_speedup']:.0f}x), identity "
        + ("ok" if vectorized["identity_ok"] else "FAILED")
    )
    if not vectorized["identity_ok"]:
        failures.append("vectorized kernel result differs from scalar")
    if not vectorized["speedup_ok"]:
        failures.append(
            f"vectorized kernel speedup {vectorized['speedup']:.2f}x "
            f"below the {vectorized['min_speedup']:.0f}x gate"
        )
    table = "\n".join(lines)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "parallel_speedup.txt")
    with open(out_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\nwrote {out_path}")

    combinations = serial_result.trials
    json_doc = {
        "bench": "parallel_enumeration",
        "spec": "moving_average.chop",
        "partitions": 3,
        "combinations": combinations,
        "pruned": prune,
        "host_cores": os.cpu_count(),
        "equivalence_ok": not failures,
        "runs": [
            {
                "mode": mode,
                "workers": workers,
                "wall_s": round(elapsed, 6),
                "combos_per_s": (
                    round(combinations / elapsed, 1)
                    if elapsed > 0 else None
                ),
                "speedup": round(speedup, 3),
                "utilization": (
                    utilization if utilization != "-" else None
                ),
            }
            for mode, workers, elapsed, speedup, utilization in rows
        ],
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_parallel.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    vec_path = os.path.join(RESULTS_DIR, "BENCH_vectorized.json")
    with open(vec_path, "w") as handle:
        json.dump(vectorized, handle, indent=2)
        handle.write("\n")
    print(f"wrote {vec_path}")

    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    if not args.smoke and 4 in widths and (os.cpu_count() or 1) >= 4:
        at4 = next(r for r in rows if r[1] == 4 and r[0] != "serial")
        if at4[3] < 2.0:
            print(
                f"FAILED: expected >= 2x speedup at 4 workers on a "
                f"{os.cpu_count()}-core host, measured {at4[3]:.2f}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
