"""Cycle-accurate simulation of a bound, scheduled netlist.

Executes the structure synthesis produced — units firing per the
schedule, chained operations reading wires within the cycle, stored
values living in their bound registers — on concrete integer inputs,
and checks it against the specification's reference semantics
(:mod:`repro.dfg.evaluate`).  A wrong binding shows up as a register
clobbered before its last read, caught here dynamically rather than by
lifetime bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.bad.scheduling import Schedule
from repro.dfg.evaluate import apply_op
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import MEMORY_OP_TYPES
from repro.errors import ChopError, SpecificationError
from repro.synth.binding import BoundDesign


class SimulationError(ChopError):
    """The netlist computed something the specification does not."""


def simulate_netlist(
    graph: DataFlowGraph,
    schedule: Schedule,
    bound: BoundDesign,
    inputs: Mapping[str, int],
) -> Dict[str, int]:
    """Run the bound design; returns the primary-output values.

    Covers datapath (compute-only) partitions; memory operations need
    port/stream semantics the structural simulator does not model.
    """
    for op in graph:
        if op.op_type in MEMORY_OP_TYPES:
            raise SpecificationError(
                "the netlist simulator covers compute-only partitions; "
                f"{op.id!r} is a memory operation"
            )
    for value in graph.primary_inputs():
        if value.id not in inputs:
            raise SpecificationError(f"missing input value {value.id!r}")

    masked_inputs = {
        v.id: int(inputs[v.id]) & ((1 << v.width) - 1)
        for v in graph.primary_inputs()
    }
    # Register file: index -> (holding value id, contents).
    registers: Dict[int, Tuple[str, int]] = {}
    # Values produced this cycle, readable combinationally by chained
    # consumers.
    computed: Dict[str, int] = {}

    by_cycle: Dict[int, List[str]] = {}
    for op_id, begin in schedule.start.items():
        by_cycle.setdefault(begin, []).append(op_id)
    # Within a cycle, chained dataflow follows increasing offsets.
    for ops in by_cycle.values():
        ops.sort(
            key=lambda o: (schedule.offset_ns.get(o, 0.0), o)
        )
    # Pending register writes land when the producing operation ends.
    pending_writes: Dict[int, List[Tuple[int, str, int]]] = {}

    def fetch(op_id: str, value_id: str) -> int:
        value = graph.value(value_id)
        if value.producer is None:
            return masked_inputs[value_id]
        if schedule.chained(value.producer, op_id):
            if value_id not in computed:
                raise SimulationError(
                    f"{op_id!r} chains on {value_id!r} before its "
                    "producer settled — wrong in-cycle order"
                )
            return computed[value_id]
        register = bound.register_of.get(value_id)
        if register is None:
            # Not stored: legal only when read in the producing cycle.
            if value_id in computed:
                return computed[value_id]
            raise SimulationError(
                f"{op_id!r} reads {value_id!r}, which was neither "
                "stored in a register nor produced this cycle"
            )
        held = registers.get(register)
        if held is None:
            raise SimulationError(
                f"{op_id!r} reads register r{register} before any write"
            )
        holder, contents = held
        if holder != value_id:
            raise SimulationError(
                f"register r{register} was clobbered: {op_id!r} expects "
                f"{value_id!r} but it holds {holder!r}"
            )
        return contents

    for cycle in range(schedule.latency + 1):
        computed = {}
        for op_id in by_cycle.get(cycle, ()):
            op = graph.operation(op_id)
            operands = [fetch(op_id, vid) for vid in op.inputs]
            assert op.output is not None
            width = graph.value(op.output).width
            result = apply_op(op.op_type, operands, width)
            computed[op.output] = result
            finish = schedule.finish(op_id)
            register = bound.register_of.get(op.output)
            if register is not None:
                pending_writes.setdefault(finish, []).append(
                    (register, op.output, result)
                )
        # Chained same-cycle readers saw the wires; register writes land
        # at the producing operation's finishing edge.
        for register, value_id, result in pending_writes.pop(
            cycle + 1, ()
        ):
            registers[register] = (value_id, result)

    outputs: Dict[str, int] = {}
    for value in graph.primary_outputs():
        if value.producer is None:
            outputs[value.id] = masked_inputs[value.id]
            continue
        register = bound.register_of.get(value.id)
        if register is None:
            raise SimulationError(
                f"output {value.id!r} is not held in any register at "
                "the end of the schedule"
            )
        holder, contents = registers.get(register, (None, None))
        if holder != value.id:
            raise SimulationError(
                f"output {value.id!r} lost: register r{register} holds "
                f"{holder!r}"
            )
        assert contents is not None
        outputs[value.id] = contents
    return outputs
