"""The POST /projects/{id}/explore route: jobs, traces, gauges, 400s."""

from __future__ import annotations

from tests.test_service_http import (  # noqa: F401  (fixtures)
    poll_job,
    project_doc,
    request,
    server,
)


class TestExploreRoute:
    def test_explore_job_round_trip(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        status, job = request(
            port, "POST", f"/projects/{pid}/explore",
            {"k_min": 1, "k_max": 2, "include_projects": True},
        )
        assert status == 202
        assert job["kind"] == f"explore:{pid}"

        finished = poll_job(port, job["job_id"], timeout=120)
        assert finished["state"] == "done"
        result = finished["result"]
        assert result["project_id"] == pid
        assert result["evaluated"] == 2
        assert result["chip_counts"] == [1, 2]
        assert len(result["front"]) >= 1
        for point in result["front"]:
            assert set(point["objectives"]) == {
                "cost", "performance", "delay", "chips",
            }
            # include_projects ships a re-checkable document
            assert "operations" in point["project"]["graph"]

        # the sweep's span tree is served from the job trace artifact
        status, trace = request(
            port, "GET", f"/jobs/{job['job_id']}/trace"
        )
        assert status == 200
        names = {span["name"] for span in trace["spans"]}
        assert {
            "service.job", "explore.sweep", "explore.candidate",
            "explore.cost", "explore.front", "session.check",
        } <= names

        # gauges move under the "explore" block
        _, metrics = request(port, "GET", "/metrics")
        explore = metrics["explore"]
        assert explore["jobs"] == 1
        assert explore["candidates"] == 2
        assert explore["front_points"] == len(result["front"])

    def test_front_project_recheck_feasible(self, server, project_doc):
        """A front point's document round-trips through /check."""
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        _, job = request(
            port, "POST", f"/projects/{pid}/explore",
            {"k_min": 2, "k_max": 2, "include_projects": True},
        )
        finished = poll_job(port, job["job_id"], timeout=120)
        assert finished["state"] == "done"
        front = finished["result"]["front"]
        assert front, "expected a feasible 2-chip candidate"

        status, uploaded = request(
            port, "POST", "/projects", front[0]["project"]
        )
        assert status in (200, 201)
        status, check = request(
            port, "POST",
            f"/projects/{uploaded['project_id']}/check", {},
        )
        assert status == 200
        assert check["result"]["feasible"] is True

    def test_explore_rejects_bad_options_typed(
        self, server, project_doc
    ):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        cases = [
            ({"k_min": 3, "k_max": 2}, "k_min"),
            ({"k_min": 0}, "chip counts"),
            ({"chip_counts": [0]}, "chip counts"),
            # more chips than the graph has operations: the
            # PartitioningError auto seeding would hit becomes an
            # immediate 400, not a failed background job
            ({"k_max": 10_000}, "operations"),
            ({"objectives": ["cost", "speed"]}, "unknown objective"),
            ({"objectives": []}, "objectives"),
            ({"seeding": "magic"}, "unknown seeding"),
            ({"heuristic": "genetic"}, "unknown heuristic"),
            ({"package_scales": [0]}, "package scales"),
            ({"timeout_s": "soon"}, "timeout_s"),
        ]
        for options, fragment in cases:
            status, err = request(
                port, "POST", f"/projects/{pid}/explore", options
            )
            assert status == 400, (options, err)
            assert err["type"] == "invalid_option", (options, err)
            assert fragment in err["error"], (options, err)

    def test_auto_route_shares_the_contract(self, server, project_doc):
        """Satellite: the auto route's 400s carry the same typed kind."""
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]
        for options in (
            {"chips": 0},
            {"chips": 10_000},
            {"heuristic": "mystery"},
            {"timeout_s": "soon"},
        ):
            status, err = request(
                port, "POST", f"/projects/{pid}/auto", options
            )
            assert status == 400, (options, err)
            assert err["type"] == "invalid_option", (options, err)

    def test_explore_unknown_project_404(self, server):
        service, port = server
        status, err = request(
            port, "POST", "/projects/nope/explore", {"k_max": 2}
        )
        assert status == 404
