"""Random level-respecting partition generation.

Random baselines sample *downward-closed* cuts — partitions formed by
splitting the ASAP level sequence at random boundaries — so every sample
is a valid CHOP partitioning (acyclic between partitions) and the
comparison against the horizontal-cut scheme isolates the effect of
boundary placement rather than validity repair.
:func:`random_partition_search` drives a sampled batch through full
CHOP checks, sharing a :class:`repro.engine.EvaluationEngine` so each
sample's combination walk runs on the process pool.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.partition import Partition
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError, PredictionError
from repro.obs.tracing import span as trace_span

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.core.chop import ChopSession
    from repro.engine.workers import EvaluationEngine


def random_level_partitions(
    graph: DataFlowGraph,
    count: int,
    rng: random.Random,
) -> List[Set[str]]:
    """``count`` partitions from random level-boundary placement.

    ``rng`` must be supplied by the caller: experiments stay reproducible
    by seeding it.
    """
    if count < 1:
        raise PartitioningError(f"count must be >= 1, got {count}")
    levels: Dict[str, int] = {}
    for op_id in graph.topological_order():
        preds = graph.predecessors(op_id)
        levels[op_id] = 1 + max((levels[p] for p in preds), default=0)
    max_level = max(levels.values(), default=0)
    if max_level < count:
        raise PartitioningError(
            f"graph has {max_level} levels; cannot make {count} partitions"
        )
    boundaries = sorted(rng.sample(range(1, max_level), count - 1))
    edges = [0] + boundaries + [max_level]
    parts: List[Set[str]] = []
    for index in range(count):
        low, high = edges[index], edges[index + 1]
        parts.append(
            {op for op, level in levels.items() if low < level <= high}
        )
    if any(not part for part in parts):
        raise PartitioningError("random boundaries produced an empty part")
    return parts


def random_partition_search(
    session: "ChopSession",
    count: int,
    rng: random.Random,
    heuristic: str = "enumeration",
    engine: Optional["EvaluationEngine"] = None,
    cancel: Optional[Callable[[], bool]] = None,
):
    """Check ``count`` random level cuts, one partition per chip.

    Samples :func:`random_level_partitions` with as many parts as the
    session has chips (assigned in sorted-chip order), runs a full CHOP
    check per sample — on ``engine``'s process pool when supplied — and
    returns a
    :class:`repro.baselines.exhaustive.PartitionSearchOutcome` with the
    best feasible sample.  The session's original partitioning is
    restored before returning.
    """
    from repro.baselines.exhaustive import PartitionSearchOutcome
    import time

    chips = sorted(session.chips)
    if not chips:
        raise PartitioningError("session has no chips to assign to")
    outcome = PartitionSearchOutcome()
    original = session.partitioning()
    started = time.perf_counter()
    with trace_span(
        "baseline.random", heuristic=heuristic, samples=count,
    ) as sp:
        eval_before = session.eval_stats()
        try:
            for _ in range(count):
                sides = random_level_partitions(
                    session.graph, len(chips), rng
                )
                partitions = [
                    Partition.of(f"R{i + 1}", side)
                    for i, side in enumerate(sides)
                ]
                assignment = {
                    part.name: chip
                    for part, chip in zip(partitions, chips)
                }
                outcome.candidates += 1
                session.set_partitions(partitions, assignment)
                try:
                    result = session.check(
                        heuristic=heuristic, engine=engine, cancel=cancel
                    )
                except PredictionError:
                    outcome.infeasible += 1
                    continue
                if result.best() is None:
                    outcome.infeasible += 1
                    continue
                if outcome.better(result):
                    outcome.best_result = result
                    outcome.best_partitions = partitions
        finally:
            session.set_partitions(
                list(original.partitions.values()),
                {
                    name: original.chip_of(name)
                    for name in original.partitions
                },
            )
            outcome.cpu_seconds = time.perf_counter() - started
            sp.add("candidates", outcome.candidates)
            sp.add("infeasible", outcome.infeasible)
            eval_after = session.eval_stats()
            # Samples sharing partition contents hit the evaluation
            # context instead of re-running BAD.
            sp.add(
                "context_hits",
                eval_after["hits"] - eval_before["hits"],
            )
            sp.add(
                "context_misses",
                eval_after["misses"] - eval_before["misses"],
            )
    return outcome
