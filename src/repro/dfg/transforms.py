"""Graph validation and loop unrolling.

The paper restricts specifications to be free of inner loops: "Inner loops
with determinate iteration counts can be unrolled so that the resulting
data flow graph is acyclic" (section 2.3, citing Park and Paulin/Knight).
:func:`unroll_loop` implements that preprocessing step; behavioral front
ends express the loop body as a Python callable over a
:class:`~repro.dfg.builders.GraphBuilder`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph
from repro.errors import SpecificationError

#: Loop bodies map (builder, iteration index, carried values) -> carried
#: values for the next iteration.  Carried values are named value ids.
LoopBody = Callable[[GraphBuilder, int, Dict[str, str]], Dict[str, str]]


def unroll_loop(
    builder: GraphBuilder,
    iterations: int,
    initial: Dict[str, str],
    body: LoopBody,
) -> Dict[str, str]:
    """Unroll a determinate-count loop into the builder's graph.

    ``initial`` maps loop-carried variable names to the value ids holding
    their values before the first iteration.  ``body`` is invoked once per
    iteration and must return a mapping for exactly the same variable
    names.  Returns the mapping after the final iteration.

    >>> from repro.dfg import GraphBuilder, OpType
    >>> b = GraphBuilder("acc")
    >>> x = b.input("x")
    >>> acc = b.input("acc0")
    >>> def body(bld, i, carried):
    ...     return {"acc": bld.add(carried["acc"], x)}
    >>> final = unroll_loop(b, 3, {"acc": acc}, body)
    >>> b.output(final["acc"])
    >>> b.build().op_count()
    3
    """
    if iterations < 0:
        raise SpecificationError(
            f"iteration count must be non-negative, got {iterations}"
        )
    carried = dict(initial)
    names = set(carried)
    for index in range(iterations):
        result = body(builder, index, dict(carried))
        if set(result) != names:
            raise SpecificationError(
                f"loop body changed the carried-variable set at iteration "
                f"{index}: expected {sorted(names)}, got {sorted(result)}"
            )
        carried = dict(result)
    return carried


def validate_graph(graph: DataFlowGraph) -> List[str]:
    """Check the paper's structural restrictions; return problem strings.

    An empty list means the graph is a valid CHOP input: acyclic (checked
    by construction via the topological order), no value both unproduced
    and unconsumed, and at least one primary output so the system delay is
    well defined.
    """
    problems: List[str] = []
    try:
        graph.topological_order()
    except SpecificationError as exc:
        problems.append(str(exc))
        return problems

    for value in graph.values.values():
        consumed = bool(graph.consumers(value.id))
        if value.producer is None and not consumed:
            problems.append(
                f"value {value.id!r} is never produced nor consumed"
            )
        if value.producer is not None and not consumed and not value.is_output:
            problems.append(
                f"value {value.id!r} is computed but never used; mark it as "
                "an output or remove the operation"
            )
    if not graph.primary_outputs():
        problems.append(
            f"graph {graph.name!r} has no primary outputs; system delay is "
            "undefined"
        )
    if not graph.primary_inputs():
        problems.append(
            f"graph {graph.name!r} has no primary inputs; nothing to compute"
        )
    return problems
