"""Figure 7: the design space explored during experiment 1, unpruned.

The paper reran the Table 4 search "requesting to keep all
implementations (no pruning)": 13 411 designs considered (699 unique) in
61.40 s, against sub-second pruned runs — the figure is the area-delay
scatter of that cloud.

This bench replays the same protocol over the 1-, 2- and 3-partition
schemes, saves the scatter (ASCII + CSV) and checks the keep-all run is
orders of magnitude more expensive than the pruned one.
"""

from __future__ import annotations

import time

from repro.experiments import experiment1_session
from repro.reporting.figures import ascii_scatter, scatter_csv


def test_figure7_design_space(benchmark, save_artifact):
    outcome = {}

    def run_keep_all():
        total = unique = 0
        points = []
        for count in (1, 2, 3):
            session = experiment1_session(2, count)
            result = session.check(
                "enumeration", prune=False, keep_all=True
            )
            total += result.space.total
            unique += result.space.unique
            points.extend(result.space.scatter_series("system"))
        outcome["total"] = total
        outcome["unique"] = unique
        outcome["points"] = points
        return outcome

    benchmark.pedantic(run_keep_all, rounds=1, iterations=1)

    points = outcome["points"]
    header = (
        f"Figure 7: designs considered during experiment 1 "
        f"(no pruning)\n"
        f"total designs: {outcome['total']}, "
        f"unique designs: {outcome['unique']}\n"
        f"(paper: 13411 total, 699 unique)\n"
    )
    save_artifact(
        "figure7_design_space.txt", header + ascii_scatter(points)
    )
    save_artifact("figure7_design_space.csv", scatter_csv(points))

    assert outcome["total"] > 10_000  # a genuinely large cloud
    assert outcome["unique"] < outcome["total"]


def test_figure7_pruning_speedup(benchmark, save_artifact):
    """The 61.4 s vs sub-second contrast behind Figure 7."""

    def timed_runs():
        session = experiment1_session(2, 2)
        started = time.perf_counter()
        pruned = session.check("enumeration", prune=True)
        pruned_s = time.perf_counter() - started

        session = experiment1_session(2, 2)
        started = time.perf_counter()
        unpruned = session.check(
            "enumeration", prune=False, keep_all=True
        )
        unpruned_s = time.perf_counter() - started
        return pruned, pruned_s, unpruned, unpruned_s

    pruned, pruned_s, unpruned, unpruned_s = benchmark.pedantic(
        timed_runs, rounds=1, iterations=1
    )
    text = (
        f"pruned:   {pruned.trials:>7} trials in {pruned_s:.3f} s\n"
        f"keep-all: {unpruned.trials:>7} trials in {unpruned_s:.3f} s\n"
        f"speed-up: {unpruned_s / max(pruned_s, 1e-9):.1f}x "
        f"(paper: 61.40 s vs well under a second)"
    )
    save_artifact("figure7_pruning_speedup.txt", text)
    assert unpruned.trials > pruned.trials * 20
    assert unpruned_s > pruned_s
    # Pruning must not cost feasible solutions.
    assert pruned.best().ii_main == unpruned.best().ii_main
