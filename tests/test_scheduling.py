"""Tests for the scheduling engine."""

from __future__ import annotations

import pytest

from repro.bad.allocation import partition_resource_model
from repro.bad.scheduling import (
    alap_schedule,
    asap_schedule,
    critical_path_cycles,
    list_schedule,
)
from repro.errors import PredictionError


def _unit_durations(graph):
    return {op_id: 1 for op_id in graph.operations}


class TestAsapAlap:
    def test_asap_chain(self, chain_graph):
        start = asap_schedule(chain_graph, _unit_durations(chain_graph))
        assert sorted(start.values()) == [0, 1, 2, 3]

    def test_critical_path(self, chain_graph, ar_graph):
        assert critical_path_cycles(
            chain_graph, _unit_durations(chain_graph)
        ) == 4
        assert critical_path_cycles(
            ar_graph, _unit_durations(ar_graph)
        ) == 10

    def test_alap_meets_deadline(self, ar_graph):
        duration = _unit_durations(ar_graph)
        cp = critical_path_cycles(ar_graph, duration)
        alap = alap_schedule(ar_graph, duration, cp + 5)
        for op_id, begin in alap.items():
            assert begin + duration[op_id] <= cp + 5

    def test_alap_rejects_tight_deadline(self, chain_graph):
        with pytest.raises(PredictionError):
            alap_schedule(chain_graph, _unit_durations(chain_graph), 3)

    def test_alap_at_critical_path_pins_critical_ops(self, chain_graph):
        duration = _unit_durations(chain_graph)
        asap = asap_schedule(chain_graph, duration)
        alap = alap_schedule(chain_graph, duration, 4)
        assert asap == alap  # a pure chain has no slack

    def test_weighted_durations(self, tiny_graph):
        # mul takes 10 cycles, add 1 -> critical path is 11.
        duration = {}
        for op in tiny_graph:
            duration[op.id] = 10 if op.op_type.value == "mul" else 1
        assert critical_path_cycles(tiny_graph, duration) == 11

    def test_missing_duration_raises(self, tiny_graph):
        with pytest.raises(PredictionError):
            asap_schedule(tiny_graph, {})

    def test_non_positive_duration_raises(self, tiny_graph):
        bad = {op.id: 0 for op in tiny_graph}
        with pytest.raises(PredictionError):
            asap_schedule(tiny_graph, bad)


class TestListSchedule:
    def test_unconstrained_matches_critical_path(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, counts = partition_resource_model(ar_graph)
        schedule = list_schedule(ar_graph, duration, op_class, counts)
        assert schedule.latency == critical_path_cycles(ar_graph, duration)

    def test_serial_resources_serialize(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, _ = partition_resource_model(ar_graph)
        schedule = list_schedule(
            ar_graph, duration, op_class, {"add": 1, "mul": 1}
        )
        # 16 muls on one unit need at least 16 cycles.
        assert schedule.latency >= 16
        schedule.verify(ar_graph)

    def test_resource_capacity_respected(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, _ = partition_resource_model(ar_graph)
        schedule = list_schedule(
            ar_graph, duration, op_class, {"add": 2, "mul": 3}
        )
        for cls, usage in schedule.usage_profile().items():
            assert max(usage) <= schedule.capacities[cls]

    def test_zero_capacity_rejected(self, tiny_graph):
        op_class, _ = partition_resource_model(tiny_graph)
        with pytest.raises(PredictionError):
            list_schedule(
                tiny_graph, _unit_durations(tiny_graph), op_class,
                {"add": 1, "mul": 0},
            )

    def test_multi_cycle_operations(self, tiny_graph):
        duration = {}
        for op in tiny_graph:
            duration[op.id] = 10 if op.op_type.value == "mul" else 1
        op_class, counts = partition_resource_model(tiny_graph)
        schedule = list_schedule(tiny_graph, duration, op_class, counts)
        assert schedule.latency == 11
        schedule.verify(tiny_graph)


class TestChaining:
    def test_whole_chain_fits_one_cycle(self, chain_graph):
        duration = _unit_durations(chain_graph)
        op_class, counts = partition_resource_model(chain_graph)
        delays = {op.id: 34.0 for op in chain_graph}
        schedule = list_schedule(
            chain_graph, duration, op_class, counts,
            delay_ns=delays, cycle_ns=3000.0,
        )
        assert schedule.latency == 1
        schedule.verify(chain_graph)

    def test_chain_splits_when_delays_overflow(self, chain_graph):
        duration = _unit_durations(chain_graph)
        op_class, counts = partition_resource_model(chain_graph)
        delays = {op.id: 1600.0 for op in chain_graph}
        schedule = list_schedule(
            chain_graph, duration, op_class, counts,
            delay_ns=delays, cycle_ns=3000.0,
        )
        # Only one 1600 ns op fits per 3000 ns cycle.
        assert schedule.latency == 4

    def test_two_per_cycle(self, chain_graph):
        duration = _unit_durations(chain_graph)
        op_class, counts = partition_resource_model(chain_graph)
        delays = {op.id: 1400.0 for op in chain_graph}
        schedule = list_schedule(
            chain_graph, duration, op_class, counts,
            delay_ns=delays, cycle_ns=3000.0,
        )
        assert schedule.latency == 2

    def test_chained_ops_still_occupy_units(self, chain_graph):
        duration = _unit_durations(chain_graph)
        op_class, _ = partition_resource_model(chain_graph)
        delays = {op.id: 34.0 for op in chain_graph}
        # With a single adder the chain cannot share a cycle.
        schedule = list_schedule(
            chain_graph, duration, op_class, {"add": 1},
            delay_ns=delays, cycle_ns=3000.0,
        )
        assert schedule.latency == 4

    def test_delay_exceeding_cycle_rejected(self, chain_graph):
        duration = _unit_durations(chain_graph)
        op_class, counts = partition_resource_model(chain_graph)
        delays = {op.id: 4000.0 for op in chain_graph}
        with pytest.raises(PredictionError):
            list_schedule(
                chain_graph, duration, op_class, counts,
                delay_ns=delays, cycle_ns=3000.0,
            )

    def test_chaining_requires_single_cycle_durations(self, tiny_graph):
        duration = {op.id: 2 for op in tiny_graph}
        op_class, counts = partition_resource_model(tiny_graph)
        delays = {op.id: 10.0 for op in tiny_graph}
        with pytest.raises(PredictionError):
            list_schedule(
                tiny_graph, duration, op_class, counts,
                delay_ns=delays, cycle_ns=3000.0,
            )


class TestPipelineAccounting:
    def test_modulo_usage_accumulates(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, counts = partition_resource_model(ar_graph)
        schedule = list_schedule(ar_graph, duration, op_class, counts)
        usage = schedule.modulo_usage(2)
        assert sum(usage["mul"]) == 16
        assert sum(usage["add"]) == 12

    def test_pipeline_capacity_extremes(self, ar_graph):
        # Modulo resource requirements are famously non-monotone in the
        # initiation interval, but the extremes are fixed: at II 1 every
        # operation overlaps (needs = total count), and at II = latency
        # the requirement equals the plain schedule's peak usage.
        duration = _unit_durations(ar_graph)
        op_class, counts = partition_resource_model(ar_graph)
        schedule = list_schedule(ar_graph, duration, op_class, counts)
        assert schedule.pipeline_capacities(1) == counts
        at_latency = schedule.pipeline_capacities(schedule.latency)
        profile = schedule.usage_profile()
        for cls, need in at_latency.items():
            assert need == max(profile[cls])

    def test_capacity_requirement_bounded(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, counts = partition_resource_model(ar_graph)
        schedule = list_schedule(ar_graph, duration, op_class, counts)
        for ii in range(1, schedule.latency + 1):
            needs = schedule.pipeline_capacities(ii)
            for cls, need in needs.items():
                assert need <= counts[cls]
                # Work conservation: need * ii covers the class's cycles.
                assert need * ii >= counts[cls]

    def test_ii_equal_latency_always_feasible(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, _ = partition_resource_model(ar_graph)
        schedule = list_schedule(
            ar_graph, duration, op_class, {"add": 2, "mul": 2}
        )
        assert schedule.pipeline_feasible(schedule.latency)

    def test_bad_ii_rejected(self, ar_graph):
        duration = _unit_durations(ar_graph)
        op_class, counts = partition_resource_model(ar_graph)
        schedule = list_schedule(ar_graph, duration, op_class, counts)
        with pytest.raises(PredictionError):
            schedule.modulo_usage(0)
