"""End-to-end byte-identity of warm re-checks through the context.

The tentpole property: after an arbitrary random sequence of
section-2.7 modifications, ``check()`` on the long-lived session (warm
caches, incremental task graph) returns a ``SearchResult`` whose
``to_dict()`` is byte-identical — modulo ``cpu_seconds`` — to a fresh
session evaluating the same partitioning from scratch.  Verified under
both heuristics, and under the process-pool engine (fork and spawn via
``$CHOP_START_METHOD``, exercised by the CI engine matrix).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EvaluationEngine
from repro.errors import PartitioningError
from repro.experiments import experiment1_session
from repro.service import ChopService

from tests.test_eval_taskgraph import apply_random_migration


def comparable(result):
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


def mutate_randomly(session, rng, steps):
    """A random designer-loop trajectory: migrations and chip moves."""
    chips = sorted(session.chips)
    for _ in range(steps):
        if rng.random() < 0.75:
            apply_random_migration(session, rng)
        else:
            name = rng.choice(sorted(session._partitions))
            try:
                session.move_partition(name, rng.choice(chips))
            except PartitioningError:
                continue


def fresh_clone(session):
    """A brand-new session holding the same partitioning."""
    clone = experiment1_session(partition_count=len(session._partitions))
    clone.set_partitions(
        list(session._partitions.values()),
        dict(session._partition_chip),
    )
    return clone


class TestWarmCheckIdentity:
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.sampled_from(["iterative", "enumeration"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_trajectory_matches_fresh_session(self, seed, heuristic):
        rng = random.Random(seed)
        warm = experiment1_session(partition_count=3)
        warm.check(heuristic=heuristic)  # prime every cache
        mutate_randomly(warm, rng, steps=rng.randint(1, 5))
        fresh = fresh_clone(warm)
        assert comparable(warm.check(heuristic=heuristic)) == comparable(
            fresh.check(heuristic=heuristic)
        )

    def test_interleaved_heuristics_share_one_context(self):
        rng = random.Random(29)
        warm = experiment1_session(partition_count=3)
        for _ in range(3):
            mutate_randomly(warm, rng, steps=1)
            fresh = fresh_clone(warm)
            for heuristic in ("iterative", "enumeration"):
                assert comparable(
                    warm.check(heuristic=heuristic)
                ) == comparable(fresh.check(heuristic=heuristic))

    def test_warm_recheck_hits_context(self):
        warm = experiment1_session(partition_count=3)
        warm.check()
        assert apply_random_migration(warm, random.Random(13))
        before = warm.eval_stats()
        warm.check()
        after = warm.eval_stats()
        # Only the two touched partitions miss; the third hits, and the
        # task graph took the incremental path.
        assert after["hits"] > before["hits"]
        assert (
            after["taskgraph"]["incremental_updates"]
            == before["taskgraph"]["incremental_updates"] + 1
        )


class TestEngineIdentity:
    @pytest.mark.parametrize("seed", [1, 17])
    def test_pool_matches_fresh_serial(self, seed):
        """Warm incremental context + process pool == fresh serial."""
        rng = random.Random(seed)
        warm = experiment1_session(partition_count=3)
        engine = EvaluationEngine(workers=2, min_combinations=1)
        warm.check(heuristic="enumeration", engine=engine)
        mutate_randomly(warm, rng, steps=2)
        warm_result = warm.check(heuristic="enumeration", engine=engine)
        fresh = fresh_clone(warm)
        fresh_result = fresh.check(heuristic="enumeration")
        assert comparable(warm_result) == comparable(fresh_result)


class TestServiceGauge:
    def test_metrics_expose_eval_context(self):
        from repro.io.project import session_to_dict

        doc = session_to_dict(
            experiment1_session(package_number=2, partition_count=2)
        )
        service = ChopService(workers=1)
        try:
            import json

            status, payload, _route, _headers = service.handle(
                "POST", "/projects", json.dumps(doc).encode()
            )
            assert status in (200, 201)
            pid = payload["project_id"]
            # Two distinct requests (the verdict cache would swallow an
            # identical repeat): the second reaches the same warm
            # context and hits its prediction caches.
            for heuristic in ("iterative", "enumeration"):
                status, _, _, _ = service.handle(
                    "POST", f"/projects/{pid}/check",
                    json.dumps({"heuristic": heuristic}).encode(),
                )
                assert status == 200
            status, metrics, _, _ = service.handle(
                "GET", "/metrics", None
            )
            assert status == 200
            eval_gauges = metrics["eval"]
            assert eval_gauges["sessions"] == 1
            assert eval_gauges["hits"] > 0
            assert eval_gauges["taskgraph_full_builds"] >= 1
            assert eval_gauges["taskgraph_reuses"] >= 1
        finally:
            service.close()
