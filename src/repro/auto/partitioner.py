"""The auto-partitioner: coarsen, split, refine, replicate, verify.

:func:`auto_partition` is the ROADMAP's "multilevel auto-partitioner":
it takes a raw specification and a chip count and produces a CHOP
session whose partitioning has been (a) optimised for cut bits by the
multilevel machinery of :mod:`repro.auto.coarsen` /
:mod:`repro.auto.refine` and (b) accepted — or explicitly reported
infeasible — by CHOP's own feasibility analysis, the oracle the paper
insists cut-bit heuristics lack.

The pipeline:

1. ``auto.coarsen`` — contract the graph to a few clusters per chip;
2. ``auto.initial`` — split the coarsest level into topological
   intervals (a chain partitioning: provably acyclic, see
   :mod:`repro.auto.initial`);
3. ``auto.refine`` — FM passes at every level while projecting back to
   the operations;
4. ``auto.replicate`` (optional) — duplicate profitable cut operations
   into their consuming partitions (:mod:`repro.auto.replicate`);
5. ``auto.feasibility`` — load the partitioning into a
   :class:`~repro.core.chop.ChopSession` and run :meth:`check`.  When
   some partition predicts infeasibly large, a bounded repair loop
   migrates boundary operations out of the worst partition through the
   transactional section 2.7 mutators — each move re-checks against the
   warm incremental caches, so CHOP feasibility (not cut bits) is the
   final acceptance criterion.

Every stage runs under a trace span (``auto.*``), so ``--trace`` on the
CLI and the service's job tracer show exactly where the time went.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.auto.coarsen import ClusterGraph, base_cluster_graph, coarsen
from repro.auto.initial import topo_interval_split, verify_chain
from repro.auto.refine import (
    RefineStats,
    _legal_targets,
    _move_gain,
    fm_refine,
    project,
)
from repro.auto.replicate import (
    ReplicationReport,
    replicate_cut_ops,
    transfer_bits,
)
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.package import ChipPackage
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partition import Partition
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError, PredictionError
from repro.library.presets import auto_library
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span

#: Main clock of the default auto session (the paper's 300 ns).
AUTO_CLOCK_NS = 300.0

#: Heuristic die area per operation (mil^2) used to size the default
#: package: the paper's MOSIS dies hold a few dozen operations in
#: ~1.1e5 mil^2, so ~4000 mil^2/op with 3x headroom keeps the default
#: session from rejecting every large partition on area alone.
_AREA_PER_OP_MIL2 = 12_000.0


@dataclass
class AutoPartitionConfig:
    """Knobs of :func:`auto_partition` (defaults fit 10^3-op graphs)."""

    #: Number of chips / partitions (k).
    chips: int = 4
    #: Per-part weight bound factor for refinement and coarsening.
    balance_tolerance: float = 0.3
    #: Coarsening stops at ``chips * clusters_per_part`` clusters.
    clusters_per_part: int = 8
    #: FM passes per hierarchy level.
    refine_passes: int = 8
    #: Maximum coarsening rounds.
    coarsen_rounds: int = 40
    #: Run the logic-replication pass.
    replicate: bool = False
    #: Bound on applied replications (0: unbounded).
    max_clones: int = 0
    #: Bound on section 2.7 repair migrations in the feasibility stage.
    feasibility_moves: int = 32
    #: Search heuristic handed to :meth:`ChopSession.check`.
    heuristic: str = "iterative"

    def validate(self) -> None:
        if self.chips < 1:
            raise PartitioningError(
                f"chips must be >= 1, got {self.chips}"
            )
        if self.balance_tolerance < 0:
            raise PartitioningError(
                "balance_tolerance must be non-negative"
            )


@dataclass
class AutoPartitionResult:
    """Everything :func:`auto_partition` decided and measured."""

    session: ChopSession
    #: The graph the session partitions (replicated when replication ran).
    graph: DataFlowGraph
    #: Operation id -> part index (0-based) on ``graph``.
    assignment: Dict[str, int]
    search: Optional[object]  # SearchResult; None when predictions empty
    replication: Optional[ReplicationReport]
    cut_bits: int
    transfer_bits: int
    levels: int
    refine: RefineStats = field(default_factory=RefineStats)
    repair_moves: int = 0
    infeasible_partitions: List[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.search is not None and bool(self.search.feasible)

    def partitions(self) -> List[Set[str]]:
        """Part index order, as op-id sets."""
        count = max(self.assignment.values(), default=-1) + 1
        parts: List[Set[str]] = [set() for _ in range(count)]
        for op_id, part in self.assignment.items():
            parts[part].add(op_id)
        return parts

    def to_dict(self) -> Dict[str, object]:
        best = self.search.best() if self.search else None
        return {
            "graph": self.graph.name,
            "operations": self.graph.op_count(),
            "chips": len(self.partitions()),
            "feasible": self.feasible,
            "cut_bits": self.cut_bits,
            "transfer_bits": self.transfer_bits,
            "levels": self.levels,
            "refine_passes": self.refine.passes,
            "moves_committed": self.refine.moves_committed,
            "repair_moves": self.repair_moves,
            "clones": (
                len(self.replication.clones) if self.replication else 0
            ),
            "replication_saved_bits": (
                self.replication.saved_bits if self.replication else 0
            ),
            "infeasible_partitions": list(self.infeasible_partitions),
            "best": best.row() if best else None,
            "part_sizes": [len(p) for p in self.partitions()],
        }


def default_auto_package(graph: DataFlowGraph, chips: int) -> ChipPackage:
    """A package generously sized for ``graph`` spread over ``chips``.

    The MOSIS presets of the paper's Table 2 top out at dies that hold a
    few dozen operations — fine for the 28-op AR filter, hopeless for
    generated 1000-op workloads.  This scales die area with operations
    per chip (plus slack for imbalance and replication) so the default
    session tests *partitioning* quality, not package shopping.
    """
    per_chip = max(1, math.ceil(graph.op_count() / max(1, chips)))
    side = max(400.0, math.sqrt(per_chip * _AREA_PER_OP_MIL2))
    pins = max(128, min(2048, 64 * math.ceil(per_chip / 8)))
    return ChipPackage(
        name=f"auto{int(side)}",
        width_mil=side,
        height_mil=side,
        pin_count=pins,
        pad_delay_ns=25.0,
        pad_area_mil2=297.60,
    )


def default_auto_criteria(graph: DataFlowGraph) -> FeasibilityCriteria:
    """Constraints loose enough that structure, not budget, decides.

    Scales the paper's experiment-1 budget (30 000 ns for 28 operations)
    linearly with operation count; the auto-partitioner's job is to find
    *a* feasible k-way structure, which the caller can then tighten.
    """
    scale = max(1.0, graph.op_count() / 28.0)
    budget = 30_000.0 * scale
    return FeasibilityCriteria(performance_ns=budget, delay_ns=budget)


def default_auto_session(
    graph: DataFlowGraph,
    chips: int,
    package: Optional[ChipPackage] = None,
    criteria: Optional[FeasibilityCriteria] = None,
) -> ChopSession:
    """A session with ``chips`` empty chips, ready for partitions."""
    session = ChopSession(
        graph=graph,
        library=auto_library(),
        clocks=ClockScheme(
            AUTO_CLOCK_NS, dp_multiplier=10, transfer_multiplier=1
        ),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=criteria or default_auto_criteria(graph),
    )
    pkg = package or default_auto_package(graph, chips)
    for index in range(chips):
        session.add_chip(f"chip{index + 1}", pkg)
    return session


SessionFactory = Callable[[DataFlowGraph, int], ChopSession]


def session_like_factory(base: ChopSession) -> SessionFactory:
    """A factory reproducing ``base``'s designer inputs for k chips.

    The returned factory builds sessions with the same library, clocks,
    style, criteria and memories as ``base`` but a fresh chip set:
    ``base``'s packages are reused round-robin (falling back to
    :func:`default_auto_package` when it has none) and every memory
    lands on chip 1.  This is how the CLI and the service auto-partition
    *an existing project* without losing its constraint context.
    """
    packages = [chip.package for chip in base.chips.values()]

    def factory(graph: DataFlowGraph, chips: int) -> ChopSession:
        session = ChopSession(
            graph=graph,
            library=base.library,
            clocks=base.clocks,
            style=base.style,
            criteria=base.criteria,
            memories=base.memories.values(),
        )
        for index in range(chips):
            package = (
                packages[index % len(packages)]
                if packages
                else default_auto_package(graph, chips)
            )
            session.add_chip(f"chip{index + 1}", package)
        for memory in base.memories:
            session.assign_memory(memory, "chip1")
        return session

    return factory
Progress = Callable[[int, int], None]

#: Progress stages reported to ``progress`` callbacks (service jobs).
_STAGES = ("coarsen", "initial", "refine", "replicate", "feasibility")


def _partition_objects(
    assignment: Dict[str, int], parts: int
) -> List[Partition]:
    members: List[List[str]] = [[] for _ in range(parts)]
    for op_id, part in assignment.items():
        members[part].append(op_id)
    return [
        Partition.of(f"P{index + 1}", ops)
        for index, ops in enumerate(members)
    ]


def _install(
    session: ChopSession, assignment: Dict[str, int], parts: int
) -> None:
    partitions = _partition_objects(assignment, parts)
    session.set_partitions(
        partitions,
        {f"P{i + 1}": f"chip{i + 1}" for i in range(parts)},
    )


def _repair_loop(
    session: ChopSession,
    graph: DataFlowGraph,
    assignment: Dict[str, int],
    config: AutoPartitionConfig,
    result: AutoPartitionResult,
    engine=None,
) -> None:
    """Bounded feasibility repair through section 2.7 migrations.

    While some partition survives no level-1 pruning (usually: too many
    operations for its die), migrate its best chain-legal boundary
    operation to the lighter adjacent partition and re-check.  Each
    iteration only dirties the two touched partitions, so the warm
    evaluation context re-predicts just those — the PR 5 incremental
    machinery this loop exists to exercise.
    """
    base = base_cluster_graph(graph)
    cluster_part = {
        cid: assignment[min(ops)] for cid, ops in base.members.items()
    }
    parts = config.chips

    for _move in range(config.feasibility_moves):
        empty: List[str] = []
        try:
            predictions = session.pruned_predictions()
            empty = [
                name for name, preds in predictions.items() if not preds
            ]
        except PredictionError:  # pragma: no cover — defensive
            pass
        if not empty:
            try:
                result.search = session.check(
                    heuristic=config.heuristic, engine=engine
                )
            except PredictionError:
                result.search = None
            if result.search is not None and result.search.feasible:
                result.infeasible_partitions = []
                return
            # Structurally predictable but system-infeasible: further
            # blind moves rarely help; report honestly instead.
            result.infeasible_partitions = []
            return
        result.infeasible_partitions = sorted(empty)
        # Shrink the hardest offender: most operations first.
        donor_name = max(
            empty, key=lambda name: (len(session._partitions[name]), name)
        )
        donor = int(donor_name[1:]) - 1
        weights = [0] * parts
        for part in cluster_part.values():
            weights[part] += 1
        if weights[donor] <= 1:
            return  # cannot empty a partition
        best = None  # (gain, -target_weight, cluster, target)
        for cid, part in cluster_part.items():
            if part != donor:
                continue
            for target in _legal_targets(base, cluster_part, cid, parts):
                gain = _move_gain(base, cluster_part, cid, target)
                key = (gain, -weights[target], -cid)
                if best is None or key > best[0]:
                    best = (key, cid, target)
        if best is None:
            return  # partition is a clique against its neighbours
        _key, cid, target = best
        op_id = min(base.members[cid])
        try:
            session.migrate_operations(
                donor_name, f"P{target + 1}", [op_id]
            )
        except PartitioningError:  # pragma: no cover — legality bug guard
            return
        cluster_part[cid] = target
        assignment[op_id] = target
        result.repair_moves += 1
    # Budget exhausted: leave the last honest verdict in place.
    try:
        result.search = session.check(
            heuristic=config.heuristic, engine=engine
        )
        result.infeasible_partitions = []
    except PredictionError:
        result.search = None


def auto_partition(
    graph: DataFlowGraph,
    config: Optional[AutoPartitionConfig] = None,
    session_factory: Optional[SessionFactory] = None,
    engine=None,
    progress: Optional[Progress] = None,
) -> AutoPartitionResult:
    """Automatically partition ``graph`` onto ``config.chips`` chips.

    ``session_factory(graph, chips)`` supplies the CHOP session used as
    the feasibility oracle (default: :func:`default_auto_session` with
    a generated package).  ``engine`` is forwarded to
    :meth:`ChopSession.check`.  ``progress`` receives
    ``(stage_index, stage_count)`` after each pipeline stage.

    Fully deterministic: same graph and config, same result — there is
    no randomness anywhere in the pipeline (the *generators* take
    seeds; the partitioner does not need one).
    """
    config = config or AutoPartitionConfig()
    config.validate()
    k = config.chips
    if graph.op_count() < k:
        raise PartitioningError(
            f"cannot spread {graph.op_count()} operations over {k} chips"
        )
    factory = session_factory or default_auto_session
    started = time.perf_counter()

    def tick(stage: str) -> None:
        if progress is not None:
            progress(_STAGES.index(stage) + 1, len(_STAGES))

    with trace_span(
        "auto.partition", ops=graph.op_count(), chips=k
    ) as root:
        max_cluster = int(
            (1.0 + config.balance_tolerance) * graph.op_count() / k
        )
        with trace_span("auto.coarsen") as sp:
            hierarchy = coarsen(
                graph,
                target_clusters=max(k, k * config.clusters_per_part),
                max_rounds=config.coarsen_rounds,
                max_cluster_weight=max_cluster,
            )
            sp.add("levels", len(hierarchy))
            sp.put("coarsest_clusters", len(hierarchy[-1].graph))
        tick("coarsen")

        with trace_span("auto.initial"):
            part_of = topo_interval_split(hierarchy[-1].graph, k)
        tick("initial")

        stats = RefineStats()
        with trace_span("auto.refine") as sp:
            for level in reversed(range(len(hierarchy))):
                cg = hierarchy[level].graph
                if level < len(hierarchy) - 1:
                    part_of = project(
                        part_of, hierarchy[level + 1].projection
                    )
                fm_refine(
                    cg,
                    part_of,
                    k,
                    balance_tolerance=config.balance_tolerance,
                    max_passes=config.refine_passes,
                    stats=stats,
                )
                verify_chain(cg, part_of)
            sp.add("passes", stats.passes)
            sp.add("moves", stats.moves_committed)
            sp.put("cut_bits", stats.cut_after)
        tick("refine")

        base = hierarchy[0].graph
        assignment = {
            min(ops): part_of[cid] for cid, ops in base.members.items()
        }
        # Every part must be non-empty (refinement preserves this, but
        # the session would reject it obscurely — check here).
        occupied = set(assignment.values())
        if occupied != set(range(k)):
            raise PartitioningError(
                f"auto-partitioning left parts empty: "
                f"{sorted(set(range(k)) - occupied)}"
            )

        replication: Optional[ReplicationReport] = None
        work_graph = graph
        if config.replicate:
            with trace_span("auto.replicate") as sp:
                work_graph, assignment, replication = replicate_cut_ops(
                    graph, assignment, max_clones=config.max_clones
                )
                sp.add("clones", len(replication.clones))
                sp.add("saved_bits", replication.saved_bits)
        tick("replicate")

        session = factory(work_graph, k)
        result = AutoPartitionResult(
            session=session,
            graph=work_graph,
            assignment=assignment,
            search=None,
            replication=replication,
            cut_bits=stats.cut_after,
            transfer_bits=transfer_bits(work_graph, assignment),
            levels=len(hierarchy),
            refine=stats,
        )
        with trace_span("auto.feasibility") as sp:
            _install(session, assignment, k)
            _repair_loop(
                session, work_graph, assignment, config, result,
                engine=engine,
            )
            result.transfer_bits = transfer_bits(work_graph, assignment)
            sp.add("repair_moves", result.repair_moves)
            sp.put("feasible", result.feasible)
        tick("feasibility")

        root.put("feasible", result.feasible)
        root.put("cut_bits", result.cut_bits)
        get_registry().histogram(
            "auto_partition_seconds",
            "End-to-end auto-partitioning time by outcome",
            labelnames=("feasible",),
        ).labels(
            feasible="true" if result.feasible else "false"
        ).observe(time.perf_counter() - started)
        return result
