"""Fuzzing the behavioral language against Python's own arithmetic.

Random expression trees are printed as specification text, parsed, and
evaluated; the result must match direct evaluation of the same tree with
16-bit two's-complement masking.  This exercises tokenizer, precedence,
parenthesisation and the graph/interpreter stack in one loop.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.dfg.evaluate import evaluate_outputs
from repro.dfg.parser import parse_spec

_MASK = (1 << 16) - 1

#: (token, python evaluator) for each supported binary operator.
_OPERATORS = [
    ("+", lambda a, b: (a + b) & _MASK),
    ("-", lambda a, b: (a - b) & _MASK),
    ("*", lambda a, b: (a * b) & _MASK),
    ("&", lambda a, b: a & b),
    ("|", lambda a, b: a | b),
]


@st.composite
def expression_trees(draw, depth=0):
    """A random expression tree over inputs i0..i3."""
    if depth >= 4 or draw(st.booleans()):
        index = draw(st.integers(min_value=0, max_value=3))
        return ("leaf", f"i{index}")
    token, _fn = _OPERATORS[
        draw(st.integers(min_value=0, max_value=len(_OPERATORS) - 1))
    ]
    left = draw(expression_trees(depth=depth + 1))
    right = draw(expression_trees(depth=depth + 1))
    return ("node", token, left, right)


def _render(tree) -> str:
    if tree[0] == "leaf":
        return tree[1]
    _kind, token, left, right = tree
    return f"({_render(left)} {token} {_render(right)})"


def _evaluate(tree, env) -> int:
    if tree[0] == "leaf":
        return env[tree[1]]
    _kind, token, left, right = tree
    fn = dict(_OPERATORS)[token]
    return fn(_evaluate(left, env), _evaluate(right, env))


@given(expression_trees(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=120, deadline=None)
def test_parsed_expression_matches_python(tree, seed):
    if tree[0] == "leaf":
        return  # a bare name is not an operation; nothing to check
    rng = random.Random(seed)
    env = {f"i{k}": rng.randrange(0, 1 << 16) for k in range(4)}
    spec = (
        "input i0, i1, i2, i3\n"
        f"y = {_render(tree)}\n"
        "output y\n"
    )
    graph = parse_spec(spec)
    outputs = evaluate_outputs(graph, env)
    assert outputs["y"] == _evaluate(tree, env)


@given(expression_trees())
@settings(max_examples=60, deadline=None)
def test_parsed_graphs_are_valid(tree):
    if tree[0] == "leaf":
        return
    spec = (
        "input i0, i1, i2, i3\n"
        f"y = {_render(tree)}\n"
        "output y\n"
    )
    graph = parse_spec(spec)
    from repro.dfg.transforms import validate_graph

    problems = [
        p
        for p in validate_graph(graph)
        if "never produced nor consumed" not in p  # unused inputs ok
    ]
    assert problems == []
