"""Design-space exploration: the keep-everything mode behind Figure 7.

"When the constraints are removed, then the entire explorable design
space for the partitioned design can be predicted" (paper section 4).
This example runs the experiment-1 two-partition search twice — pruned
(the normal mode) and keep-all (no pruning) — prints the cost contrast
the paper measured (61.4 s unpruned vs sub-second pruned on 1990
hardware), and draws the area-delay cloud as an ASCII scatter.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro.experiments import experiment1_session
from repro.reporting import ascii_scatter


def main() -> None:
    print("Pruned search (normal mode):")
    session = experiment1_session(package_number=2, partition_count=2)
    started = time.perf_counter()
    pruned = session.check("enumeration", prune=True)
    pruned_seconds = time.perf_counter() - started
    print(
        f"  {pruned.trials} trials, {pruned.feasible_trials} feasible, "
        f"{pruned_seconds:.3f} s"
    )

    print()
    print("Keep-everything search (no pruning, records every design):")
    session = experiment1_session(package_number=2, partition_count=2)
    started = time.perf_counter()
    unpruned = session.check("enumeration", prune=False, keep_all=True)
    unpruned_seconds = time.perf_counter() - started
    assert unpruned.space is not None
    print(
        f"  {unpruned.trials} trials, {unpruned.space.total} designs "
        f"recorded ({unpruned.space.unique} unique), "
        f"{unpruned_seconds:.3f} s"
    )
    print(
        f"  pruning speed-up: "
        f"{unpruned_seconds / max(pruned_seconds, 1e-9):.1f}x "
        "(the paper saw 61.4 s collapse to well under a second)"
    )

    print()
    print("The explored design space (area vs system delay):")
    print(ascii_scatter(unpruned.space.scatter_series("system")))

    best = unpruned.best()
    if best is not None:
        print()
        print(
            f"Best design in the cloud: initiation interval "
            f"{best.ii_main}, delay {best.delay_main} main cycles, "
            f"clock {best.clock_cycle_ns:.0f} ns"
        )


if __name__ == "__main__":
    main()
