"""Cost-aware multi-objective design-space exploration.

CHOP's designer loop answers one question per check: *is this
partitioning feasible?*  This package asks the follow-up the modern
chiplet literature (ChipletPart and friends) made central: *of all the
feasible configurations, which are worth building?*  :func:`explore`
sweeps candidate configurations — chip count crossed with package
scalings, seeded by the paper's horizontal cut or by the multilevel
auto-partitioner — prices each feasible design with the
:mod:`repro.chips.cost` yield model, and keeps the Pareto front over
(cost, performance, delay, chip count) using the same dominance filter
the search layer prunes predictions with.

Every surviving front point carries its full project document, so the
sweep output feeds straight back into ``repro check`` — the explorer
proposes, the paper's feasibility engine still disposes.
"""

from repro.explore.sweep import (
    HEURISTICS,
    OBJECTIVES,
    SEEDINGS,
    ExploreConfig,
    ExplorePoint,
    ExploreResult,
    default_session_factory,
    explore,
    project_session_factory,
    scale_package,
)

__all__ = [
    "ExploreConfig",
    "ExplorePoint",
    "ExploreResult",
    "HEURISTICS",
    "OBJECTIVES",
    "SEEDINGS",
    "default_session_factory",
    "explore",
    "project_session_factory",
    "scale_package",
]
