"""Statistical environment for prediction triplets.

The paper stores every prediction "in the form of a triplet: a lower bound,
a most likely and an upper bound value ... in a statistical environment, and
the feasibility analysis is done with ... probabilistic methods" (section
2.6).  This package provides that environment:

* :class:`~repro.stats.triplet.Triplet` — an (lb, ml, ub) value with
  arithmetic that propagates bounds,
* :func:`~repro.stats.distributions.prob_le` — the probability that a
  triplet-valued quantity satisfies an upper-bound constraint, using a
  triangular distribution (or a moment-matched normal for sums),
* :class:`~repro.stats.distributions.ConstraintCheck` — a named constraint
  evaluation combining the probability with the required confidence.
"""

from repro.stats.triplet import Triplet
from repro.stats.distributions import (
    ConstraintCheck,
    prob_le,
    prob_ge,
    triangular_cdf,
    triangular_mean,
    triangular_variance,
)

__all__ = [
    "Triplet",
    "ConstraintCheck",
    "prob_le",
    "prob_ge",
    "triangular_cdf",
    "triangular_mean",
    "triangular_variance",
]
