"""repro.eval — the incremental evaluation core under the designer loop.

One `EvaluationContext` per design owns the predict → prune →
task-graph pipeline that `ChopSession`, both search heuristics, the
process-pool engine and the baselines previously each re-ran from
scratch.  Caches are keyed on partition *content* and bounded by one
LRU capacity; the task graph is maintained incrementally from a dirty
set fed by the section-2.7 mutators.  Results are byte-identical to the
from-scratch path — see ``docs/evaluation.md`` for the lifecycle,
invalidation rules and identity guarantee.
"""

from repro.eval.context import DEFAULT_CACHE_CAPACITY, EvaluationContext
from repro.eval.taskgraph import (
    TaskGraphIngredients,
    assemble_task_graph,
    full_ingredients,
    update_ingredients,
)

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "EvaluationContext",
    "TaskGraphIngredients",
    "assemble_task_graph",
    "full_ingredients",
    "update_ingredients",
]
