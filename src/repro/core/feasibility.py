"""Probabilistic feasibility analysis (section 2.6 of the paper).

"All prediction results ... are stored in a statistical environment, and
the feasibility analysis is done with ... probabilistic methods.  The
feasibility analysis is performed for each chip area constraint by
considering the area taken by PUs, data transfer modules residing on each
chip, and multiplexing to share the data pins ... The clock cycle time is
adjusted and feasibility of the performance and the system delay are
checked."

The experiments' criteria: "a probability of 100% of satisfying the
performance (initiation interval) and chip area constraints, and a
probability of 80% of satisfying the system delay ... constraint"
(section 3) — the defaults of :class:`FeasibilityCriteria`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.integration import SystemPrediction
from repro.errors import PredictionError
from repro.stats import ConstraintCheck


@dataclass(frozen=True, slots=True)
class FeasibilityCriteria:
    """The designer's hard constraints and required confidences."""

    performance_ns: float
    delay_ns: float
    performance_confidence: float = 1.0
    area_confidence: float = 1.0
    delay_confidence: float = 0.8
    #: Optional power constraints — the paper's section-5 extension.
    #: ``None`` disables the corresponding check.
    system_power_mw: Optional[float] = None
    chip_power_mw: Optional[float] = None
    power_confidence: float = 0.9

    def __post_init__(self) -> None:
        if self.performance_ns <= 0 or self.delay_ns <= 0:
            raise PredictionError(
                "performance and delay constraints must be positive"
            )
        for name in (
            "performance_confidence", "area_confidence",
            "delay_confidence", "power_confidence",
        ):
            value = getattr(self, name)
            if not (0.0 < value <= 1.0):
                raise PredictionError(
                    f"{name} must be in (0, 1], got {value}"
                )
        for name in ("system_power_mw", "chip_power_mw"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise PredictionError(
                    f"{name} must be positive when set, got {value}"
                )


@dataclass(frozen=True, slots=True)
class FeasibilityReport:
    """Outcome of checking one system prediction against the criteria."""

    checks: List[ConstraintCheck]
    feasible: bool

    def violations(self) -> List[ConstraintCheck]:
        return [c for c in self.checks if not c.passed]

    def violated_chips(self) -> List[str]:
        """Chip names whose area constraint failed.

        This is the list the iterative heuristic's set Q is built from:
        "partitions residing on chips whose area constraint is violated"
        (Figure 5).
        """
        return [
            c.name.removeprefix("area:")
            for c in self.checks
            if c.name.startswith("area:") and not c.passed
        ]


def evaluate_system(
    system: SystemPrediction, criteria: FeasibilityCriteria
) -> FeasibilityReport:
    """Check a system prediction against the feasibility criteria."""
    checks: List[ConstraintCheck] = []
    for chip_name, usage in sorted(system.chip_usage.items()):
        checks.append(
            ConstraintCheck.upper_bound(
                name=f"area:{chip_name}",
                value=usage.total_area,
                limit=usage.usable_area_mil2,
                confidence=criteria.area_confidence,
            )
        )
    checks.append(
        ConstraintCheck.upper_bound(
            name="performance",
            value=system.performance_ns,
            limit=criteria.performance_ns,
            confidence=criteria.performance_confidence,
        )
    )
    checks.append(
        ConstraintCheck.upper_bound(
            name="delay",
            value=system.delay_ns,
            limit=criteria.delay_ns,
            confidence=criteria.delay_confidence,
        )
    )
    if criteria.chip_power_mw is not None:
        for chip_name, usage in sorted(system.chip_usage.items()):
            checks.append(
                ConstraintCheck.upper_bound(
                    name=f"power:{chip_name}",
                    value=usage.power_mw,
                    limit=criteria.chip_power_mw,
                    confidence=criteria.power_confidence,
                )
            )
    if criteria.system_power_mw is not None:
        checks.append(
            ConstraintCheck.upper_bound(
                name="power",
                value=system.power_mw,
                limit=criteria.system_power_mw,
                confidence=criteria.power_confidence,
            )
        )
    return FeasibilityReport(
        checks=checks, feasible=all(c.passed for c in checks)
    )


def prediction_possibly_feasible(
    prediction: DesignPrediction,
    criteria: FeasibilityCriteria,
    clocks: ClockScheme,
    max_usable_area_mil2: float,
) -> bool:
    """First-level pruning test for one per-partition prediction.

    "The first level pruning happens before integrated partitioning
    predictions are performed.  The predictions produced by BAD for each
    partition are examined and predictions which are infeasible ... are
    discarded" (section 2.1).  A prediction is discarded only when it can
    *never* satisfy the criteria, using optimistic integration overhead
    (none): its area alone overflows the largest chip at the required
    confidence, its interval alone overruns the performance constraint,
    or its latency alone overruns the delay constraint.
    """
    # Area at 100% confidence demands the upper bound fits; weaker
    # confidences compare the optimistic lower bound instead.
    if criteria.area_confidence >= 1.0 - 1e-12:
        if prediction.area_total.ub > max_usable_area_mil2:
            return False
    elif prediction.area_total.lb > max_usable_area_mil2:
        return False
    optimistic_cycle = clocks.main_cycle_ns
    if prediction.ii_main * optimistic_cycle > criteria.performance_ns:
        return False
    if prediction.latency_main * optimistic_cycle > criteria.delay_ns:
        return False
    for power_limit in (criteria.chip_power_mw, criteria.system_power_mw):
        if power_limit is not None and prediction.power_mw.lb > power_limit:
            return False
    return True
