"""Tests for the section-5 extensions: scan design and arrival times."""

from __future__ import annotations

import pytest

from repro.bad.predictor import BADPredictor, PredictorParameters
from repro.bad.scheduling import asap_schedule, critical_path_cycles
from repro.errors import PredictionError


class TestScanDesign:
    @pytest.fixture(scope="class")
    def plain_and_scan(self, library, exp1_clocks, exp1_style, ar_graph):
        plain = BADPredictor(
            library, exp1_clocks, exp1_style,
            params=PredictorParameters(scan_design=False),
        ).predict_partition(ar_graph)
        scan = BADPredictor(
            library, exp1_clocks, exp1_style,
            params=PredictorParameters(scan_design=True),
        ).predict_partition(ar_graph)
        return plain, scan

    def _pair(self, plain, scan):
        """Match predictions by design point across the two runs."""
        def key(p):
            return (
                p.module_set.label,
                tuple(sorted(p.operators.items())),
                p.ii_main,
                p.pipelined,
            )

        scan_by_key = {key(p): p for p in scan}
        return [
            (p, scan_by_key[key(p)]) for p in plain
            if key(p) in scan_by_key
        ]

    def test_scan_adds_muxes_per_register_bit(self, plain_and_scan):
        pairs = self._pair(*plain_and_scan)
        assert pairs
        for plain_pred, scan_pred in pairs:
            assert (
                scan_pred.mux_count
                >= plain_pred.mux_count + plain_pred.register_bits
            )

    def test_scan_adds_area(self, plain_and_scan):
        pairs = self._pair(*plain_and_scan)
        for plain_pred, scan_pred in pairs:
            assert scan_pred.area_total.ml > plain_pred.area_total.ml

    def test_scan_adds_clock_overhead(self, plain_and_scan):
        pairs = self._pair(*plain_and_scan)
        for plain_pred, scan_pred in pairs:
            assert (
                scan_pred.clock_overhead_ns
                > plain_pred.clock_overhead_ns
            )

    def test_scan_never_changes_timing(self, plain_and_scan):
        pairs = self._pair(*plain_and_scan)
        for plain_pred, scan_pred in pairs:
            assert scan_pred.ii_main == plain_pred.ii_main
            assert scan_pred.latency_main == plain_pred.latency_main


@pytest.fixture(scope="module")
def diffeq_predictor(big_library, exp2_clocks, exp2_style):
    """Diffeq needs SUB/COMPARE components, i.e. the extended library."""
    return BADPredictor(big_library, exp2_clocks, exp2_style)


class TestArrivalTimes:
    def test_asap_respects_ready_times(self, tiny_graph):
        duration = {op.id: 1 for op in tiny_graph}
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type.value == "mul"
        ]
        start = asap_schedule(tiny_graph, duration, {mul_id: 5})
        assert start[mul_id] == 5

    def test_critical_path_grows_with_arrivals(self, tiny_graph):
        duration = {op.id: 1 for op in tiny_graph}
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type.value == "mul"
        ]
        base = critical_path_cycles(tiny_graph, duration)
        delayed = critical_path_cycles(
            tiny_graph, duration, {mul_id: 10}
        )
        assert delayed > base

    def test_negative_ready_rejected(self, tiny_graph):
        duration = {op.id: 1 for op in tiny_graph}
        with pytest.raises(PredictionError):
            asap_schedule(tiny_graph, duration, {"mul1": -1})

    def test_predictor_arrivals_delay_latency(
        self, diffeq_predictor, diffeq_graph
    ):
        base = diffeq_predictor.predict_partition(diffeq_graph)
        late = diffeq_predictor.predict_partition(
            diffeq_graph, input_arrivals={"dx": 30}
        )
        assert min(p.latency_main for p in late) > min(
            p.latency_main for p in base
        )

    def test_predictor_zero_arrivals_noop(self, diffeq_predictor,
                                          diffeq_graph):
        base = diffeq_predictor.predict_partition(diffeq_graph)
        zeroed = diffeq_predictor.predict_partition(
            diffeq_graph, input_arrivals={"dx": 0, "x": 0}
        )
        assert [p.sort_key() for p in base] == [
            p.sort_key() for p in zeroed
        ]

    def test_unknown_input_rejected(self, diffeq_predictor, diffeq_graph):
        with pytest.raises(PredictionError, match="non-input"):
            diffeq_predictor.predict_partition(
                diffeq_graph, input_arrivals={"nope": 3}
            )

    def test_negative_arrival_rejected(self, diffeq_predictor,
                                       diffeq_graph):
        with pytest.raises(PredictionError, match="negative"):
            diffeq_predictor.predict_partition(
                diffeq_graph, input_arrivals={"dx": -2}
            )
