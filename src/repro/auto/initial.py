"""Initial k-way partitioning of the coarsest cluster graph.

The assignment produced here — and preserved by every later refinement
move — is a *chain partitioning*: parts are ordered ``0..k-1`` and every
edge ``u -> v`` satisfies ``part(u) <= part(v)``.  The quotient graph of
a chain partitioning is a subgraph of the path ``0 -> 1 -> ... -> k-1``,
hence acyclic, so every level of the hierarchy projects to a
:class:`repro.core.partitioning.Partitioning` CHOP accepts without
repair surgery (the section 2.3 requirement).

Chains are exactly what CHOP's own :func:`repro.core.schemes.horizontal_cut`
produces from ASAP levels; here the intervals are cut through a
topological order of *clusters* weighted by operation count, which both
respects balance and keeps heavy intra-cluster edges uncut for free.
"""

from __future__ import annotations

from typing import Dict, List

from repro.auto.coarsen import ClusterGraph
from repro.errors import PartitioningError


def topo_interval_split(cg: ClusterGraph, parts: int) -> Dict[int, int]:
    """Assign clusters to ``parts`` contiguous topological intervals.

    Walks the deterministic topological order accumulating operation
    weight and starts a new part whenever the running part has reached
    its proportional share of the remaining weight — the greedy
    balance rule, guaranteed to leave every part non-empty because a
    part is only closed while enough clusters remain for those after it.
    """
    if parts < 1:
        raise PartitioningError(f"parts must be >= 1, got {parts}")
    if parts > len(cg):
        raise PartitioningError(
            f"cannot split {len(cg)} clusters into {parts} parts"
        )
    order = cg.topological_order()
    total = cg.total_weight()
    part_of: Dict[int, int] = {}
    part = 0
    filled = 0
    taken = 0
    for position, cluster in enumerate(order):
        part_of[cluster] = part
        filled += cg.weight(cluster)
        taken += 1
        remaining_clusters = len(order) - position - 1
        remaining_parts = parts - part - 1
        target = (total * (part + 1)) / parts
        if part < parts - 1 and (
            filled >= target or remaining_clusters == remaining_parts
        ):
            part += 1
    return part_of


def part_weights(cg: ClusterGraph, part_of: Dict[int, int], parts: int) -> List[int]:
    """Operation count per part under an assignment."""
    weights = [0] * parts
    for cluster, part in part_of.items():
        weights[part] += cg.weight(cluster)
    return weights


def verify_chain(cg: ClusterGraph, part_of: Dict[int, int]) -> None:
    """Assert the chain invariant; raises on any violating edge.

    Cheap (O(E)) and run after every refinement pass in debug paths —
    a violation means a legality-check bug that would surface later as
    an opaque ``PartitioningError`` from CHOP's validator.
    """
    for u, targets in cg.succ.items():
        for v in targets:
            if part_of[u] > part_of[v]:
                raise PartitioningError(
                    f"chain invariant violated: edge {u}->{v} runs from "
                    f"part {part_of[u]} to part {part_of[v]}"
                )
