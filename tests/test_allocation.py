"""Tests for operator/register/mux allocation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.allocation import (
    allocation_candidates,
    mux_requirement,
    partition_resource_model,
    register_bits,
    register_requirement,
    value_lifetimes,
)
from repro.bad.scheduling import list_schedule
from repro.errors import PredictionError
from tests.strategies import dags


class TestAllocationCandidates:
    def test_empty(self):
        assert allocation_candidates({}) == [{}]

    def test_single_class_spans_serial_to_parallel(self):
        candidates = allocation_candidates({"mul": 16})
        units = sorted(c["mul"] for c in candidates)
        assert units[0] == 1
        assert units[-1] == 16

    def test_vectors_unique(self):
        candidates = allocation_candidates({"mul": 16, "add": 12})
        keys = [tuple(sorted(c.items())) for c in candidates]
        assert len(keys) == len(set(keys))

    def test_includes_skewed_vectors(self):
        # Multipliers busy 10x longer than adders: the frontier must
        # contain many-muls/one-adder points.
        candidates = allocation_candidates(
            {"mul": 16, "add": 12},
            busy_cycles={"mul": 160, "add": 12},
        )
        assert any(
            c["mul"] >= 4 and c["add"] == 1 for c in candidates
        )

    def test_units_never_exceed_op_count(self):
        for c in allocation_candidates({"mul": 5, "add": 3}):
            assert 1 <= c["mul"] <= 5
            assert 1 <= c["add"] <= 3

    def test_max_total_units_cap(self):
        candidates = allocation_candidates(
            {"mul": 16, "add": 12}, max_total_units=6
        )
        assert candidates
        assert all(sum(c.values()) <= 6 or sum(c.values()) == 2
                   for c in candidates)

    def test_rejects_bad_counts(self):
        with pytest.raises(PredictionError):
            allocation_candidates({"mul": 0})

    def test_rejects_busy_below_count(self):
        with pytest.raises(PredictionError):
            allocation_candidates({"mul": 4}, busy_cycles={"mul": 2})

    @given(
        st.dictionaries(
            st.sampled_from(["add", "mul", "sub"]),
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=50)
    def test_always_contains_serial_and_parallel(self, counts):
        candidates = allocation_candidates(counts)
        keys = {tuple(sorted(c.items())) for c in candidates}
        serial = tuple(sorted((cls, 1) for cls in counts))
        parallel = tuple(sorted(counts.items()))
        assert serial in keys
        assert parallel in keys


class TestResourceModel:
    def test_compute_classes(self, ar_graph):
        op_class, counts = partition_resource_model(ar_graph)
        assert counts == {"mul": 16, "add": 12}
        assert set(op_class) == set(ar_graph.operations)

    def test_memory_classes_per_block(self):
        from repro.dfg.builders import GraphBuilder

        b = GraphBuilder("m")
        a = b.input("a")
        r1 = b.mem_read(a, "M_A")
        r2 = b.mem_read(a, "M_B")
        s = b.add(r1, r2, name="s")
        b.output(s)
        g = b.build()
        _cls, counts = partition_resource_model(g)
        assert counts == {"mem:M_A": 1, "mem:M_B": 1, "add": 1}


def _schedule(graph, capacities=None):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    return list_schedule(
        graph, duration, op_class, capacities or counts
    )


class TestRegisterAllocation:
    def test_inputs_not_charged(self, tiny_graph):
        schedule = _schedule(tiny_graph)
        lifetimes = value_lifetimes(tiny_graph, schedule)
        for value in tiny_graph.primary_inputs():
            assert value.id not in lifetimes

    def test_output_held_to_end(self, tiny_graph):
        schedule = _schedule(tiny_graph)
        lifetimes = value_lifetimes(tiny_graph, schedule)
        birth, death = lifetimes["y"]
        assert death >= schedule.latency

    def test_nonpipelined_requirement_is_max_live(self, ar_graph):
        schedule = _schedule(ar_graph)
        words = register_requirement(ar_graph, schedule, schedule.latency)
        assert words >= 1
        bits = register_bits(ar_graph, schedule, schedule.latency)
        assert bits == words * 16  # uniform 16-bit graph

    def test_pipelining_needs_more_registers(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 12, "mul": 16})
        non_pipe = register_requirement(
            ar_graph, schedule, schedule.latency
        )
        pipe = register_requirement(ar_graph, schedule, 2)
        assert pipe >= non_pipe

    def test_bad_interval_rejected(self, ar_graph):
        schedule = _schedule(ar_graph)
        with pytest.raises(PredictionError):
            register_requirement(ar_graph, schedule, 0)
        with pytest.raises(PredictionError):
            register_bits(ar_graph, schedule, -1)

    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_register_words_bounded_by_values(self, graph):
        schedule = _schedule(graph)
        words = register_requirement(graph, schedule, schedule.latency)
        internal_values = sum(
            1 for v in graph.values.values() if v.producer is not None
        )
        assert 0 <= words <= internal_values


class TestMuxAllocation:
    def test_no_sharing_no_operator_muxes(self, tiny_graph):
        op_class, counts = partition_resource_model(tiny_graph)
        muxes = mux_requirement(
            tiny_graph, counts, op_class, register_words=10,
            value_width=16,
        )
        # One op per unit: only register steering could remain, and with
        # 10 registers for 2 writers there is none.
        assert muxes == 0

    def test_sharing_creates_muxes(self, ar_graph):
        op_class, _ = partition_resource_model(ar_graph)
        shared = mux_requirement(
            ar_graph, {"add": 1, "mul": 1}, op_class,
            register_words=4, value_width=16,
        )
        assert shared > 0

    def test_more_units_fewer_muxes(self, ar_graph):
        op_class, _ = partition_resource_model(ar_graph)
        few_units = mux_requirement(
            ar_graph, {"add": 1, "mul": 2}, op_class, 6, 16
        )
        many_units = mux_requirement(
            ar_graph, {"add": 6, "mul": 8}, op_class, 6, 16
        )
        assert many_units < few_units

    def test_missing_class_rejected(self, ar_graph):
        op_class, _ = partition_resource_model(ar_graph)
        with pytest.raises(PredictionError):
            mux_requirement(ar_graph, {"add": 1}, op_class, 4, 16)

    def test_bad_sharing_factor_rejected(self, ar_graph):
        op_class, counts = partition_resource_model(ar_graph)
        with pytest.raises(PredictionError):
            mux_requirement(
                ar_graph, counts, op_class, 4, 16, sharing_factor=0.0
            )
