"""Tests for the enumeration and iterative search heuristics."""

from __future__ import annotations

import pytest

from repro.errors import PredictionError
from repro.experiments import experiment1_session, experiment2_session
from repro.search.enumeration import enumeration_search
from repro.search.iterative import iterative_search


@pytest.fixture(scope="module")
def two_way_session():
    return experiment1_session(package_number=2, partition_count=2)


@pytest.fixture(scope="module")
def two_way_inputs(two_way_session):
    return (
        two_way_session.partitioning(),
        two_way_session.pruned_predictions(),
        two_way_session.clocks,
        two_way_session.library,
        two_way_session.criteria,
    )


class TestEnumeration:
    def test_trials_equal_product(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = enumeration_search(
            pt, preds, clocks, library, criteria
        )
        expected = 1
        for options in preds.values():
            expected *= len(options)
        assert result.trials == expected

    def test_finds_feasible(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = enumeration_search(
            pt, preds, clocks, library, criteria
        )
        assert result.feasible_trials > 0
        for design in result.feasible:
            assert design.report.feasible

    def test_keep_all_records_every_trial(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = enumeration_search(
            pt, preds, clocks, library, criteria, keep_all=True
        )
        assert result.space is not None
        assert result.space.total == result.trials

    def test_pruning_does_not_lose_feasible_designs(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        pruned = enumeration_search(
            pt, preds, clocks, library, criteria, prune=True
        )
        unpruned = enumeration_search(
            pt, preds, clocks, library, criteria, prune=False
        )
        assert pruned.feasible_trials == unpruned.feasible_trials

    def test_empty_predictions_rejected(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        broken = dict(preds)
        broken["P1"] = []
        with pytest.raises(PredictionError):
            enumeration_search(pt, broken, clocks, library, criteria)

    def test_non_inferior_rows_sorted(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = enumeration_search(
            pt, preds, clocks, library, criteria
        )
        rows = result.non_inferior()
        keys = [(d.ii_main, d.delay_main) for d in rows]
        assert keys == sorted(keys)
        # Pareto: delays strictly decrease as II increases.
        for (ii_a, d_a), (ii_b, d_b) in zip(keys, keys[1:]):
            assert ii_a < ii_b and d_a > d_b


class TestIterative:
    def test_finds_feasible(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = iterative_search(pt, preds, clocks, library, criteria)
        assert result.feasible_trials > 0

    def test_fewer_trials_than_enumeration(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        iter_result = iterative_search(
            pt, preds, clocks, library, criteria
        )
        enum_result = enumeration_search(
            pt, preds, clocks, library, criteria
        )
        assert iter_result.trials <= enum_result.trials

    def test_matches_enumeration_best_ii(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        iter_best = iterative_search(
            pt, preds, clocks, library, criteria
        ).best()
        enum_best = enumeration_search(
            pt, preds, clocks, library, criteria
        ).best()
        assert iter_best is not None and enum_best is not None
        assert iter_best.ii_main == enum_best.ii_main

    def test_three_partition_crossover_exp2(self):
        """Experiment 2's Table 6 signature: enumeration beats the
        iterative heuristic at 3 partitions."""
        session = experiment2_session(partition_count=3)
        enum_best = session.check("enumeration").best()
        iter_best = session.check("iterative").best()
        assert enum_best.ii_main <= iter_best.ii_main

    def test_results_are_feasible(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = iterative_search(pt, preds, clocks, library, criteria)
        for design in result.feasible:
            assert design.report.feasible
            assert design.system.ii_main >= max(
                p.ii_main for p in design.selection.values()
            )

    def test_empty_predictions_rejected(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        broken = dict(preds)
        broken["P2"] = []
        with pytest.raises(PredictionError):
            iterative_search(pt, broken, clocks, library, criteria)


class TestSearchResultHelpers:
    def test_best_none_when_empty(self, two_way_inputs):
        from repro.search.results import SearchResult

        empty = SearchResult(
            heuristic="iterative", trials=0, feasible=[], cpu_seconds=0.0
        )
        assert empty.best() is None
        assert empty.non_inferior() == []

    def test_row_shape(self, two_way_inputs):
        pt, preds, clocks, library, criteria = two_way_inputs
        result = iterative_search(pt, preds, clocks, library, criteria)
        row = result.best().row()
        assert set(row) == {
            "initiation_interval", "delay", "clock_cycle_ns"
        }
