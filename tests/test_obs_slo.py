"""SLO objectives, burn ratios, and the exported gauges."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOTracker,
    default_objectives,
)


def make_registry(latencies=(), statuses=()):
    registry = MetricsRegistry()
    h = registry.histogram(
        "request_latency_seconds",
        labelnames=("route", "class"),
        buckets=(0.01, 0.1, 1.0),
    )
    for route, value in latencies:
        h.labels(route=route, **{"class": "2xx"}).observe(value)
    c = registry.counter("responses_total", labelnames=("status",))
    for status, count in statuses:
        c.labels(status=str(status)).inc(count)
    return registry


class TestObjectives:
    def test_latency_objective_validation(self):
        with pytest.raises(ValueError):
            LatencyObjective(name="bad", threshold_s=0)
        with pytest.raises(ValueError):
            LatencyObjective(name="bad", threshold_s=1.0, quantile=1.0)

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            ErrorRateObjective(name="bad", max_ratio=0)
        with pytest.raises(ValueError):
            ErrorRateObjective(name="bad", max_ratio=1.5)

    def test_duplicate_names_raise(self):
        registry = MetricsRegistry()
        objectives = [
            ErrorRateObjective(name="x", max_ratio=0.5),
            ErrorRateObjective(name="x", max_ratio=0.1),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker(registry, objectives)

    def test_default_objectives_shape(self):
        latency, errors = default_objectives(
            latency_ms=250.0, error_rate=0.05
        )
        assert latency.name == "latency_p95"
        assert latency.threshold_s == 0.25
        assert errors.max_ratio == 0.05


class TestEvaluate:
    def test_no_data_is_within_budget(self):
        registry = make_registry()
        tracker = SLOTracker(registry, default_objectives())
        outcome = tracker.evaluate()
        assert outcome["ok"] is True
        for doc in outcome["objectives"]:
            assert doc["burn"] == 0.0
            assert doc["ok"] is True

    def test_latency_within_and_out_of_budget(self):
        registry = make_registry(
            latencies=[("GET /x", 0.005)] * 20
        )
        ok = SLOTracker(
            registry,
            [LatencyObjective(name="lat", threshold_s=0.5)],
        ).evaluate()
        assert ok["ok"] is True

        registry = make_registry(
            latencies=[("GET /x", 0.5)] * 20
        )
        burned = SLOTracker(
            registry,
            [LatencyObjective(name="lat", threshold_s=0.01)],
        ).evaluate()
        assert burned["ok"] is False
        assert burned["objectives"][0]["burn"] > 1.0

    def test_latency_route_filter(self):
        registry = make_registry(
            latencies=[("GET /fast", 0.005)] * 20
            + [("GET /slow", 0.9)] * 20
        )
        fast_only = SLOTracker(
            registry,
            [
                LatencyObjective(
                    name="lat", threshold_s=0.05, route="GET /fast"
                )
            ],
        ).evaluate()
        assert fast_only["ok"] is True

    def test_error_rate_burn(self):
        registry = make_registry(
            statuses=[(200, 90), (500, 10)]
        )
        outcome = SLOTracker(
            registry,
            [ErrorRateObjective(name="err", max_ratio=0.01)],
        ).evaluate()
        doc = outcome["objectives"][0]
        assert doc["measured_ratio"] == pytest.approx(0.1)
        assert doc["burn"] == pytest.approx(10.0)
        assert outcome["ok"] is False

    def test_gauges_exported_to_registry(self):
        registry = make_registry(statuses=[(200, 99), (500, 1)])
        tracker = SLOTracker(
            registry,
            [ErrorRateObjective(name="err", max_ratio=0.05)],
        )
        tracker.evaluate()
        burn = registry.get("slo_burn_ratio")
        ok = registry.get("slo_ok")
        assert burn.labels(slo="err").value == pytest.approx(0.2)
        assert ok.labels(slo="err").value == 1.0
