"""Tests for pruning, the design space recorder and search results."""

from __future__ import annotations

import pytest

from repro.core.feasibility import FeasibilityCriteria
from repro.search.pruning import dominance_filter, level1_prune
from repro.search.space import DesignPoint, DesignSpace


class TestDominanceFilter:
    def test_keeps_pareto_front(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        front = dominance_filter(preds)
        assert front
        # No member of the front dominates another member.
        for a in front:
            for b in front:
                assert not a.dominates(b)

    def test_dominated_are_dropped(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        front = dominance_filter(preds)
        dropped = [p for p in preds if p not in front]
        for victim in dropped:
            assert any(p.dominates(victim) for p in preds)

    def test_empty_input(self):
        assert dominance_filter([]) == []

    def test_matches_naive_quadratic_reference(
        self, exp1_predictor, ar_graph, exp2_predictor
    ):
        # The sort+sweep implementation must keep exactly what the
        # straightforward all-pairs definition keeps, in input order.
        for predictor in (exp1_predictor, exp2_predictor):
            preds = predictor.predict_partition(ar_graph)
            naive = [
                p
                for p in preds
                if not any(
                    q is not p and q.dominates(p) for q in preds
                )
            ]
            swept = dominance_filter(preds)
            assert [id(p) for p in swept] == [id(p) for p in naive]

    def test_preserves_input_order(self, exp1_predictor, ar_graph):
        preds = exp1_predictor.predict_partition(ar_graph)
        shuffled = list(reversed(preds))
        front = dominance_filter(shuffled)
        positions = [shuffled.index(p) for p in front]
        assert positions == sorted(positions)

    def test_identity_guard_against_reflexive_dominance(
        self, exp1_predictor, ar_graph
    ):
        # A dominates() that is non-strict (considers equals, and thus a
        # prediction itself, dominating) must not let an object knock
        # out its own duplicate occurrences.
        preds = exp1_predictor.predict_partition(ar_graph)
        front = dominance_filter(preds)
        champion = front[0]

        original = type(champion).dominates

        def reflexive(self, other):
            return self is other or original(self, other)

        try:
            type(champion).dominates = reflexive
            survivors = dominance_filter([champion, champion])
        finally:
            type(champion).dominates = original
        assert survivors == [champion, champion]


class TestLevel1Prune:
    def test_prune_reduces_and_sorts(self, exp1_predictor, ar_graph,
                                     exp1_clocks, exp1_criteria):
        preds = exp1_predictor.predict_partition(ar_graph)
        pruned = level1_prune(
            preds, exp1_criteria, exp1_clocks, 111_000.0
        )
        assert len(pruned) < len(preds)
        keys = [p.sort_key() for p in pruned]
        assert keys == sorted(keys)

    def test_without_dominance_keeps_more(self, exp1_predictor, ar_graph,
                                          exp1_clocks, exp1_criteria):
        preds = exp1_predictor.predict_partition(ar_graph)
        with_dom = level1_prune(
            preds, exp1_criteria, exp1_clocks, 111_000.0
        )
        without_dom = level1_prune(
            preds, exp1_criteria, exp1_clocks, 111_000.0,
            drop_inferior=False,
        )
        assert len(without_dom) >= len(with_dom)

    def test_generous_criteria_keep_everything_feasible(
        self, exp1_predictor, ar_graph, exp1_clocks
    ):
        preds = exp1_predictor.predict_partition(ar_graph)
        generous = FeasibilityCriteria(
            performance_ns=1e12, delay_ns=1e12
        )
        kept = level1_prune(
            preds, generous, exp1_clocks, 1e12, drop_inferior=False
        )
        assert len(kept) == len(preds)


class TestDesignSpace:
    def test_total_counts_revisits(self):
        space = DesignSpace()
        point = DesignPoint("system", 1000.0, 50, 20)
        space.record(point)
        space.record(point)
        assert space.total == 2
        assert space.unique == 1

    def test_distinct_points(self):
        space = DesignSpace()
        space.record(DesignPoint("system", 1000.0, 50, 20))
        space.record(DesignPoint("system", 2000.0, 50, 20))
        space.record(DesignPoint("partition", 1000.0, 50, 20))
        assert space.unique == 3

    def test_scatter_series_deduplicates(self):
        space = DesignSpace()
        for _ in range(5):
            space.record(DesignPoint("system", 1000.0, 50, 20))
        space.record(DesignPoint("system", 3000.0, 70, 20))
        series = space.scatter_series()
        assert len(series) == 2
        assert (1000.0, 50) in series

    def test_kind_filter(self):
        space = DesignSpace()
        space.record(DesignPoint("system", 1.0, 1, 1))
        space.record(DesignPoint("partition", 2.0, 2, 2))
        assert len(space.points("system")) == 1
        assert len(space.scatter_series("partition")) == 1
        assert len(space.points()) == 2
