"""The CHOP serving layer: a concurrent partitioning server.

The paper frames CHOP as an *interactive* tool — the designer proposes a
partitioning and the system answers feasibility fast enough to stay in
the loop (sections 1 and 6).  This package turns the batch library into a
long-running, stdlib-only HTTP/JSON service so many designer sessions can
share one process:

* :mod:`repro.service.app` — routing and the JSON endpoints;
* :mod:`repro.service.sessions` — fingerprint-addressed LRU registry of
  loaded :class:`~repro.core.chop.ChopSession` state;
* :mod:`repro.service.cache` — single-flight LRU memoization of check
  verdicts (the hot path: re-checking after small edits);
* :mod:`repro.service.jobs` — bounded worker pool for long enumerations,
  with cooperative timeout/cancellation, admission control (queue and
  per-session caps), retry of infrastructure failures and graceful
  drain;
* :mod:`repro.service.metrics` — request/latency/cache/queue counters
  behind ``GET /metrics``.

Start it with ``python -m repro.cli serve --port 8080 --workers 4``.
"""

from repro.service.app import ChopService, make_server, serve
from repro.service.cache import LRUCache, check_cache_key
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import Metrics, percentile
from repro.service.sessions import SessionEntry, SessionRegistry

__all__ = [
    "ChopService",
    "Job",
    "JobQueue",
    "LRUCache",
    "Metrics",
    "SessionEntry",
    "SessionRegistry",
    "check_cache_key",
    "make_server",
    "percentile",
    "serve",
]
