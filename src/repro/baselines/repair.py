"""Acyclicity repair for baseline partitions.

CHOP's prediction model forbids mutual data dependencies between
partitions (paper section 2.3).  KL and random cuts ignore edge
direction, so their partitions usually violate that restriction.
:func:`make_acyclic` repairs a bipartition minimally: it orients the pair
(the side holding more producers first) and moves every operation that
breaks the one-way data flow.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError


def _ancestors_in(
    graph: DataFlowGraph, op_id: str, pool: Set[str]
) -> Set[str]:
    """Transitive predecessors of ``op_id`` that lie in ``pool``.

    The traversal must walk *through* non-pool operations: a pool
    ancestor reachable only via same-side intermediaries still creates a
    backward dependency.
    """
    found: Set[str] = set()
    visited: Set[str] = set()
    stack = [op_id]
    while stack:
        current = stack.pop()
        for pred in graph.predecessors(current):
            if pred in visited:
                continue
            visited.add(pred)
            if pred in pool:
                found.add(pred)
            stack.append(pred)
    return found


def make_acyclic(
    graph: DataFlowGraph, side_a: Set[str], side_b: Set[str]
) -> Tuple[Set[str], Set[str], int]:
    """Repair (A, B) so data only flows A -> B; returns the new sides and
    the number of operations moved.

    The orientation keeping more operations in place wins.  With A first,
    any A-operation depending (transitively) on a B-operation moves to B.
    Raises when a side would end up empty — the cut was unrepairable.
    """
    if side_a & side_b:
        raise PartitioningError("sides overlap")
    if set(graph.operations) != side_a | side_b:
        raise PartitioningError("sides must cover the whole graph")

    def violators(first: Set[str], second: Set[str]) -> Set[str]:
        bad: Set[str] = set()
        for op_id in first:
            ancestors = _ancestors_in(graph, op_id, second)
            if ancestors:
                bad.add(op_id)
        return bad

    moves_ab = violators(side_a, side_b)  # A first: these leave A
    moves_ba = violators(side_b, side_a)  # B first: these leave B
    if len(moves_ab) <= len(moves_ba):
        new_a = side_a - moves_ab
        new_b = side_b | moves_ab
        moved = len(moves_ab)
    else:
        new_a = side_b - moves_ba  # B becomes the first side
        new_b = side_a | moves_ba
        moved = len(moves_ba)
    if not new_a or not new_b:
        raise PartitioningError(
            "cut cannot be repaired into a one-way partitioning"
        )
    return new_a, new_b, moved
