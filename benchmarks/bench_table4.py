"""Table 4: experiment 1 results.

Paper rows (II / delay / clock are the reproduction targets' *shape*):

    parts pkg H  CPU   trials feas  II  delay clock
    1     2   E  0.07  5      1     60  67    312
    1     2   I  0.06  13     1     60  67    312
    2     2   E  0.59  156    2     30  57    310  (also 20/79)
    2     2   I  0.21  9      2     30  57    310
    2     1   E  0.43  156    2     30  59    310  (also 20/80)
    2     1   I  0.22  9      2     30  59    310
    3     2   E  1.98  1050   1     30  77    308
    3     2   I  0.27  9      1     30  67    308
"""

from __future__ import annotations

from repro.experiments import experiment1_session
from repro.reporting.tables import results_table

#: (partition count, package number, heuristic) cells of Table 4.
CELLS = [
    (1, 2, "E"), (1, 2, "I"),
    (2, 2, "E"), (2, 2, "I"),
    (2, 1, "E"), (2, 1, "I"),
    (3, 2, "E"), (3, 2, "I"),
]

_HEURISTIC = {"E": "enumeration", "I": "iterative"}


def _run_cell(count, package, letter):
    session = experiment1_session(
        package_number=package, partition_count=count
    )
    return session.check(heuristic=_HEURISTIC[letter])


def test_table4_experiment1(benchmark, save_artifact):
    entries = []

    def run_all():
        entries.clear()
        for count, package, letter in CELLS:
            result = _run_cell(count, package, letter)
            entries.append((count, package, letter, result))
        return entries

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = results_table(entries)
    save_artifact("table4_experiment1.txt", text)

    by_cell = {
        (c, p, h): r for c, p, h, r in entries
    }
    # Every cell finds feasible designs (the paper's rows all do).
    assert all(r.feasible_trials > 0 for r in by_cell.values())

    # Doubling the chips roughly halves the initiation interval.
    ii1 = by_cell[(1, 2, "E")].best().ii_main
    ii2 = by_cell[(2, 2, "E")].best().ii_main
    ii3 = by_cell[(3, 2, "E")].best().ii_main
    assert ii2 <= ii1 / 1.5
    assert ii3 <= ii2

    # 64-pin packaging: same II, no better delay (longer I/O transfers).
    wide = by_cell[(3, 2, "E")].best()
    narrow = by_cell[(3, 1, "E")] if (3, 1, "E") in by_cell else None
    assert narrow is None or narrow.best().ii_main == wide.ii_main

    # The iterative heuristic tries far fewer combinations at 3 parts.
    assert (
        by_cell[(3, 2, "I")].trials < by_cell[(3, 2, "E")].trials
    )


def test_table4_pin_count_sensitivity(benchmark, save_artifact):
    """The package-1 vs package-2 comparison rows of Table 4."""
    entries = []

    def run_all():
        entries.clear()
        for package in (2, 1):
            for count in (2, 3):
                result = _run_cell(count, package, "E")
                entries.append((count, package, "E", result))
        return entries

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact("table4_pin_sensitivity.txt", results_table(entries))
    by_cell = {(c, p): r for c, p, _h, r in entries}
    for count in (2, 3):
        wide = by_cell[(count, 2)].best()
        narrow = by_cell[(count, 1)].best()
        # Packaging never changes the achievable initiation interval
        # (the paper's rows agree); the delay moves with the pad-area /
        # pin-bandwidth trade — the paper's designs paid in transfer
        # time, ours pay either in transfer time (3 partitions) or die
        # area (2 partitions).
        assert narrow.ii_main == wide.ii_main
        assert narrow.report.feasible and wide.report.feasible
    # Where the transfer effect dominates (3 partitions), the 64-pin
    # package shows the paper's "slight increase in the system delay".
    assert (
        by_cell[(3, 1)].best().delay_main
        >= by_cell[(3, 2)].best().delay_main
    )
