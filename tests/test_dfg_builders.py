"""Tests for the graph builder."""

from __future__ import annotations

import pytest

from repro.dfg.builders import GraphBuilder
from repro.dfg.ops import OpType
from repro.errors import SpecificationError


class TestInputs:
    def test_duplicate_input_rejected(self):
        b = GraphBuilder("g")
        b.input("x")
        with pytest.raises(SpecificationError):
            b.input("x")

    def test_custom_width(self):
        b = GraphBuilder("g", default_width=16)
        b.input("x", width=8)
        y = b.add("x", "x", name="y")
        b.output(y)
        g = b.build()
        assert g.value("x").width == 8
        assert g.value("y").width == 16

    def test_rejects_non_positive_default_width(self):
        with pytest.raises(SpecificationError):
            GraphBuilder("g", default_width=0)


class TestOps:
    def test_undeclared_operand_rejected(self):
        b = GraphBuilder("g")
        with pytest.raises(SpecificationError):
            b.add("ghost", "ghost")

    def test_auto_names_are_unique(self):
        b = GraphBuilder("g")
        x = b.input("x")
        v1 = b.add(x, x)
        v2 = b.add(x, x)
        assert v1 != v2

    def test_named_output_value(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.mul(x, x, name="y")
        assert y == "y"

    def test_duplicate_value_name_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.mul(x, x, name="y")
        with pytest.raises(SpecificationError):
            b.add(x, x, name="y")

    def test_mem_ops(self):
        b = GraphBuilder("g")
        addr = b.input("addr")
        word = b.mem_read(addr, "M1")
        write_id = b.mem_write(word, "M1")
        y = b.add(word, word, name="y")
        b.output(y)
        g = b.build()
        read_op = [o for o in g if o.op_type is OpType.MEM_READ][0]
        write_op = [o for o in g if o.op_type is OpType.MEM_WRITE][0]
        assert read_op.memory_block == "M1"
        assert write_op.output is None
        assert write_op.id == write_id

    def test_sub_wrapper(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.sub(x, x, name="y")
        b.output(y)
        g = b.build()
        assert g.op_counts_by_type()[OpType.SUB] == 1


class TestFinalisation:
    def test_output_of_unknown_value_rejected(self):
        b = GraphBuilder("g")
        with pytest.raises(SpecificationError):
            b.output("ghost")

    def test_builder_single_use(self):
        b = GraphBuilder("g")
        x = b.input("x")
        y = b.add(x, x, name="y")
        b.output(y)
        b.build()
        with pytest.raises(SpecificationError):
            b.add(x, x)
        with pytest.raises(SpecificationError):
            b.build()

    def test_expression_composition(self):
        b = GraphBuilder("g")
        x = b.input("x")
        k = b.input("k")
        y = b.add(b.mul(x, k), b.mul(k, k), name="y")
        b.output(y)
        g = b.build()
        assert g.op_count() == 3
        assert g.depth() == 2
