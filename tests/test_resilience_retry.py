"""Unit tests for repro.resilience.retry (policy + ledger).

The retry policy is the one backoff implementation every transient-
failure site shares, so its arithmetic (growth, cap, jitter) and its
exception classification are tested exactly, with ``jitter=0`` or an
injected rng keeping everything deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro.resilience import RetryPolicy, RetryStats


class TestDelaySchedule:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, max_delay_s=10.0,
            multiplier=2.0, jitter=0.0,
        )
        delays = [policy.delay_for(n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, max_delay_s=3.0,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delay_for(1) == 1.0
        assert policy.delay_for(2) == 2.0
        assert policy.delay_for(3) == 3.0  # capped, not 4.0
        assert policy.delay_for(9) == 3.0

    def test_jitter_widens_but_never_shrinks(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=1.0, max_delay_s=10.0,
            multiplier=1.0, jitter=0.5,
        )
        rng = random.Random(42)
        for _ in range(100):
            delay = policy.delay_for(1, rng=rng)
            assert 1.0 <= delay <= 1.5

    def test_jitter_deterministic_with_seeded_rng(self):
        policy = RetryPolicy(jitter=0.2)
        a = policy.delay_for(2, rng=random.Random(7))
        b = policy.delay_for(2, rng=random.Random(7))
        assert a == b

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestClassification:
    def test_default_retries_oserror_only(self):
        policy = RetryPolicy()
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(ConnectionResetError())  # an OSError
        assert not policy.is_retryable(ValueError("logic bug"))
        assert not policy.is_retryable(KeyError("missing"))

    def test_custom_retryable_tuple(self):
        policy = RetryPolicy(retryable=(KeyError, TimeoutError))
        assert policy.is_retryable(KeyError("x"))
        assert not policy.is_retryable(OSError("disk"))


class TestCall:
    def _policy(self, attempts=3):
        return RetryPolicy(
            max_attempts=attempts, base_delay_s=0.01, jitter=0.0
        )

    def test_success_first_try(self):
        stats = RetryStats()
        result = self._policy().call(
            lambda: 42, site="t", sleep=lambda _: None, stats=stats
        )
        assert result == 42
        snap = stats.stats()
        assert snap["calls"] == 1
        assert snap["retries"] == 0
        assert snap["exhausted"] == 0

    def test_retries_then_succeeds(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        stats = RetryStats()
        result = self._policy().call(
            flaky, site="t", sleep=slept.append, stats=stats
        )
        assert result == "ok"
        assert calls["n"] == 3
        # Backoff slept once per failed attempt, growing exponentially.
        assert slept == [0.01, 0.02]
        snap = stats.stats()
        assert snap["retries"] == 2
        assert snap["sites"]["t"] == {
            "calls": 1, "retries": 2, "exhausted": 0,
        }

    def test_exhaustion_raises_last_error(self):
        stats = RetryStats()
        with pytest.raises(OSError, match="always"):
            self._policy(attempts=2).call(
                lambda: (_ for _ in ()).throw(OSError("always")),
                site="t", sleep=lambda _: None, stats=stats,
            )
        snap = stats.stats()
        assert snap["exhausted"] == 1
        assert snap["retries"] == 1  # 2 attempts = 1 retry

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            self._policy().call(broken, sleep=lambda _: None)
        assert calls["n"] == 1


class TestRetryStatsThreading:
    def test_concurrent_records_tally_exactly(self):
        import threading

        stats = RetryStats()

        def hammer():
            for _ in range(200):
                stats.record("site", attempts=2, exhausted=False)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.stats()
        assert snap["calls"] == 800
        assert snap["retries"] == 800
