"""Request counters and latency histograms for the serving layer.

Everything is in-process and lock-protected; the ``/metrics`` endpoint
renders one JSON snapshot combining these request metrics with the
cache's hit/miss counters and the job queue's depth (assembled by
:mod:`repro.service.app`).
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Deque, Dict, List

#: Latency samples retained per route — enough for stable p50/p95 under
#: bursty interactive traffic without unbounded growth.
MAX_SAMPLES = 2048


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(samples)
    rank = max(
        0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1)))
    )
    return ordered[rank]


class Metrics:
    """Per-route request counts, status counts and latency percentiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = defaultdict(int)
        self._statuses: Dict[int, int] = defaultdict(int)
        self._latencies: Dict[str, Deque[float]] = defaultdict(
            lambda: deque(maxlen=MAX_SAMPLES)
        )

    def observe(self, route: str, seconds: float, status: int) -> None:
        """Record one finished request."""
        with self._lock:
            self._requests[route] += 1
            self._statuses[status] += 1
            self._latencies[route].append(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of everything recorded so far."""
        with self._lock:
            routes: Dict[str, Any] = {}
            for route, count in sorted(self._requests.items()):
                samples = list(self._latencies[route])
                routes[route] = {
                    "count": count,
                    "latency_ms": {
                        "p50": round(percentile(samples, 50) * 1000, 3),
                        "p95": round(percentile(samples, 95) * 1000, 3),
                    }
                    if samples
                    else None,
                }
            return {
                "requests_total": sum(self._requests.values()),
                "responses_by_status": {
                    str(code): count
                    for code, count in sorted(self._statuses.items())
                },
                "routes": routes,
            }
