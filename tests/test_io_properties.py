"""Property-based round-trip tests for the JSON layer."""

from __future__ import annotations

import json
import random

from hypothesis import given, settings, strategies as st

from repro.dfg.evaluate import evaluate_outputs
from repro.io.graphs import graph_from_dict, graph_to_dict
from tests.strategies import dags


@given(dags())
@settings(max_examples=50, deadline=None)
def test_graph_round_trip_structure(graph):
    rebuilt = graph_from_dict(graph_to_dict(graph))
    assert sorted(rebuilt.operations) == sorted(graph.operations)
    assert rebuilt.op_counts_by_type() == graph.op_counts_by_type()
    assert {v.id for v in rebuilt.primary_inputs()} == {
        v.id for v in graph.primary_inputs()
    }
    assert {v.id for v in rebuilt.primary_outputs()} == {
        v.id for v in graph.primary_outputs()
    }


@given(dags(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_graph_round_trip_semantics(graph, seed):
    """Serialisation must not change what the graph computes."""
    rng = random.Random(seed)
    inputs = {
        v.id: rng.randrange(0, 1 << 16)
        for v in graph.primary_inputs()
    }
    rebuilt = graph_from_dict(graph_to_dict(graph))
    assert evaluate_outputs(rebuilt, inputs) == evaluate_outputs(
        graph, inputs
    )


@given(dags())
@settings(max_examples=30, deadline=None)
def test_document_survives_json_text(graph):
    """The dictionary form is genuinely JSON (no exotic objects)."""
    text = json.dumps(graph_to_dict(graph))
    rebuilt = graph_from_dict(json.loads(text))
    assert rebuilt.op_count() == graph.op_count()


@given(dags())
@settings(max_examples=25, deadline=None)
def test_double_round_trip_is_stable(graph):
    once = graph_to_dict(graph)
    twice = graph_to_dict(graph_from_dict(once))
    assert once == twice
