"""Functional-equivalence tests: specification vs synthesized netlist."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.allocation import partition_resource_model
from repro.bad.scheduling import list_schedule
from repro.dfg.builders import GraphBuilder
from repro.dfg.evaluate import apply_op, evaluate, evaluate_outputs
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.synth.binding import bind_design
from repro.synth.simulate import SimulationError, simulate_netlist
from tests.strategies import dags


class TestEvaluate:
    def test_tiny_graph(self, tiny_graph):
        outputs = evaluate_outputs(
            tiny_graph, {"a": 3, "b": 5, "c": 7}
        )
        assert outputs == {"y": 3 * 5 + 7}

    def test_wraparound(self, tiny_graph):
        outputs = evaluate_outputs(
            tiny_graph, {"a": 60000, "b": 3, "c": 1}
        )
        assert outputs["y"] == (60000 * 3 + 1) % 65536

    def test_missing_input_rejected(self, tiny_graph):
        with pytest.raises(SpecificationError, match="missing input"):
            evaluate(tiny_graph, {"a": 1, "b": 2})

    def test_memory_read_write(self):
        b = GraphBuilder("mem")
        addr = b.input("addr")
        r = b.mem_read(addr, "M")
        doubled = b.add(r, r, name="doubled")
        b.mem_write(doubled, "M")
        b.output(doubled)
        graph = b.build()
        memory = {"M": [10, 20, 30]}
        outputs = evaluate_outputs(graph, {"addr": 1}, memory)
        assert outputs == {"doubled": 40}
        assert memory["M"] == [10, 20, 30, 40]

    def test_memory_without_contents_rejected(self):
        b = GraphBuilder("mem")
        addr = b.input("addr")
        r = b.mem_read(addr, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        graph = b.build()
        with pytest.raises(SpecificationError, match="no contents"):
            evaluate(graph, {"addr": 0}, {})

    def test_division_semantics(self):
        assert apply_op(OpType.DIV, [7, 2], 16) == 3
        assert apply_op(OpType.DIV, [7, 0], 16) == 0xFFFF

    def test_compare_semantics(self):
        assert apply_op(OpType.COMPARE, [1, 2], 16) == 1
        assert apply_op(OpType.COMPARE, [2, 2], 16) == 0

    def test_logic_and_shift(self):
        assert apply_op(OpType.AND, [0b1100, 0b1010], 16) == 0b1000
        assert apply_op(OpType.OR, [0b1100, 0b1010], 16) == 0b1110
        assert apply_op(OpType.SHIFT, [1, 4], 16) == 16

    def test_ar_filter_is_deterministic(self, ar_graph):
        inputs = {
            v.id: i * 17 + 3
            for i, v in enumerate(ar_graph.primary_inputs())
        }
        first = evaluate_outputs(ar_graph, inputs)
        second = evaluate_outputs(ar_graph, inputs)
        assert first == second


def _simulate_with(graph, capacities, inputs, delays=None, cycle=None):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    schedule = list_schedule(
        graph, duration, op_class, capacities or counts,
        delay_ns=delays, cycle_ns=cycle,
    )
    bound = bind_design(graph, schedule)
    return simulate_netlist(graph, schedule, bound, inputs)


class TestSimulateNetlist:
    def test_matches_reference_parallel(self, ar_graph):
        inputs = {
            v.id: i * 31 + 7
            for i, v in enumerate(ar_graph.primary_inputs())
        }
        reference = evaluate_outputs(ar_graph, inputs)
        simulated = _simulate_with(ar_graph, None, inputs)
        assert simulated == reference

    def test_matches_reference_serial(self, ar_graph):
        inputs = {
            v.id: i * 13 + 1
            for i, v in enumerate(ar_graph.primary_inputs())
        }
        reference = evaluate_outputs(ar_graph, inputs)
        simulated = _simulate_with(
            ar_graph, {"add": 1, "mul": 1}, inputs
        )
        assert simulated == reference

    def test_matches_reference_with_chaining(self, ar_graph):
        inputs = {
            v.id: i + 2 for i, v in enumerate(ar_graph.primary_inputs())
        }
        delays = {
            op.id: (375.0 if op.op_type is OpType.MUL else 34.0)
            for op in ar_graph
        }
        reference = evaluate_outputs(ar_graph, inputs)
        simulated = _simulate_with(
            ar_graph, {"add": 4, "mul": 6}, inputs,
            delays=delays, cycle=3000.0,
        )
        assert simulated == reference

    def test_memory_partitions_rejected(self):
        b = GraphBuilder("mem")
        addr = b.input("addr")
        r = b.mem_read(addr, "M")
        s = b.add(r, r, name="s")
        b.output(s)
        graph = b.build()
        with pytest.raises(SpecificationError, match="compute-only"):
            _simulate_with(graph, None, {"addr": 0})

    def test_clobber_detected(self, tiny_graph):
        """A deliberately broken binding trips the dynamic check."""
        from repro.synth.binding import BoundDesign

        duration = {op_id: 1 for op_id in tiny_graph.operations}
        op_class, counts = partition_resource_model(tiny_graph)
        schedule = list_schedule(
            tiny_graph, duration, op_class, counts
        )
        good = bind_design(tiny_graph, schedule)
        # Force both stored values into the same register even though
        # their lifetimes say otherwise is fine here (v_mul1 dies when y
        # is born) — instead break it by dropping the output's register.
        broken = BoundDesign(
            unit_of=good.unit_of,
            units_used=good.units_used,
            register_of={
                vid: 0 for vid in good.register_of
            },
            register_count=1,
        )
        inputs = {"a": 2, "b": 3, "c": 4}
        # v_mul1 and y share r0 legally (non-overlapping lifetimes), so
        # this still works; drop y's register to break it.
        really_broken = BoundDesign(
            unit_of=good.unit_of,
            units_used=good.units_used,
            register_of={
                vid: reg
                for vid, reg in good.register_of.items()
                if vid != "y"
            },
            register_count=good.register_count,
        )
        with pytest.raises(SimulationError):
            simulate_netlist(
                tiny_graph, schedule, really_broken, inputs
            )


class TestSimulationProperties:
    @given(dags(max_ops=16), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_netlist_equals_specification(self, graph, seed):
        rng = random.Random(seed)
        inputs = {
            v.id: rng.randrange(0, 1 << 16)
            for v in graph.primary_inputs()
        }
        op_class, counts = partition_resource_model(graph)
        capacities = {
            cls: rng.randint(1, count) for cls, count in counts.items()
        }
        reference = evaluate_outputs(graph, inputs)
        simulated = _simulate_with(graph, capacities, inputs)
        assert simulated == reference

    @given(dags(max_ops=14), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_chained_netlist_equals_specification(self, graph, seed):
        rng = random.Random(seed)
        inputs = {
            v.id: rng.randrange(0, 1 << 16)
            for v in graph.primary_inputs()
        }
        delays = {op_id: 100.0 for op_id in graph.operations}
        reference = evaluate_outputs(graph, inputs)
        simulated = _simulate_with(
            graph, None, inputs, delays=delays, cycle=1000.0
        )
        assert simulated == reference
