"""In-process job queue for long-running searches.

Design-space enumerations can dwarf the interactive feasibility checks
(the paper measured 61.4 s unpruned vs sub-second pruned, section 3.1),
so the serving layer runs them on a worker pool off the request thread:
``POST .../enumerate`` submits a job and returns immediately; the client
polls ``GET /jobs/{id}``.

Jobs move ``queued -> running -> done | failed | cancelled``.  Timeouts
and cancellation are *cooperative*: the job function receives a
``should_stop()`` callable wired into the search heuristics' cancellation
hooks (see :meth:`repro.core.chop.ChopSession.check`), which starts
returning ``True`` once the job is cancelled or its wall-clock budget is
spent.  A queued job that is cancelled never starts.

Resilience (see ``docs/resilience.md``):

* **admission control** — ``max_queued`` bounds the backlog
  (:class:`~repro.errors.QueueFullError` → HTTP 429 + ``Retry-After``)
  and ``max_per_session`` bounds one tenant's concurrent jobs;
* **retry** — a retryable job-body failure (``OSError``, notably
  injected faults) is re-attempted under the queue's
  :class:`~repro.resilience.RetryPolicy` with backoff;
* **drain** — :meth:`JobQueue.drain` closes admissions
  (:class:`~repro.errors.DrainingError` → HTTP 503), waits for in-flight
  jobs up to a timeout, then cancels the stragglers cooperatively.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import DrainingError, QueueFullError, SearchCancelled
from repro.resilience.faults import maybe_inject
from repro.resilience.retry import RetryPolicy, RetryStats

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One unit of background work and its lifecycle record."""

    id: str
    kind: str
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    timeout_s: Optional[float] = None
    result: Any = None
    error: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    progress: Optional[Dict[str, int]] = None
    #: Trace id of the tracer following this job (traced jobs only).
    trace_id: Optional[str] = None
    #: Observability artifacts captured by the job function — finished
    #: span records under ``"trace"``, the explain document under
    #: ``"explain"``.  Written once, after the run; served by
    #: ``GET /jobs/{id}/trace`` and ``GET /jobs/{id}/explain``.
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: Admission-control scope (the project id for enumerations); jobs
    #: sharing a key count against ``max_per_session`` together.
    session_key: Optional[str] = None
    #: Executions of the job body (> 1 after retried failures).
    attempts: int = 0
    _deadline: Optional[float] = None

    def should_stop(self) -> bool:
        """The cooperative hook handed to the job function."""
        if self.cancel_event.is_set():
            return True
        return self._deadline is not None and time.monotonic() > self._deadline

    def report_progress(self, done: int, total: int) -> None:
        """Per-shard progress hook handed to engine-backed searches.

        Replaces the whole dict in one assignment so concurrent
        ``to_dict`` readers always see a consistent pair.
        """
        self.progress = {"shards_done": done, "shards_total": total}

    def to_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/{id}`` payload."""
        doc: Dict[str, Any] = {
            "job_id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timeout_s": self.timeout_s,
            "attempts": self.attempts,
        }
        if self.progress is not None:
            doc["progress"] = self.progress
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.state == DONE:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """A bounded worker pool with per-job timeout and cancellation."""

    def __init__(
        self,
        workers: int = 2,
        default_timeout_s: Optional[float] = 300.0,
        max_queued: Optional[int] = None,
        max_per_session: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_stats: Optional[RetryStats] = None,
        id_prefix: str = "",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if max_queued is not None and max_queued < 1:
            raise ValueError(
                f"max_queued must be >= 1 (or None), got {max_queued}"
            )
        if max_per_session is not None and max_per_session < 1:
            raise ValueError(
                f"max_per_session must be >= 1 (or None), "
                f"got {max_per_session}"
            )
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self.max_queued = max_queued
        self.max_per_session = max_per_session
        #: Backoff schedule for retryable job-body failures; ``None``
        #: disables retries (first failure is terminal).
        self.retry_policy = retry_policy
        self.retry_stats = retry_stats
        #: Prepended to every job id.  The fleet front gives each worker
        #: process ``w{index}-`` so a job id names its owning worker and
        #: ``GET /jobs/{id}`` can be routed without shared state.
        self.id_prefix = id_prefix
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="chop-job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._draining = False
        self._rejected_queue_full = 0
        self._rejected_session_quota = 0

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # submission and execution
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        kind: str = "job",
        timeout_s: Optional[float] = None,
        pass_job: bool = False,
        session_key: Optional[str] = None,
    ) -> Job:
        """Queue ``fn(should_stop)``; returns the job record immediately.

        ``timeout_s=None`` uses the queue default; pass ``0`` (or any
        non-positive value) for no timeout.  With ``pass_job`` the
        function receives the whole :class:`Job` instead of just the
        ``should_stop`` hook — engine-backed searches use this to wire
        :meth:`Job.report_progress` into per-shard callbacks.

        Raises :class:`~repro.errors.DrainingError` once the queue is
        draining, and :class:`~repro.errors.QueueFullError` when the
        backlog cap or the ``session_key``'s concurrent-job quota is
        hit — both *before* the job exists, so rejected work leaves no
        registry residue.
        """
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if timeout_s is not None and timeout_s <= 0:
            timeout_s = None
        with self._lock:
            if self._draining:
                raise DrainingError(
                    "job queue is draining; no new work is admitted"
                )
            queued = sum(
                1 for j in self._jobs.values() if j.state == QUEUED
            )
            if self.max_queued is not None and queued >= self.max_queued:
                self._rejected_queue_full += 1
                raise QueueFullError(
                    f"job queue is full ({queued} queued, cap "
                    f"{self.max_queued}); retry later",
                    retry_after_s=1.0 + queued,
                )
            if self.max_per_session is not None and session_key:
                active = sum(
                    1
                    for j in self._jobs.values()
                    if j.session_key == session_key
                    and j.state in (QUEUED, RUNNING)
                )
                if active >= self.max_per_session:
                    self._rejected_session_quota += 1
                    raise QueueFullError(
                        f"session {session_key!r} already has {active} "
                        f"active jobs (cap {self.max_per_session}); "
                        f"wait for one to finish",
                        retry_after_s=2.0,
                    )
            self._counter += 1
            job = Job(
                id=f"{self.id_prefix}job-{self._counter}",
                kind=kind,
                timeout_s=timeout_s,
                session_key=session_key,
            )
            self._jobs[job.id] = job
        self._executor.submit(self._run, job, fn, pass_job)
        return job

    def _run(
        self, job: Job, fn: Callable[..., Any], pass_job: bool = False
    ) -> None:
        with self._lock:
            if job.cancel_event.is_set():
                job.state = CANCELLED
                job.finished_at = time.time()
                job.error = "cancelled before start"
                return
            job.state = RUNNING
            job.started_at = time.time()
            if job.timeout_s is not None:
                job._deadline = time.monotonic() + job.timeout_s
        policy = self.retry_policy
        while True:
            job.attempts += 1
            try:
                maybe_inject("job")
                result = fn(job) if pass_job else fn(job.should_stop)
            except SearchCancelled as exc:
                with self._lock:
                    job.finished_at = time.time()
                    if job.cancel_event.is_set():
                        job.state = CANCELLED
                        job.error = f"cancelled: {exc}"
                    elif job.timeout_s is not None:
                        job.state = FAILED
                        job.error = (
                            f"timed out after {job.timeout_s:g} s: {exc}"
                        )
                    else:
                        job.state = FAILED
                        job.error = f"SearchCancelled: {exc}"
                return
            except Exception as exc:  # noqa: BLE001 — job boundary
                if (
                    policy is not None
                    and policy.is_retryable(exc)
                    and job.attempts < policy.max_attempts
                    and not job.should_stop()
                ):
                    time.sleep(policy.delay_for(job.attempts))
                    continue
                with self._lock:
                    job.state = FAILED
                    job.finished_at = time.time()
                    job.error = f"{type(exc).__name__}: {exc}"
                if self.retry_stats is not None:
                    self.retry_stats.record(
                        "job", job.attempts, exhausted=True
                    )
                return
            break
        with self._lock:
            job.state = DONE
            job.finished_at = time.time()
            job.result = result
        if self.retry_stats is not None:
            self.retry_stats.record("job", job.attempts, exhausted=False)

    # ------------------------------------------------------------------
    # lifecycle queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; running jobs stop at the next hook poll."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            return job

    def depth(self) -> Dict[str, Any]:
        """Queue-depth gauges for ``/metrics``."""
        with self._lock:
            states = [job.state for job in self._jobs.values()]
            draining = self._draining
            rejected_full = self._rejected_queue_full
            rejected_quota = self._rejected_session_quota
        return {
            "queued": states.count(QUEUED),
            "running": states.count(RUNNING),
            "total": len(states),
            "max_queued": self.max_queued,
            "draining": draining,
            "rejected_queue_full": rejected_full,
            "rejected_session_quota": rejected_quota,
        }

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Block until a job reaches a terminal state (test helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is not None and job.state in TERMINAL:
                return job
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} did not finish in {timeout} s")

    # ------------------------------------------------------------------
    # drain and shutdown
    # ------------------------------------------------------------------
    def _active(self) -> int:
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state in (QUEUED, RUNNING)
            )

    def drain(
        self,
        timeout_s: float = 10.0,
        grace_s: float = 5.0,
        poll_s: float = 0.02,
    ) -> Dict[str, Any]:
        """Graceful shutdown: stop admissions, wait, cancel, release.

        1. close admissions (``submit`` raises ``DrainingError``);
        2. wait up to ``timeout_s`` for queued/running jobs to finish;
        3. cancel the stragglers cooperatively and give them
           ``grace_s`` to observe the hook;
        4. :meth:`shutdown` the pool (queued leftovers are terminally
           cancelled in the registry).

        Returns a summary of terminal states for logging/metrics.
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + max(0.0, timeout_s)
        while self._active() and time.monotonic() < deadline:
            time.sleep(poll_s)
        forced = self._active()
        if forced:
            with self._lock:
                stragglers = [
                    job
                    for job in self._jobs.values()
                    if job.state in (QUEUED, RUNNING)
                ]
            for job in stragglers:
                job.cancel_event.set()
            grace_deadline = time.monotonic() + max(0.0, grace_s)
            while self._active() and time.monotonic() < grace_deadline:
                time.sleep(poll_s)
        self.shutdown()
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            "drained": forced == 0,
            "forced": forced,
            "done": states.count(DONE),
            "failed": states.count(FAILED),
            "cancelled": states.count(CANCELLED),
        }

    def shutdown(self) -> None:
        """Cancel everything and release the worker threads.

        Queued jobs whose futures the executor drops must still reach a
        terminal state in the registry — a client polling them would
        otherwise wait forever — so anything still ``queued`` after the
        executor shutdown is marked ``cancelled`` here.
        """
        with self._lock:
            self._draining = True
            jobs = list(self._jobs.values())
        for job in jobs:
            job.cancel_event.set()
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._lock:
            for job in self._jobs.values():
                if job.state == QUEUED:
                    job.state = CANCELLED
                    job.finished_at = time.time()
                    job.error = "cancelled: queue shut down"
