"""Tests for the ChopSession designer API."""

from __future__ import annotations

import pytest

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.dfg.benchmarks import ar_lattice_filter
from repro.errors import PartitioningError, PredictionError
from repro.library.presets import table1_library
from repro.memory.module import MemoryModule


@pytest.fixture
def session():
    s = ChopSession(
        graph=ar_lattice_filter(),
        library=table1_library(),
        clocks=ClockScheme(300.0, dp_multiplier=10),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=FeasibilityCriteria(performance_ns=30_000,
                                     delay_ns=30_000),
    )
    s.add_chip("chip1", mosis_package(2))
    s.add_chip("chip2", mosis_package(2))
    parts = horizontal_cut(s.graph, 2)
    s.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
    return s


class TestSetup:
    def test_duplicate_chip_rejected(self, session):
        with pytest.raises(PartitioningError):
            session.add_chip("chip1", mosis_package(1))

    def test_partitioning_validates(self, session):
        pt = session.partitioning()
        assert set(pt.partitions) == {"P1", "P2"}

    def test_no_partitions_raises(self):
        s = ChopSession(
            graph=ar_lattice_filter(),
            library=table1_library(),
            clocks=ClockScheme(300.0, dp_multiplier=10),
            style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
            criteria=FeasibilityCriteria(performance_ns=1, delay_ns=1),
        )
        with pytest.raises(PartitioningError):
            s.partitioning()

    def test_memory_assignment(self):
        s = ChopSession(
            graph=ar_lattice_filter(),
            library=table1_library(),
            clocks=ClockScheme(300.0, dp_multiplier=10),
            style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
            criteria=FeasibilityCriteria(performance_ns=30_000,
                                         delay_ns=30_000),
            memories=[MemoryModule("M", 256, 16)],
        )
        s.add_chip("chip1", mosis_package(2))
        s.assign_memory("M", "chip1")
        assert s.memory_chip["M"] == "chip1"
        with pytest.raises(PartitioningError):
            s.assign_memory("Mx", "chip1")
        with pytest.raises(PartitioningError):
            s.assign_memory("M", "chip9")


class TestModifications:
    def test_move_partition(self, session):
        session.move_partition("P2", "chip1")
        assert session.partitioning().chip_of("P2") == "chip1"

    def test_move_unknown_rejected(self, session):
        with pytest.raises(PartitioningError):
            session.move_partition("P9", "chip1")
        with pytest.raises(PartitioningError):
            session.move_partition("P1", "chip9")

    def test_migrate_operations(self, session):
        pt = session.partitioning()
        # Move a boundary operation from P2 into P1: pick a P2 op whose
        # predecessors are all in P1 so the cut stays one-way.
        graph = session.graph
        candidates = [
            op_id
            for op_id in pt.partitions["P2"].op_ids
            if all(
                pred in pt.partitions["P1"].op_ids
                for pred in graph.predecessors(op_id)
            )
            and not graph.successors(op_id)
        ]
        if not candidates:
            candidates = [
                op_id
                for op_id in pt.partitions["P2"].op_ids
                if all(
                    pred in pt.partitions["P1"].op_ids
                    for pred in graph.predecessors(op_id)
                )
                and all(
                    succ in pt.partitions["P2"].op_ids
                    for succ in graph.successors(op_id)
                )
            ]
        op = candidates[0]
        before = len(session.partitioning().partitions["P1"].op_ids)
        session.migrate_operations("P2", "P1", [op])
        after = len(session.partitioning().partitions["P1"].op_ids)
        assert after == before + 1

    def test_migration_cache_miss_forces_repredict(self, session):
        preds_before = session.predict("P1")
        pt = session.partitioning()
        movable = [
            op_id
            for op_id in pt.partitions["P1"].op_ids
            if all(
                succ in pt.partitions["P2"].op_ids
                for succ in session.graph.successors(op_id)
            )
        ]
        session.migrate_operations("P1", "P2", [movable[0]])
        preds_after = session.predict("P1")
        assert len(preds_after) != 0
        # The partition shrank, so the I/O signature changed.
        assert (
            preds_after[0].input_bits != preds_before[0].input_bits
            or preds_after[0].output_bits != preds_before[0].output_bits
            or len(preds_after) != len(preds_before)
        )


class TestPredictionAndSearch:
    def test_predict_caches(self, session):
        first = session.predict("P1")
        second = session.predict("P1")
        assert first == second

    def test_unknown_partition_rejected(self, session):
        with pytest.raises(PartitioningError):
            session.predict("P9")

    def test_pruned_subset_of_raw(self, session):
        raw = session.predict_all()
        pruned = session.pruned_predictions()
        for name in raw:
            assert len(pruned[name]) <= len(raw[name])
            raw_keys = {id(p) for p in raw[name]}
            assert all(id(p) in raw_keys for p in pruned[name])

    def test_check_both_heuristics_agree_on_best_ii(self, session):
        enum = session.check("enumeration")
        iter_ = session.check("iterative")
        assert enum.feasible and iter_.feasible
        assert (
            enum.best().ii_main == iter_.best().ii_main
        )

    def test_unknown_heuristic_rejected(self, session):
        with pytest.raises(PredictionError):
            session.check("magic")

    def test_keep_all_records_space(self, session):
        result = session.check("enumeration", keep_all=True)
        assert result.space is not None
        assert result.space.total >= result.trials

    def test_unprunable_constraints_raise(self):
        s = ChopSession(
            graph=ar_lattice_filter(),
            library=table1_library(),
            clocks=ClockScheme(300.0, dp_multiplier=10),
            style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
            criteria=FeasibilityCriteria(performance_ns=1.0, delay_ns=1.0),
        )
        s.add_chip("chip1", mosis_package(2))
        parts = horizontal_cut(s.graph, 1)
        s.set_partitions(parts, {"P1": "chip1"})
        with pytest.raises(PredictionError, match="survive"):
            s.check("iterative")

    def test_max_usable_area(self, session):
        assert session.max_usable_area_mil2() > 100_000
