"""Tests for transfer bandwidth, buffers and DTM prediction."""

from __future__ import annotations

import pytest

from repro.bad.styles import ClockScheme
from repro.chips.chip import PinBudget
from repro.core.tasks import TaskKind, TransferTask
from repro.core.transfer import (
    buffer_bits,
    data_transfer_module,
    estimate_transfer,
    transfer_bandwidth_pins,
)
from repro.errors import InfeasibleError, PredictionError
from repro.library.presets import REGISTER


def _task(bits=128, chips=("chip1", "chip2")):
    return TransferTask(
        name="xfer:P1->P2", kind=TaskKind.TRANSFER, bits=bits,
        chips=chips, partition="P1",
    )


def _budget(data_pins):
    return PinBudget(
        total=data_pins + 4, power_ground=4, control=0, memory_dedicated=0
    )


class TestBandwidth:
    def test_minimum_across_chips(self):
        budgets = {"chip1": _budget(40), "chip2": _budget(20)}
        assert transfer_bandwidth_pins(_task(), budgets, {}) == 20

    def test_memory_load_subtracts(self):
        budgets = {"chip1": _budget(40), "chip2": _budget(40)}
        pins = transfer_bandwidth_pins(
            _task(), budgets, {"chip1": 25}
        )
        assert pins == 15

    def test_no_pins_is_infeasible(self):
        budgets = {"chip1": _budget(10), "chip2": _budget(10)}
        with pytest.raises(InfeasibleError):
            transfer_bandwidth_pins(_task(), budgets, {"chip1": 10})

    def test_missing_budget_raises(self):
        with pytest.raises(PredictionError):
            transfer_bandwidth_pins(_task(), {}, {})


class TestEstimate:
    def test_transfer_cycles_ceil(self):
        budgets = {"chip1": _budget(50), "chip2": _budget(50)}
        clocks = ClockScheme(300.0, transfer_multiplier=1)
        estimate = estimate_transfer(_task(bits=128), budgets, {}, clocks)
        assert estimate.pins == 50
        assert estimate.transfer_cycles == 3  # ceil(128/50)
        assert estimate.duration_main == 3

    def test_transfer_clock_multiplier(self):
        budgets = {"chip1": _budget(64), "chip2": _budget(64)}
        clocks = ClockScheme(300.0, transfer_multiplier=2)
        estimate = estimate_transfer(_task(bits=128), budgets, {}, clocks)
        assert estimate.transfer_cycles == 2
        assert estimate.duration_main == 4

    def test_fewer_pins_longer_transfer(self):
        clocks = ClockScheme(300.0)
        wide = estimate_transfer(
            _task(), {"chip1": _budget(60), "chip2": _budget(60)}, {},
            clocks,
        )
        narrow = estimate_transfer(
            _task(), {"chip1": _budget(12), "chip2": _budget(12)}, {},
            clocks,
        )
        assert narrow.duration_main > wide.duration_main


class TestBufferFormula:
    def test_paper_formula(self):
        # B = D * (ceil(W/l) + X/l): D=64, W=25, l=10, X=4
        # -> 64 * (3 + 0.4) = 217.6 -> 218
        assert buffer_bits(64, 25, 4, 10) == 218

    def test_no_wait_no_transfer(self):
        assert buffer_bits(64, 0, 0, 10) == 0

    def test_transfer_only_fraction(self):
        # Stair-like storage during the transfer: D * X/l.
        assert buffer_bits(100, 0, 5, 10) == 50

    def test_wait_longer_than_interval(self):
        # W=25 with l=10 -> three in-flight iterations buffered.
        assert buffer_bits(16, 25, 0, 10) == 48

    def test_rejects_bad_interval(self):
        with pytest.raises(PredictionError):
            buffer_bits(16, 1, 1, 0)

    def test_rejects_negative_terms(self):
        with pytest.raises(PredictionError):
            buffer_bits(-1, 1, 1, 10)


class TestDataTransferModule:
    def _estimate(self, bits=128, pins=32):
        budgets = {"chip1": _budget(pins), "chip2": _budget(pins)}
        clocks = ClockScheme(300.0)
        return estimate_transfer(_task(bits=bits), budgets, {}, clocks), clocks

    def test_module_area_includes_buffer_and_pla(self):
        estimate, clocks = self._estimate()
        module = data_transfer_module(
            _task(), "chip1", "output", estimate, wait_main=5,
            ii_main=20, clocks=clocks, register=REGISTER,
        )
        assert module.buffer_bits > 0
        assert module.area_mil2.ml > module.controller.area_mil2.ml

    def test_always_active_flag(self):
        estimate, clocks = self._estimate()
        lazy = data_transfer_module(
            _task(), "chip1", "output", estimate, wait_main=5,
            ii_main=20, clocks=clocks, register=REGISTER,
        )
        busy = data_transfer_module(
            _task(), "chip1", "output", estimate, wait_main=25,
            ii_main=20, clocks=clocks, register=REGISTER,
        )
        assert not lazy.always_active
        assert busy.always_active

    def test_longer_wait_bigger_buffer(self):
        estimate, clocks = self._estimate()
        short = data_transfer_module(
            _task(), "chip1", "output", estimate, 2, 20, clocks, REGISTER
        )
        long = data_transfer_module(
            _task(), "chip1", "output", estimate, 45, 20, clocks, REGISTER
        )
        assert long.buffer_bits > short.buffer_bits

    def test_invalid_mode_rejected(self):
        estimate, clocks = self._estimate()
        with pytest.raises(PredictionError):
            data_transfer_module(
                _task(), "chip1", "both", estimate, 2, 20, clocks,
                REGISTER,
            )
