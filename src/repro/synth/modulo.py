"""Modulo register binding for pipelined designs.

A pipelined implementation overlaps iterations every ``II`` cycles, so a
value alive ``s`` cycles has ``ceil(s / II)`` live instances in steady
state; registers must be assigned so no two live instances — of the same
value or different values — collide in any cycle slot.

The binder works in the modulo-time domain: each value occupies the slot
set ``{c mod II : birth <= c < death}`` weighted by how many overlapped
instances cover each slot, and values are packed first-fit into
*register groups* (one physical register per concurrent instance).  The
resulting register count validates the predictor's modulo lifetime
accounting (:func:`repro.bad.allocation.register_requirement`) the same
way the left-edge binder validates the nonpipelined count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.bad.allocation import value_lifetimes
from repro.bad.scheduling import Schedule
from repro.dfg.graph import DataFlowGraph
from repro.errors import PredictionError


@dataclass(frozen=True, slots=True)
class ModuloBinding:
    """Register assignment of one pipelined partition."""

    #: Value id -> tuple of physical register indices (one per
    #: overlapped live instance).
    registers_of: Mapping[str, Tuple[int, ...]]
    register_count: int
    initiation_interval: int

    @property
    def instance_count(self) -> int:
        """Total live value-instances bound (>= distinct values)."""
        return sum(len(regs) for regs in self.registers_of.values())


def modulo_register_bind(
    graph: DataFlowGraph,
    schedule: Schedule,
    initiation_interval: int,
) -> ModuloBinding:
    """Pack value lifetimes into registers under modulo-II overlap.

    Returns a binding where every value's live instances have dedicated
    physical registers and no register holds two live values in the same
    modulo slot.  First-fit over values ordered by decreasing slot
    footprint — the standard heuristic; optimal packing is NP-hard.
    """
    if initiation_interval <= 0:
        raise PredictionError(
            f"initiation interval must be positive, got "
            f"{initiation_interval}"
        )
    lifetimes = value_lifetimes(graph, schedule)

    # Per-value modulo footprint: how many instances cover each slot.
    footprints: Dict[str, List[int]] = {}
    for value_id, (birth, death) in lifetimes.items():
        slots = [0] * initiation_interval
        for cycle in range(birth, death):
            slots[cycle % initiation_interval] += 1
        footprints[value_id] = slots

    # Registers: each holds at most one live instance per slot.
    register_slots: List[List[int]] = []  # 0/1 occupancy per slot
    registers_of: Dict[str, Tuple[int, ...]] = {}

    ordered = sorted(
        footprints.items(),
        key=lambda kv: (-sum(kv[1]), kv[0]),
    )
    for value_id, slots in ordered:
        needed = max(slots)
        assigned: List[int] = []
        remaining = [s for s in slots]
        for _instance in range(needed):
            # This instance needs one register free in every slot where
            # the value still has uncovered coverage.
            want = [1 if r > 0 else 0 for r in remaining]
            placed = False
            for index, occupancy in enumerate(register_slots):
                if index in assigned:
                    continue
                if all(
                    not (w and o) for w, o in zip(want, occupancy)
                ):
                    for slot, w in enumerate(want):
                        if w:
                            occupancy[slot] = 1
                    assigned.append(index)
                    placed = True
                    break
            if not placed:
                register_slots.append(list(want))
                assigned.append(len(register_slots) - 1)
            remaining = [max(0, r - 1) for r in remaining]
        registers_of[value_id] = tuple(assigned)

    return ModuloBinding(
        registers_of=registers_of,
        register_count=len(register_slots),
        initiation_interval=initiation_interval,
    )
