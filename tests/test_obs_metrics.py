"""The metrics registry: families, labels, histograms, exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    format_bound,
    get_registry,
    quantile_from_counts,
    set_registry,
)
from repro.obs.prometheus import (
    escape_label_value,
    metric_name,
    render_registry,
    sample_line,
    unescape_label_value,
)
from repro.service.metrics import percentile


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
class TestFamilies:
    def test_counter_counts_up(self):
        registry = MetricsRegistry()
        c = registry.counter("jobs_total", "jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)

    def test_labeled_counter_children_are_independent(self):
        registry = MetricsRegistry()
        c = registry.counter("hits", labelnames=("route",))
        c.labels(route="a").inc()
        c.labels(route="a").inc()
        c.labels(route="b").inc()
        values = {
            s["labels"]["route"]: s["value"] for s in c.samples()
        }
        assert values == {"a": 2, "b": 1}

    def test_unlabeled_shortcut_on_labeled_family_raises(self):
        registry = MetricsRegistry()
        c = registry.counter("hits", labelnames=("route",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_wrong_label_names_raise(self):
        registry = MetricsRegistry()
        c = registry.counter("hits", labelnames=("route",))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(path="x")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_gauge_pull_function_evaluated_at_read(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        box = {"v": 1}
        g.set_function(lambda: box["v"])
        assert g.value == 1
        box["v"] = 7
        assert g.value == 7

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x", "help one")
        b = registry.counter("x", "help two")
        assert a is b

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_labelset_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x", labelnames=("b",))

    def test_get_by_name(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        assert registry.get("x") is c
        assert registry.get("missing") is None


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_exponential_buckets(self):
        buckets = exponential_buckets(1.0, 2.0, 4)
        assert buckets == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            exponential_buckets(0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_default_buckets_span_interactive_to_batch(self):
        assert DEFAULT_BUCKETS[0] == 0.0005
        assert DEFAULT_BUCKETS[-1] == pytest.approx(16.384)

    def test_invalid_bucket_bounds_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(-1.0, 2.0))

    def test_observe_fills_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        sample = h.samples()[0]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(105.0)
        assert sample["buckets"] == {
            "1.0": 1, "2.0": 2, "4.0": 3, "+Inf": 4,
        }

    def test_boundary_value_lands_in_its_bucket(self):
        # le is inclusive: an observation exactly at a bound counts in
        # that bucket, matching Prometheus semantics.
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.samples()[0]["buckets"] == {
            "1.0": 1, "2.0": 1, "+Inf": 1,
        }

    def test_exemplar_kept_per_label_set(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", labelnames=("route",))
        h.labels(route="a").observe(0.25, exemplar="trace-123")
        sample = h.samples()[0]
        assert sample["exemplar"] == {
            "trace_id": "trace-123", "value": 0.25,
        }

    def test_quantile_from_counts_interpolates(self):
        # 10 observations uniform in the (0, 1] bucket: p50 = 0.5.
        assert quantile_from_counts((1.0,), (10, 0), 0.5) == (
            pytest.approx(0.5)
        )
        # Empty histogram has no quantile.
        assert quantile_from_counts((1.0,), (0, 0), 0.5) is None
        # Overflow clamps to the last finite bound.
        assert quantile_from_counts((1.0,), (0, 5), 0.99) == 1.0

    def test_family_quantile_with_label_filter(self):
        registry = MetricsRegistry()
        h = registry.histogram(
            "h", labelnames=("route",), buckets=(1.0, 10.0)
        )
        for _ in range(10):
            h.labels(route="fast").observe(0.5)
            h.labels(route="slow").observe(5.0)
        fast = h.quantile(0.5, where={"route": "fast"})
        slow = h.quantile(0.5, where={"route": "slow"})
        assert fast < 1.0 < slow

    def test_bucket_width_at(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(1.0, 4.0))
        assert h.bucket_width_at(0.5) == 1.0
        assert h.bucket_width_at(2.0) == 3.0
        assert h.bucket_width_at(100.0) == math.inf

    def test_concurrent_observation_conserves_totals(self):
        registry = MetricsRegistry()
        h = registry.histogram(
            "h", labelnames=("t",), buckets=DEFAULT_BUCKETS
        )
        threads, per_thread = 8, 500

        def work(index: int) -> None:
            child = h.labels(t=str(index % 2))
            for i in range(per_thread):
                child.observe(0.001 * (i % 50 + 1))

        pool = [
            threading.Thread(target=work, args=(i,))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        counts, total, _ = h.aggregate()
        assert total == threads * per_thread
        # The +Inf cumulative count in every sample equals its count.
        for sample in h.samples():
            assert sample["buckets"]["+Inf"] == sample["count"]

    def test_bucket_quantiles_agree_with_sample_percentiles(self):
        """Acceptance: bucket p50/p95 within one bucket width of the
        sample-based percentile over the same observations."""
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=DEFAULT_BUCKETS)
        samples = [0.0007 * (i % 97 + 1) for i in range(500)]
        for v in samples:
            h.observe(v)
        for q, pct in ((0.5, 50.0), (0.95, 95.0)):
            derived = h.quantile(q)
            exact = percentile(samples, pct)
            assert derived is not None
            assert abs(derived - exact) <= h.bucket_width_at(exact)


# ----------------------------------------------------------------------
# registry collection and stats suppliers
# ----------------------------------------------------------------------
class TestRegistry:
    def test_collect_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("b_depth").set(2)
        registry.counter("a_total").inc()
        docs = registry.collect()
        assert [d["name"] for d in docs] == ["a_total", "b_depth"]
        assert [d["type"] for d in docs] == ["counter", "gauge"]

    def test_register_stats_walks_numeric_leaves(self):
        registry = MetricsRegistry()
        registry.register_stats(
            "cache",
            lambda: {
                "hits": 3,
                "nested": {"deep": 1.5},
                "flag": True,
                "name": "skipped-string",
                "items": [1, 2],
            },
        )
        docs = {d["name"]: d for d in registry.collect()}
        assert docs["cache_hits"]["samples"][0]["value"] == 3.0
        assert docs["cache_nested_deep"]["samples"][0]["value"] == 1.5
        assert docs["cache_flag"]["samples"][0]["value"] == 1.0
        assert "cache_name" not in docs
        assert "cache_items" not in docs

    def test_snapshot_prefixes_names(self):
        registry = MetricsRegistry(prefix="chop")
        registry.counter("requests_total").inc()
        snap = registry.snapshot()
        assert "chop_requests_total" in snap
        assert snap["chop_requests_total"]["samples"][0]["value"] == 1

    def test_global_registry_roundtrip(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


# ----------------------------------------------------------------------
# prometheus rendering
# ----------------------------------------------------------------------
class TestPrometheusText:
    def test_metric_name_sanitised(self):
        assert metric_name("a.b-c") == "chop_a_b_c"
        assert metric_name("2fast") == "chop__2fast"

    def test_label_escaping_round_trips(self):
        for raw in (
            'quote " inside',
            "back\\slash",
            "new\nline",
            'all \\ of " them\n',
            "plain",
        ):
            assert unescape_label_value(escape_label_value(raw)) == raw

    def test_sample_line_sorts_and_escapes_labels(self):
        line = sample_line("m", {"b": 'x"y', "a": "1"}, 2)
        assert line == 'm{a="1",b="x\\"y"} 2'

    def test_render_registry_full_families(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Total requests").inc(3)
        h = registry.histogram(
            "latency_seconds",
            "Latency",
            labelnames=("route",),
            buckets=(0.1, 1.0),
        )
        h.labels(route="GET /x").observe(0.05)
        h.labels(route="GET /x").observe(0.5)
        text = render_registry(registry)
        assert "# HELP chop_requests_total Total requests" in text
        assert "# TYPE chop_requests_total counter" in text
        assert "chop_requests_total 3" in text
        assert "# TYPE chop_latency_seconds histogram" in text
        assert (
            'chop_latency_seconds_bucket{le="0.1",route="GET /x"} 1'
            in text
        )
        assert (
            'chop_latency_seconds_bucket{le="+Inf",route="GET /x"} 2'
            in text
        )
        assert 'chop_latency_seconds_count{route="GET /x"} 2' in text
        assert text.endswith("\n")

    def test_format_bound(self):
        assert format_bound(math.inf) == "+Inf"
        assert format_bound(1.0) == "1.0"
        assert format_bound(0.0005) == "0.0005"
