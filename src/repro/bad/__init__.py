"""BAD — the Behavioral Area-Delay predictor embedded in CHOP.

The paper embeds BAD [Kucukcakar & Parker 1990] as the per-partition
predictor: given one partition of the behavioral specification, a
component library and an architecture style, BAD enumerates design styles
(pipelined / nonpipelined), module sets and serial-parallel trade-offs,
and predicts — as (lb, ml, ub) triplets — the area consumed by functional
units, registers, multiplexers, PLA controller and standard-cell wiring,
the initiation interval and latency, the clock-cycle overhead, and the
memory bandwidth per block (section 2.4).

BAD's internals were published separately and are not available; this
package is a from-scratch predictor with the same interface and axes (see
DESIGN.md, "Substitutions").
"""

from repro.bad.styles import (
    ArchitectureStyle,
    ClockScheme,
    OperationTiming,
)
from repro.bad.prediction import AreaBreakdown, DesignPrediction
from repro.bad.predictor import BADPredictor, PredictorParameters

__all__ = [
    "ArchitectureStyle",
    "ClockScheme",
    "OperationTiming",
    "AreaBreakdown",
    "DesignPrediction",
    "BADPredictor",
    "PredictorParameters",
]
