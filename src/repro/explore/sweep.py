"""The design-space sweep driver.

One :func:`explore` call enumerates candidate configurations — chip
count k crossed with package area scalings, each seeded either by the
paper-style horizontal cut or by the multilevel auto-partitioner —
evaluates every candidate through the existing machinery (the
incremental evaluation context, optionally the process-pool engine and
the versioned disk prediction cache, so repeated sweeps are warm), and
maintains a Pareto front over the configured objective set with the
shared :class:`repro.search.pareto.ParetoFront`.

Objectives (all minimized):

``cost``
    Total manufacturing cost of the candidate's best feasible design
    (:func:`repro.chips.cost.partition_cost`).
``performance``
    Initiation interval of the best design in nanoseconds
    (``II x clock``): time between successive iterations.
``delay``
    Input-to-output latency of the best design in nanoseconds.
``chips``
    The chip count itself — a packaging/inventory objective, so the
    cheapest k-chip design survives alongside a faster (k+1)-chip one.

Every front point carries the full project document of its candidate,
so a sweep's output re-loads through ``repro check`` (and the service's
``/check``) as an ordinary project — the front is a set of *actionable*
designs, not just numbers.

Spans: the sweep runs under ``explore.sweep``; each candidate under
``explore.candidate`` (with its check nested inside), each costing
under ``explore.cost``, and the final front assembly under
``explore.front``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.chips.cost import CostParameters, CostReport, partition_cost
from repro.chips.package import ChipPackage
from repro.core.chop import ChopSession
from repro.core.schemes import horizontal_cut
from repro.dfg.graph import DataFlowGraph
from repro.errors import (
    ChipError,
    PartitioningError,
    PredictionError,
    SearchCancelled,
)
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span
from repro.search.pareto import ParetoFront

#: Objective registry: name -> short description.  The extractors live
#: on :class:`ExplorePoint`; this is the single place the CLI, the
#: service and the docs list valid names from.
OBJECTIVES: Dict[str, str] = {
    "cost": "total manufacturing cost in dollars",
    "performance": "initiation interval in ns (II x clock)",
    "delay": "input-to-output latency in ns",
    "chips": "number of chips in the package",
}

SEEDINGS = ("heuristic", "auto")
HEURISTICS = ("iterative", "enumeration")

Progress = Callable[[int, int], None]
Cancel = Callable[[], bool]
#: ``(graph, chips, package_scale) -> ChopSession`` with chips named
#: ``chip1..chipN`` (the seeding stages assign partitions by index).
SessionFactory = Callable[[DataFlowGraph, int, float], ChopSession]


@dataclass
class ExploreConfig:
    """Knobs of one :func:`explore` sweep."""

    #: Chip counts to try (the k axis).
    chip_counts: Tuple[int, ...] = (1, 2, 3, 4)
    #: Die-area multipliers applied to every candidate package.
    package_scales: Tuple[float, ...] = (1.0,)
    #: Names from :data:`OBJECTIVES`, in vector order.
    objectives: Tuple[str, ...] = ("cost", "performance", "delay", "chips")
    #: ``heuristic`` (horizontal cut) or ``auto`` (multilevel partitioner).
    seeding: str = "heuristic"
    #: Search heuristic for each candidate's feasibility check.
    heuristic: str = "iterative"
    #: Cost-model parameters shared by every candidate.
    cost: CostParameters = field(default_factory=CostParameters)

    def validate(self, op_count: Optional[int] = None) -> None:
        """Reject a bad sweep before any candidate is evaluated.

        ``op_count`` (when known) bounds the k axis: asking for more
        chips than operations can never seed — the serving layer wants
        that to be a 400 at submit time, not a failed background job.
        """
        if not self.chip_counts:
            raise PartitioningError("chip_counts must not be empty")
        for k in self.chip_counts:
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise PartitioningError(
                    f"chip counts must be integers >= 1, got {k!r}"
                )
        if op_count is not None and max(self.chip_counts) > op_count:
            raise PartitioningError(
                f"cannot spread {op_count} operations over "
                f"{max(self.chip_counts)} chips"
            )
        if not self.package_scales:
            raise PartitioningError("package_scales must not be empty")
        for scale in self.package_scales:
            if not isinstance(scale, (int, float)) or not scale > 0:
                raise PartitioningError(
                    f"package scales must be positive numbers, got "
                    f"{scale!r}"
                )
        if not self.objectives:
            raise PartitioningError("objectives must not be empty")
        for name in self.objectives:
            if name not in OBJECTIVES:
                raise PartitioningError(
                    f"unknown objective {name!r}; use a subset of "
                    f"{sorted(OBJECTIVES)}"
                )
        if len(set(self.objectives)) != len(self.objectives):
            raise PartitioningError(
                f"duplicate objectives in {list(self.objectives)}"
            )
        if self.seeding not in SEEDINGS:
            raise PartitioningError(
                f"unknown seeding {self.seeding!r}; use one of "
                f"{list(SEEDINGS)}"
            )
        if self.heuristic not in HEURISTICS:
            raise PartitioningError(
                f"unknown heuristic {self.heuristic!r}; use one of "
                f"{list(HEURISTICS)}"
            )
        self.cost.validate()


def scale_package(package: ChipPackage, scale: float) -> ChipPackage:
    """``package`` with its die *area* multiplied by ``scale``.

    Both dimensions stretch by ``sqrt(scale)`` so the aspect ratio is
    preserved; pins, pad delay and pad area are untouched (a scale is a
    die-size decision, not a pinout change).  Scale 1.0 returns the
    package unchanged.
    """
    if scale == 1.0:
        return package
    side = math.sqrt(scale)
    return ChipPackage(
        name=f"{package.name}x{scale:g}",
        width_mil=package.width_mil * side,
        height_mil=package.height_mil * side,
        pin_count=package.pin_count,
        pad_delay_ns=package.pad_delay_ns,
        pad_area_mil2=package.pad_area_mil2,
    )


def default_session_factory(
    graph: DataFlowGraph, chips: int, scale: float
) -> ChopSession:
    """Self-contained candidate sessions for graph-only sweeps.

    Reuses the auto-partitioner's defaults (library, generous package
    sized to ops-per-chip, linearly scaled criteria) with the candidate
    scale applied on top of the generated package.
    """
    from repro.auto.partitioner import (
        default_auto_package,
        default_auto_session,
    )

    package = scale_package(default_auto_package(graph, chips), scale)
    return default_auto_session(graph, chips, package=package)


def project_session_factory(base: ChopSession) -> SessionFactory:
    """Candidate sessions inheriting ``base``'s designer inputs.

    Library, clocks, style, criteria and memories come from ``base``;
    the chip set is rebuilt per candidate — ``base``'s packages reused
    round-robin and scaled — and every memory lands on chip 1, mirroring
    :func:`repro.auto.partitioner.session_like_factory`.
    """
    packages = [chip.package for chip in base.chips.values()]

    def factory(
        graph: DataFlowGraph, chips: int, scale: float
    ) -> ChopSession:
        from repro.auto.partitioner import default_auto_package

        session = ChopSession(
            graph=graph,
            library=base.library,
            clocks=base.clocks,
            style=base.style,
            criteria=base.criteria,
            memories=base.memories.values(),
        )
        for index in range(chips):
            package = (
                packages[index % len(packages)]
                if packages
                else default_auto_package(graph, chips)
            )
            session.add_chip(
                f"chip{index + 1}", scale_package(package, scale)
            )
        for memory in base.memories:
            session.assign_memory(memory, "chip1")
        return session

    return factory


@dataclass(frozen=True)
class ExplorePoint:
    """One feasible candidate: objectives plus the design behind them."""

    chips: int
    package_scale: float
    cost_report: CostReport
    #: Best feasible design's row (main-clock cycles and ns).
    ii_main: int
    delay_main: int
    clock_cycle_ns: float
    #: The candidate's full project document — re-loadable by ``check``.
    project: Dict[str, Any]
    fingerprint: str
    trials: int

    @property
    def cost(self) -> float:
        return self.cost_report.total

    @property
    def performance_ns(self) -> float:
        return self.ii_main * self.clock_cycle_ns

    @property
    def delay_ns(self) -> float:
        return self.delay_main * self.clock_cycle_ns

    def objective_value(self, name: str) -> float:
        if name == "cost":
            return self.cost
        if name == "performance":
            return self.performance_ns
        if name == "delay":
            return self.delay_ns
        if name == "chips":
            return float(self.chips)
        raise ChipError(f"unknown objective {name!r}")

    def vector(self, objectives: Sequence[str]) -> Tuple[float, ...]:
        return tuple(self.objective_value(name) for name in objectives)

    def to_dict(
        self,
        objectives: Sequence[str],
        include_project: bool = True,
    ) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "chips": self.chips,
            "package_scale": self.package_scale,
            "objectives": {
                name: round(self.objective_value(name), 4)
                for name in objectives
            },
            "cost": self.cost_report.to_dict(),
            "best": {
                "initiation_interval": self.ii_main,
                "delay": self.delay_main,
                "clock_cycle_ns": round(self.clock_cycle_ns, 1),
            },
            "fingerprint": self.fingerprint,
            "trials": self.trials,
        }
        if include_project:
            doc["project"] = self.project
        return doc


@dataclass
class ExploreResult:
    """Everything one sweep evaluated, and the front that survived."""

    config: ExploreConfig
    #: Candidate census rows: every (k, scale) with its outcome.
    candidates: List[Dict[str, Any]]
    #: The non-dominated points, canonically ordered (vector, k, scale).
    front: List[ExplorePoint]
    evaluated: int
    feasible: int
    infeasible: int
    skipped: int
    #: Partition prediction lists seeded from the disk cache.
    cache_seeded: int

    def to_dict(self, include_projects: bool = True) -> Dict[str, Any]:
        return {
            "objectives": list(self.config.objectives),
            "seeding": self.config.seeding,
            "heuristic": self.config.heuristic,
            "chip_counts": list(self.config.chip_counts),
            "package_scales": list(self.config.package_scales),
            "evaluated": self.evaluated,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "skipped": self.skipped,
            "cache_seeded": self.cache_seeded,
            "candidates": self.candidates,
            "front": [
                point.to_dict(
                    self.config.objectives,
                    include_project=include_projects,
                )
                for point in self.front
            ],
        }


def _seed_heuristic(
    session: ChopSession, graph: DataFlowGraph, chips: int
) -> None:
    """Install a horizontal-cut k-way partitioning on ``session``."""
    partitions = horizontal_cut(graph, chips)
    session.set_partitions(
        partitions,
        {
            partition.name: f"chip{index + 1}"
            for index, partition in enumerate(partitions)
        },
    )


def _warm_from_disk(session: ChopSession, disk_cache) -> Tuple[Any, int]:
    """Seed ``session`` from the disk prediction cache; (key, seeded)."""
    from repro.io.project import project_fingerprint, session_to_dict

    key = disk_cache.key_for(
        project_fingerprint(session_to_dict(session)),
        session.library,
        session.clocks,
    )
    cached = disk_cache.load(key)
    if cached is None:
        return key, 0
    return None, session.seed_predictions(cached)


def explore(
    graph: DataFlowGraph,
    config: Optional[ExploreConfig] = None,
    session_factory: Optional[SessionFactory] = None,
    engine=None,
    disk_cache=None,
    progress: Optional[Progress] = None,
    cancel: Optional[Cancel] = None,
) -> ExploreResult:
    """Sweep the (chip count x package scale) space of ``graph``.

    ``session_factory(graph, chips, scale)`` supplies each candidate's
    CHOP session (default: :func:`default_session_factory`; use
    :func:`project_session_factory` to inherit an existing project's
    designer inputs).  ``engine`` shards each candidate's enumeration
    across a process pool; ``disk_cache`` (a
    :class:`repro.engine.DiskPredictionCache`) makes repeated sweeps
    warm by persisting every candidate's prediction lists.  ``progress``
    receives ``(candidates_done, candidates_total)``; ``cancel`` is
    polled between candidates and raises
    :class:`~repro.errors.SearchCancelled` when it answers ``True``.

    Deterministic for a fixed candidate set: the front depends only on
    the candidates evaluated, not on their order, and serial and
    engine-sharded sweeps return byte-identical fronts.
    """
    config = config or ExploreConfig()
    config.validate(op_count=graph.op_count())
    factory = session_factory or default_session_factory

    candidates = [
        (k, float(scale))
        for k in config.chip_counts
        for scale in config.package_scales
    ]
    front: ParetoFront[ExplorePoint] = ParetoFront(
        key=lambda point: point.vector(config.objectives)
    )
    census: List[Dict[str, Any]] = []
    feasible = infeasible = skipped = cache_seeded = 0

    with trace_span(
        "explore.sweep",
        candidates=len(candidates),
        seeding=config.seeding,
        objectives=",".join(config.objectives),
    ) as sweep_span:
        for done, (k, scale) in enumerate(candidates, start=1):
            if cancel is not None and cancel():
                raise SearchCancelled(
                    f"explore cancelled after {done - 1} of "
                    f"{len(candidates)} candidates"
                )
            row: Dict[str, Any] = {
                "chips": k,
                "package_scale": scale,
            }
            with trace_span(
                "explore.candidate", chips=k, package_scale=scale
            ) as cand_span:
                cand_started = time.perf_counter()
                point, status, reason, seeded = _evaluate_candidate(
                    graph, k, scale, config, factory, engine,
                    disk_cache, cancel,
                )
                get_registry().histogram(
                    "explore_candidate_seconds",
                    "Per-candidate sweep evaluation time by outcome",
                    labelnames=("status",),
                ).labels(status=status).observe(
                    time.perf_counter() - cand_started
                )
                cache_seeded += seeded
                row["status"] = status
                if reason:
                    row["reason"] = reason
                cand_span.put("status", status)
                if point is not None:
                    feasible += 1
                    row["objectives"] = {
                        name: round(point.objective_value(name), 4)
                        for name in config.objectives
                    }
                    cand_span.add("trials", point.trials)
                    if front.add(point):
                        cand_span.put("on_front", True)
                elif status == "infeasible":
                    infeasible += 1
                else:
                    skipped += 1
            census.append(row)
            if progress is not None:
                progress(done, len(candidates))

        with trace_span("explore.front") as front_span:
            points = sorted(
                front.points(),
                key=lambda p: (
                    p.vector(config.objectives), p.chips, p.package_scale,
                ),
            )
            front_span.add("offered", front.offered)
            front_span.add("kept", len(points))
            front_span.add("evicted", front.evicted)
        sweep_span.add("feasible", feasible)
        sweep_span.add("front", len(points))

    return ExploreResult(
        config=config,
        candidates=census,
        front=points,
        evaluated=len(candidates),
        feasible=feasible,
        infeasible=infeasible,
        skipped=skipped,
        cache_seeded=cache_seeded,
    )


def _evaluate_candidate(
    graph: DataFlowGraph,
    k: int,
    scale: float,
    config: ExploreConfig,
    factory: SessionFactory,
    engine,
    disk_cache,
    cancel: Optional[Cancel],
) -> Tuple[Optional[ExplorePoint], str, Optional[str], int]:
    """One (k, scale) cell: seed, check, cost.

    Returns ``(point, status, reason, cache_seeded)`` where ``status``
    is ``feasible`` / ``infeasible`` / ``skipped`` and ``point`` is
    ``None`` unless feasible.
    """
    from repro.io.project import project_fingerprint, session_to_dict

    if config.seeding == "auto":
        from repro.auto import AutoPartitionConfig, auto_partition

        try:
            outcome = auto_partition(
                graph,
                AutoPartitionConfig(chips=k, heuristic=config.heuristic),
                session_factory=lambda g, chips: factory(g, chips, scale),
                engine=engine,
            )
        except PartitioningError as exc:
            return None, "skipped", str(exc), 0
        session, result = outcome.session, outcome.search
        if result is None or not result.feasible:
            return (
                None, "infeasible",
                "auto-partitioner found no feasible k-way structure", 0,
            )
    else:
        session = factory(graph, k, scale)
        try:
            _seed_heuristic(session, graph, k)
        except PartitioningError as exc:
            return None, "skipped", str(exc), 0
        store_key, seeded = (None, 0)
        if disk_cache is not None:
            store_key, seeded = _warm_from_disk(session, disk_cache)
        try:
            result = session.check(
                heuristic=config.heuristic, engine=engine, cancel=cancel,
            )
        except PredictionError as exc:
            return None, "infeasible", str(exc), seeded
        if disk_cache is not None and store_key is not None:
            disk_cache.store_safely(
                store_key, session.export_predictions()
            )
        if not result.feasible:
            return (
                None, "infeasible",
                "no combination satisfies the criteria", seeded,
            )

    best = result.best()
    with trace_span("explore.cost", chips=k) as cost_span:
        report = partition_cost(
            session, selection=best.selection, params=config.cost
        )
        cost_span.add("cut_bits", report.cut_bits)
        cost_span.put("total", round(report.total, 4))
    document = session_to_dict(session)
    point = ExplorePoint(
        chips=k,
        package_scale=scale,
        cost_report=report,
        ii_main=best.ii_main,
        delay_main=best.delay_main,
        clock_cycle_ns=best.clock_cycle_ns,
        project=document,
        fingerprint=project_fingerprint(document),
        trials=result.trials,
    )
    seeded_total = seeded if config.seeding != "auto" else 0
    return point, "feasible", None, seeded_total
